//! Push/hybrid dispatch-plane tests: pick equivalence against pull,
//! subscription parking and displacement, worker-timeout re-enqueue, and
//! budget-exhaustion drain.
//!
//! The headline property: under any serialized schedule of worker
//! arrivals, **Push and Hybrid dispatch yield byte-identical task picks
//! to Pull** — a pushed assignment is computed by the exact same
//! `Docs::request_tasks` call a poll would have made, so the dispatch
//! plane changes *when* picks arrive, never *what* they are. The proptest
//! runs the same schedule across shards {1,4} × task_shards {1,4}.

use docs_service::{
    DispatchConfig, DispatchMode, DocsService, RejectReason, ServiceConfig, ServiceError,
    ServiceHandle, TicketWait,
};
use docs_system::{Docs, DocsConfig, WorkRequest};
use docs_types::{Answer, CampaignId, Task, TaskBuilder, TaskId, WorkerId};
use proptest::prelude::*;
use std::time::Duration;

fn publish(n_tasks: usize, answers_per_task: usize, task_shards: usize) -> Docs {
    let kb = docs_kb::table2_example_kb();
    let subjects = ["Michael Jordan", "Kobe Bryant", "NBA"];
    let tasks: Vec<Task> = (0..n_tasks)
        .map(|i| {
            TaskBuilder::new(i, format!("Is {} great? ({i})", subjects[i % 3]))
                .yes_no()
                .with_ground_truth(i % 2)
                .with_true_domain(1)
                .build()
                .unwrap()
        })
        .collect();
    Docs::publish(
        &kb,
        tasks,
        DocsConfig {
            num_golden: 3,
            k_per_hit: 4,
            answers_per_task,
            z: 25,
            task_shards,
            use_benefit_index: true,
            ..Default::default()
        },
    )
    .unwrap()
}

/// The deterministic (worker-dependent) answer rule shared with the
/// open-loop bench: identical across modes by construction.
fn answers_for(worker: WorkerId, hit: &[TaskId]) -> Vec<Answer> {
    hit.iter()
        .map(|&t| Answer::new(worker, t, (t.index() + worker.0 as usize) % 2))
        .collect()
}

/// Golden bootstrap over the pull plane (which stays on in every mode).
fn pass_golden(handle: &ServiceHandle, campaign: CampaignId, worker: WorkerId) {
    let golden = match handle
        .request_tasks_in(campaign, worker)
        .expect("golden request")
    {
        WorkRequest::Golden(g) => g,
        other => panic!("fresh worker got {other:?}"),
    };
    let picks: Vec<_> = golden.iter().map(|&g| (g, g.index() % 2)).collect();
    handle
        .submit_golden_in(campaign, worker, picks)
        .expect("golden submit");
}

/// Blocks until the worker's subscription is served.
fn subscribe_wait(handle: &ServiceHandle, campaign: CampaignId, worker: WorkerId) -> WorkRequest {
    handle
        .subscribe_assignments_ticket_in(campaign, worker)
        .expect("subscribe")
        .wait()
        .expect("subscription served")
}

/// One serialized arrival in mode-appropriate style: pull polls, push
/// subscribes (a worker below its in-flight cap is served immediately),
/// hybrid subscribes with the bounded-wait + unsubscribe-and-poll fallback.
fn next_work(
    handle: &ServiceHandle,
    campaign: CampaignId,
    mode: DispatchMode,
    worker: WorkerId,
) -> WorkRequest {
    match mode {
        DispatchMode::Pull => handle.request_tasks_in(campaign, worker).expect("poll"),
        DispatchMode::Push => subscribe_wait(handle, campaign, worker),
        DispatchMode::Hybrid => {
            let ticket = handle
                .subscribe_assignments_ticket_in(campaign, worker)
                .expect("subscribe");
            match ticket.wait_timeout(Duration::from_millis(100)) {
                TicketWait::Ready(work) => work.expect("subscription served"),
                TicketWait::Pending(ticket) => {
                    handle
                        .unsubscribe_in(campaign, worker)
                        .expect("unsubscribe");
                    match ticket.wait().expect("settled") {
                        WorkRequest::Done => {
                            handle.request_tasks_in(campaign, worker).expect("fallback")
                        }
                        work => work,
                    }
                }
            }
        }
    }
}

/// Runs one schedule of worker arrivals (each arrival = get an assignment,
/// then answer it in full) and returns the observable trace: every
/// assignment plus how many of its answers the campaign accepted.
fn run_schedule(
    mode: DispatchMode,
    shards: usize,
    task_shards: usize,
    schedule: &[usize],
) -> Vec<(WorkRequest, usize)> {
    let config = ServiceConfig::sharded(shards).with_dispatch(mode);
    let (service, handle) = DocsService::spawn_sharded(publish(8, 2, task_shards), config);
    let campaign = handle.default_campaign();
    let mut trace = Vec::new();
    for &w in schedule {
        let worker = WorkerId(w as u32);
        let work = next_work(&handle, campaign, mode, worker);
        let accepted = match &work {
            WorkRequest::Golden(golden) => {
                let picks: Vec<_> = golden.iter().map(|&g| (g, g.index() % 2)).collect();
                handle
                    .submit_golden_in(campaign, worker, picks)
                    .expect("golden submit");
                0
            }
            WorkRequest::Tasks(hit) => {
                handle
                    .submit_answer_batch_in(campaign, answers_for(worker, hit))
                    .expect("batch submit")
                    .accepted
            }
            WorkRequest::Done => 0,
        };
        trace.push((work, accepted));
    }
    drop(handle);
    let _ = service.join_all();
    trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Push and Hybrid dispatch return byte-identical picks (and identical
    /// acceptance counts) to Pull for every schedule, across the full
    /// shards × task_shards matrix — the push plane moves assignments
    /// earlier, it never moves them *around*.
    #[test]
    fn push_and_hybrid_picks_are_byte_identical_to_pull(
        schedule in prop::collection::vec(0usize..3, 1..40)
    ) {
        for (shards, task_shards) in [(1, 1), (1, 4), (4, 1), (4, 4)] {
            let pull = run_schedule(DispatchMode::Pull, shards, task_shards, &schedule);
            let push = run_schedule(DispatchMode::Push, shards, task_shards, &schedule);
            let hybrid = run_schedule(DispatchMode::Hybrid, shards, task_shards, &schedule);
            prop_assert_eq!(
                &pull, &push,
                "push diverged from pull (shards {}, task_shards {})", shards, task_shards
            );
            prop_assert_eq!(
                &pull, &hybrid,
                "hybrid diverged from pull (shards {}, task_shards {})", shards, task_shards
            );
        }
    }
}

/// A worker that takes a pushed HIT and goes silent loses its in-flight
/// slot after `worker_timeout`: the expiry re-enqueues the *worker* (its
/// parked subscription is served again), and — because pushed tasks are
/// never reserved — the campaign still collects its exact flat budget.
#[test]
fn worker_timeout_re_enqueues_the_worker_without_budget_leak() {
    let timeout = Duration::from_millis(80);
    let config = ServiceConfig::sharded(1).with_dispatch_config(DispatchConfig {
        mode: DispatchMode::Push,
        max_in_flight_per_worker: 1,
        worker_timeout: timeout,
    });
    // Flat cap 2 × 6 = 12 — exactly what two workers answering every task
    // once can supply, so a leaked (reserved-but-lost) task shows up as a
    // shortfall in the final count.
    let (service, handle) = DocsService::spawn_sharded(publish(6, 2, 1), config);
    let campaign = handle.default_campaign();
    let (a, b) = (WorkerId(0), WorkerId(1));
    pass_golden(&handle, campaign, a);
    pass_golden(&handle, campaign, b);

    // A takes a pushed HIT and goes silent; its standing subscription
    // parks at the in-flight cap.
    let hit_a1 = match subscribe_wait(&handle, campaign, a) {
        WorkRequest::Tasks(hit) => hit,
        other => panic!("worker A got {other:?}"),
    };
    assert!(!hit_a1.is_empty());
    let standing = handle
        .subscribe_assignments_ticket_in(campaign, a)
        .expect("standing subscribe");
    let standing = match standing.wait_timeout(Duration::from_millis(50)) {
        TicketWait::Pending(ticket) => ticket,
        TicketWait::Ready(work) => panic!("subscription served at the in-flight cap: {work:?}"),
    };
    handle.status_in(campaign).expect("status barrier");
    assert_eq!(handle.metrics().shard(0).subscriptions, 1);

    // Past the timeout, the next request's dispatch pass expires A's lease
    // and serves the parked subscription — B's own subscribe is enough to
    // trigger it.
    std::thread::sleep(timeout + Duration::from_millis(20));
    let hit_b = match subscribe_wait(&handle, campaign, b) {
        WorkRequest::Tasks(hit) => hit,
        other => panic!("worker B got {other:?}"),
    };
    let hit_a2 = match standing.wait_timeout(Duration::from_secs(5)) {
        TicketWait::Ready(work) => match work.expect("re-dispatch") {
            WorkRequest::Tasks(hit) => hit,
            other => panic!("re-enqueued worker A got {other:?}"),
        },
        TicketWait::Pending(_) => panic!("timed-out worker was never re-dispatched"),
    };
    assert!(
        handle.metrics().shard(0).dispatch_timeouts >= 1,
        "the expired lease was not counted"
    );
    assert_eq!(handle.metrics().shard(0).subscriptions, 0);

    // Both workers drain to `Done`; straddling batches truncate at the cap
    // instead of overshooting.
    for (worker, first) in [(b, hit_b), (a, hit_a2)] {
        let mut hit = first;
        for _ in 0..32 {
            handle
                .submit_answer_batch_in(campaign, answers_for(worker, &hit))
                .expect("batch submit");
            match subscribe_wait(&handle, campaign, worker) {
                WorkRequest::Tasks(next) => hit = next,
                WorkRequest::Done => break,
                other => panic!("draining worker got {other:?}"),
            }
        }
    }

    let status = handle.status_in(campaign).expect("status");
    assert!(status.budget_exhausted, "the campaign never finished");
    assert_eq!(
        status.answers_collected, 12,
        "a pushed task leaked budget: {} of 12 answers collected",
        status.answers_collected
    );
    drop(handle);
    let _ = service.join_all();
}

/// A subscription from a worker at its in-flight cap parks (visible in the
/// per-shard gauge) and is served by the dispatch pass of the worker's own
/// accepted submission — with a fresh pick that excludes what it answered.
#[test]
fn at_cap_subscription_parks_until_the_workers_own_submit() {
    let config = ServiceConfig::sharded(1).with_dispatch(DispatchMode::Push);
    // Unbounded budget: nothing else can open the cap.
    let (service, handle) = DocsService::spawn_sharded(publish(8, 0, 1), config);
    let campaign = handle.default_campaign();
    let w = WorkerId(7);
    pass_golden(&handle, campaign, w);

    let hit1 = match subscribe_wait(&handle, campaign, w) {
        WorkRequest::Tasks(hit) => hit,
        other => panic!("worker got {other:?}"),
    };
    let parked = handle
        .subscribe_assignments_ticket_in(campaign, w)
        .expect("subscribe");
    let parked = match parked.wait_timeout(Duration::from_millis(50)) {
        TicketWait::Pending(ticket) => ticket,
        TicketWait::Ready(work) => panic!("subscription served at the in-flight cap: {work:?}"),
    };
    handle.status_in(campaign).expect("status barrier");
    assert_eq!(handle.metrics().shard(0).subscriptions, 1);

    let outcome = handle
        .submit_answer_batch_in(campaign, answers_for(w, &hit1))
        .expect("batch submit");
    assert_eq!(outcome.accepted, hit1.len());
    let hit2 = match parked.wait().expect("served by own submit") {
        WorkRequest::Tasks(hit) => hit,
        other => panic!("parked subscription got {other:?}"),
    };
    assert!(!hit2.is_empty());
    assert!(
        hit2.iter().all(|t| !hit1.contains(t)),
        "a pushed pick repeated an answered task: {hit1:?} then {hit2:?}"
    );
    assert_eq!(handle.metrics().shard(0).subscriptions, 0);
    assert!(handle.metrics().shard(0).dispatched_tasks >= (hit1.len() + hit2.len()) as u64);
    drop(handle);
    let _ = service.join_all();
}

/// Parked subscriptions never dangle: a newer subscription displaces the
/// older one (newest wins, the stale ticket settles `Done`), and an
/// explicit unsubscribe settles the remaining one the same way.
#[test]
fn displacement_and_unsubscribe_settle_parked_subscriptions_with_done() {
    let config = ServiceConfig::sharded(1).with_dispatch(DispatchMode::Push);
    let (service, handle) = DocsService::spawn_sharded(publish(8, 0, 1), config);
    let campaign = handle.default_campaign();
    let w = WorkerId(0);
    pass_golden(&handle, campaign, w);
    match subscribe_wait(&handle, campaign, w) {
        WorkRequest::Tasks(_) => {}
        other => panic!("worker got {other:?}"),
    }

    let first = handle
        .subscribe_assignments_ticket_in(campaign, w)
        .expect("first parked subscribe");
    let second = handle
        .subscribe_assignments_ticket_in(campaign, w)
        .expect("second parked subscribe");
    // Newest wins: the displaced ticket settles immediately with `Done`.
    assert_eq!(first.wait().expect("displaced"), WorkRequest::Done);
    // The displaced ticket settles *mid*-Subscribe; a status round-trip
    // (per-shard FIFO) waits out the rest before reading the gauge.
    handle.status_in(campaign).expect("status barrier");
    assert_eq!(handle.metrics().shard(0).subscriptions, 1);

    handle.unsubscribe_in(campaign, w).expect("unsubscribe");
    assert_eq!(second.wait().expect("unsubscribed"), WorkRequest::Done);
    assert_eq!(handle.metrics().shard(0).subscriptions, 0);
    drop(handle);
    let _ = service.join_all();
}

/// A pull-mode service refuses subscriptions with a matchable rejection —
/// the push plane is opt-in, not ambient.
#[test]
fn pull_mode_refuses_subscriptions() {
    let (service, handle) = DocsService::spawn_sharded(publish(8, 2, 1), ServiceConfig::sharded(1));
    let campaign = handle.default_campaign();
    let err = handle
        .subscribe_assignments_ticket_in(campaign, WorkerId(0))
        .expect("enqueue")
        .wait()
        .expect_err("pull mode must refuse subscriptions");
    match err {
        ServiceError::Rejected(RejectReason::Invalid(_)) => {}
        other => panic!("expected Rejected(Invalid), got {other:?}"),
    }
    drop(handle);
    let _ = service.join_all();
}

/// When the budget runs out there may never be another state change, so
/// the exhausting submission's dispatch pass drains every parked
/// subscription with a final `Done` — no ticket waits forever.
#[test]
fn budget_exhaustion_drains_parked_subscriptions() {
    let config = ServiceConfig::sharded(1).with_dispatch(DispatchMode::Push);
    // Flat cap 1 × 4 = 4: one full HIT from B exhausts it.
    let (service, handle) = DocsService::spawn_sharded(publish(4, 1, 1), config);
    let campaign = handle.default_campaign();
    let (a, b) = (WorkerId(0), WorkerId(1));
    pass_golden(&handle, campaign, a);
    pass_golden(&handle, campaign, b);

    // A holds a pushed HIT and parks its standing subscription.
    match subscribe_wait(&handle, campaign, a) {
        WorkRequest::Tasks(_) => {}
        other => panic!("worker A got {other:?}"),
    }
    let standing = handle
        .subscribe_assignments_ticket_in(campaign, a)
        .expect("standing subscribe");

    // B polls (the pull plane stays on) and submits the whole budget.
    let hit_b = match handle.request_tasks_in(campaign, b).expect("poll") {
        WorkRequest::Tasks(hit) => hit,
        other => panic!("worker B got {other:?}"),
    };
    assert_eq!(hit_b.len(), 4, "B should see every task");
    handle
        .submit_answer_batch_in(campaign, answers_for(b, &hit_b))
        .expect("batch submit");

    assert_eq!(standing.wait().expect("drained"), WorkRequest::Done);
    assert_eq!(handle.metrics().shard(0).subscriptions, 0);
    let status = handle.status_in(campaign).expect("status");
    assert!(status.budget_exhausted);
    drop(handle);
    let _ = service.join_all();
}
