//! Multi-primary cluster routing + live campaign migration: the headline
//! invariants of the scale-out runtime.
//!
//! 1. **Rebalance under traffic loses nothing** — across the
//!    `shards × task_shards` matrix, a campaign is migrated between two
//!    primary nodes *while a driver keeps submitting through the
//!    [`ClusterRouter`]*: every submission is acknowledged exactly once
//!    (redirects during the fence window are retried, never surfaced),
//!    and the final truths are byte-identical to the single-node oracle.
//!    The destination's own durable log then proves the hand-off: a cold
//!    recovery from it reproduces the same report.
//! 2. **A stale map self-heals in one retry** — a client router still
//!    holding the pre-migration epoch sends a write to the old owner,
//!    absorbs the `WrongNode` answer, and converges on the new owner with
//!    exactly one redirect.

use docs_replication::{migrate_campaign, replication_channel, MigrationSource, ReplicationHub};
use docs_service::{
    AdaptiveCommit, ClusterNode, ClusterRouter, DocsService, DurabilityConfig, ServiceConfig,
    ServiceError, ServiceHandle,
};
use docs_storage::FlushPolicy;
use docs_system::{Docs, DocsConfig, RequesterReport, WorkRequest};
use docs_types::{
    Answer, CampaignId, ChoiceIndex, ClusterMap, NodeId, Task, TaskBuilder, TaskId, WorkerId,
};
use std::path::{Path, PathBuf};
use std::time::Duration;

const NUM_TASKS: usize = 12;
const NUM_WORKERS: u32 = 5;

/// One recorded platform operation, replayable against any service.
#[derive(Debug, Clone)]
enum Op {
    Golden(WorkerId, Vec<(TaskId, ChoiceIndex)>),
    Answer(Answer),
}

fn tasks() -> Vec<Task> {
    let subjects = ["Michael Jordan", "Kobe Bryant", "NBA"];
    (0..NUM_TASKS)
        .map(|i| {
            TaskBuilder::new(i, format!("Is {} great? ({i})", subjects[i % 3]))
                .yes_no()
                .with_ground_truth(i % 2)
                .with_true_domain(1)
                .build()
                .unwrap()
        })
        .collect()
}

fn publish(task_shards: usize, durable_flush: Option<FlushPolicy>) -> Docs {
    Docs::publish(
        &docs_kb::table2_example_kb(),
        tasks(),
        DocsConfig {
            num_golden: 3,
            k_per_hit: 3,
            answers_per_task: 3,
            z: 5, // small period: the migration crosses full-inference runs
            task_shards,
            durable_flush,
            ..Default::default()
        },
    )
    .unwrap()
}

/// Deterministic worker choice — varies by task and worker so TI has
/// disagreement to resolve.
fn choice_of(worker: WorkerId, task: TaskId) -> ChoiceIndex {
    if worker.0.is_multiple_of(2) {
        task.index() % 2
    } else {
        (task.index() + worker.0 as usize) % 2
    }
}

/// Drives an uninterrupted in-memory campaign, recording every submission;
/// returns the operation stream and the reference report.
fn oracle(task_shards: usize) -> (Vec<Op>, RequesterReport) {
    let mut docs = publish(task_shards, None);
    let mut ops = Vec::new();
    let mut idle_rounds = 0;
    while !docs.budget_exhausted() && idle_rounds < 2 {
        let mut progressed = false;
        for w in 0..NUM_WORKERS {
            let w = WorkerId(w);
            match docs.request_tasks(w) {
                WorkRequest::Golden(golden) => {
                    let answers: Vec<_> = golden.iter().map(|&g| (g, choice_of(w, g))).collect();
                    docs.submit_golden(w, &answers).unwrap();
                    ops.push(Op::Golden(w, answers));
                    progressed = true;
                }
                WorkRequest::Tasks(hit) => {
                    for t in hit {
                        let answer = Answer::new(w, t, choice_of(w, t));
                        docs.submit_answer(answer).unwrap();
                        ops.push(Op::Answer(answer));
                        progressed = true;
                    }
                }
                WorkRequest::Done => {}
            }
        }
        idle_rounds = if progressed { 0 } else { idle_rounds + 1 };
    }
    let report = docs.finish().unwrap();
    (ops, report)
}

/// Submits one op through the router. Every op of the oracle stream is
/// fresh (no duplicates), so under migration the only acceptable outcomes
/// are an ack — possibly after redirect-retries the router absorbs — or a
/// panic: a surfaced rejection here would be a *lost* acknowledged-stream
/// submission.
fn submit_via(router: &ClusterRouter, campaign: CampaignId, op: &Op) {
    match op {
        Op::Golden(w, answers) => router
            .submit_golden_in(campaign, *w, answers.clone())
            .expect("golden submission must be acknowledged"),
        Op::Answer(answer) => router
            .submit_answer_in(campaign, *answer)
            .expect("answer submission must be acknowledged"),
    }
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("docs-cluster-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_node(shards: usize, dir: &Path, node: NodeId) -> ServiceConfig {
    ServiceConfig {
        shards,
        durability: Some(DurabilityConfig {
            dir: dir.to_path_buf(),
            default_flush: FlushPolicy::EveryEvent,
            snapshot_every: 6,
            adaptive: Some(AdaptiveCommit::default()),
        }),
        ..Default::default()
    }
    .with_node(node)
}

fn assert_byte_identical(report: &RequesterReport, reference: &RequesterReport, label: &str) {
    assert_eq!(report.truths, reference.truths, "truths diverged: {label}");
    assert_eq!(
        report.truth_distributions, reference.truth_distributions,
        "probabilistic truths diverged: {label}"
    );
    assert_eq!(
        report.answers_collected, reference.answers_collected,
        "{label}"
    );
    assert_eq!(report.accuracy, reference.accuracy, "{label}");
}

/// A two-node cluster around one campaign living on node 0: pools, hub,
/// and a router whose map says so.
struct Cluster {
    node0: (DocsService, ServiceHandle),
    node1: (DocsService, ServiceHandle),
    hub: ReplicationHub,
    router: ClusterRouter,
    campaign: CampaignId,
    dir0: PathBuf,
    dir1: PathBuf,
}

fn two_nodes(shards: usize, task_shards: usize, label: &str) -> Cluster {
    let dir0 = tmp_dir(&format!("{label}-{shards}-{task_shards}-n0"));
    let dir1 = tmp_dir(&format!("{label}-{shards}-{task_shards}-n1"));
    let (sink, feed) = replication_channel();
    let config0 = durable_node(shards, &dir0, NodeId(0)).with_replication(sink);
    let (service0, handle0) =
        DocsService::spawn_sharded(publish(task_shards, Some(FlushPolicy::EveryEvent)), config0);
    let campaign = handle0.default_campaign();
    let hub = ReplicationHub::spawn(feed);
    let (service1, handle1) =
        DocsService::spawn_empty(durable_node(shards, &dir1, NodeId(1))).expect("spawn node 1");
    let router = ClusterRouter::new(
        vec![
            ClusterNode {
                id: NodeId(0),
                primary: handle0.clone(),
                replicas: vec![],
            },
            ClusterNode {
                id: NodeId(1),
                primary: handle1.clone(),
                replicas: vec![],
            },
        ],
        ClusterMap::new(NodeId(0)),
    );
    Cluster {
        node0: (service0, handle0),
        node1: (service1, handle1),
        hub,
        router,
        campaign,
        dir0,
        dir1,
    }
}

impl Cluster {
    /// Flips the directory after a migration: epoch bump, campaign on
    /// node 1, installed on the router and on both nodes' shards.
    fn flip_directory(&self) {
        let mut map = self.router.map();
        map.assign(self.campaign, NodeId(1));
        assert!(self.router.install_map(&map), "router adopts the new epoch");
        self.node0.1.install_cluster_map(&map).unwrap();
        self.node1.1.install_cluster_map(&map).unwrap();
    }

    /// Stops both pools and the hub, leaving the durability directories
    /// on disk (the rebalance test cold-recovers node 1's afterwards).
    fn shutdown(self) -> (PathBuf, PathBuf) {
        let Cluster {
            node0,
            node1,
            hub,
            router,
            dir0,
            dir1,
            ..
        } = self;
        drop(router);
        drop(node0.1);
        node0.0.join_all();
        hub.join();
        drop(node1.1);
        node1.0.join_all();
        (dir0, dir1)
    }

    fn teardown(self) {
        let (dir0, dir1) = self.shutdown();
        let _ = std::fs::remove_dir_all(&dir0);
        let _ = std::fs::remove_dir_all(&dir1);
    }
}

/// One matrix cell of invariant 1: migrate mid-traffic, lose nothing,
/// finish byte-identical, and recover the destination's own log.
fn rebalance_under_traffic_case(shards: usize, task_shards: usize) {
    let label = format!("shards {shards}, task_shards {task_shards}");
    let (ops, reference) = oracle(task_shards);
    let cluster = two_nodes(shards, task_shards, "rebalance");
    let campaign = cluster.campaign;

    // First half of the stream lands on node 0, the campaign's birthplace.
    let half = ops.len() / 2;
    for op in &ops[..half] {
        submit_via(&cluster.router, campaign, op);
    }

    // Keep the second half flowing from a driver thread while the main
    // thread migrates the campaign out from under it. One driver thread:
    // the oracle's op order is the campaign's serialization.
    let driver = {
        let router = cluster.router.clone();
        let suffix: Vec<Op> = ops[half..].to_vec();
        std::thread::Builder::new()
            .name("cluster-driver".into())
            .spawn(move || {
                for op in &suffix {
                    submit_via(&router, campaign, op);
                    // Pace the stream so the fence lands mid-traffic.
                    std::thread::sleep(Duration::from_micros(300));
                }
            })
            .expect("spawn driver thread")
    };

    // Let the driver get going, then move the campaign.
    std::thread::sleep(Duration::from_millis(2));
    let outcome = migrate_campaign(
        campaign,
        &MigrationSource {
            handle: &cluster.node0.1,
            node: NodeId(0),
            dir: &cluster.dir0,
            hub: &cluster.hub,
        },
        &cluster.node1.1,
        NodeId(1),
    )
    .expect("live migration");
    cluster.flip_directory();
    driver.join().expect("driver thread panicked");

    assert_eq!(outcome.campaign, campaign, "{label}");
    assert!(
        outcome.fence_watermark > 0,
        "{label}: fence recorded a real watermark"
    );
    assert!(
        outcome.bootstrap_frames > 0,
        "{label}: migration shipped a snapshot"
    );

    // The write path now lives on node 1; finishing through the router
    // must produce the oracle's bytes — nothing was lost in the hand-off.
    let report = cluster
        .router
        .finish_in(campaign)
        .expect("finish after migration");
    assert_byte_identical(&report, &reference, &label);

    // The destination refuses nothing it owns: a direct finish also works.
    let direct = cluster.node1.1.peek_report_in(campaign).unwrap();
    assert_eq!(direct.truths, reference.truths, "{label}: direct read");

    // Migration observability: the campaign was fenced on node 0 and
    // adopted on node 1; both nodes adopted the flipped directory.
    let routing0 = cluster.node0.1.metrics().routing();
    let routing1 = cluster.node1.1.metrics().routing();
    assert_eq!(routing0.campaigns_fenced, 1, "{label}");
    assert_eq!(routing1.migrations_adopted, 1, "{label}");
    assert!(routing0.maps_installed >= 1, "{label}");
    assert!(routing1.maps_installed >= 1, "{label}");

    // The destination's own durable log carries the whole campaign:
    // snapshot + migrated suffix + post-migration traffic. Cold-recover
    // it and reproduce the report — the "no acked event lost" receipt.
    let (dir0, dir1) = cluster.shutdown();
    let (recovered_service, recovered_handle) =
        DocsService::recover(durable_node(shards, &dir1, NodeId(1))).expect("recover node 1");
    let recovered = recovered_handle
        .finish_in(campaign)
        .expect("finish after recovery");
    assert_byte_identical(&recovered, &reference, &format!("{label}: recovery"));
    drop(recovered_handle);
    recovered_service.join_all();
    let _ = std::fs::remove_dir_all(&dir0);
    let _ = std::fs::remove_dir_all(&dir1);
}

#[test]
fn rebalance_under_traffic_loses_nothing_across_the_matrix() {
    for shards in [1usize, 4] {
        for task_shards in [1usize, 4] {
            rebalance_under_traffic_case(shards, task_shards);
        }
    }
}

/// Invariant 2, pinned across shard counts: a router holding the
/// pre-migration map converges on the new owner with exactly one redirect.
fn stale_map_case(shards: usize) {
    let label = format!("shards {shards}");
    let task_shards = 1;
    let (ops, _) = oracle(task_shards);
    let cluster = two_nodes(shards, task_shards, "stale");
    let campaign = cluster.campaign;

    // Some traffic, then a quiet migration.
    let prefix = 10.min(ops.len().saturating_sub(2));
    for op in &ops[..prefix] {
        submit_via(&cluster.router, campaign, op);
    }
    migrate_campaign(
        campaign,
        &MigrationSource {
            handle: &cluster.node0.1,
            node: NodeId(0),
            dir: &cluster.dir0,
            hub: &cluster.hub,
        },
        &cluster.node1.1,
        NodeId(1),
    )
    .expect("quiet migration");
    cluster.flip_directory();

    // A second client still routing by the epoch-0 map: its next write
    // goes to node 0, absorbs the WrongNode answer, and must land on
    // node 1 with exactly one redirect.
    let stale = ClusterRouter::new(cluster.router.nodes(), ClusterMap::new(NodeId(0)));
    submit_via(&stale, campaign, &ops[prefix]);
    let stats = stale.stats();
    assert_eq!(
        stats.wrong_node_redirects, 1,
        "{label}: stale map must converge in one retry"
    );
    assert_eq!(stats.forwarded_writes, 1, "{label}");

    // The service side kept score too: node 0 refused with WrongNode at
    // least once (the stale write, plus any fence-window traffic), and
    // node 1 counted the forwarded submission.
    assert!(
        cluster.node0.1.metrics().routing().wrong_node_rejections >= 1,
        "{label}"
    );
    assert!(
        cluster.node1.1.metrics().routing().forwarded_submissions >= 1,
        "{label}"
    );

    // A learned placement is a hint, not an epoch: once the real map
    // arrives, the stale router serves with no further redirects.
    let fresh = cluster.router.map();
    assert!(stale.install_map(&fresh));
    submit_via(&stale, campaign, &ops[prefix + 1]);
    assert_eq!(
        stale.stats().wrong_node_redirects,
        1,
        "{label}: no redirect after the real map is installed"
    );
    // The extra router holds handle clones; the pools only stop once
    // every handle is gone.
    drop(stale);
    cluster.teardown();
}

#[test]
fn a_stale_cluster_map_converges_to_the_new_owner_in_one_retry() {
    for shards in [1usize, 4] {
        stale_map_case(shards);
    }
}

/// The service-level ownership gate, end to end: after a directory that
/// places the campaign elsewhere is installed, the node refuses the
/// mutation with `WrongNode` naming the owner — and reads still serve.
#[test]
fn an_installed_directory_redirects_mutations_but_keeps_serving_reads() {
    let (ops, _) = oracle(1);
    let cluster = two_nodes(1, 1, "gate");
    let campaign = cluster.campaign;
    for op in &ops[..6.min(ops.len())] {
        submit_via(&cluster.router, campaign, op);
    }

    // A directory claiming node 1 owns the campaign — without migrating.
    let mut map = cluster.router.map();
    map.assign(campaign, NodeId(1));
    cluster.node0.1.install_cluster_map(&map).unwrap();

    let err = cluster
        .node0
        .1
        .submit_answer_in(campaign, Answer::new(WorkerId(0), TaskId(0), 0))
        .unwrap_err();
    assert_eq!(
        err,
        ServiceError::Rejected(docs_types::RejectReason::WrongNode { owner: NodeId(1) })
    );
    assert!(err.to_string().contains("owned by cluster node n1"));
    // Reads are never redirected: the local copy serves them.
    assert!(cluster.node0.1.status_in(campaign).is_ok());
    cluster.teardown();
}
