//! Property tests for the binary record codec: round-trip fidelity for
//! every `CampaignEvent` variant, campaign snapshots, and replication
//! frames; plus corruption refusal — flipping any single bit anywhere in a
//! framed record makes decoding fail instead of yielding a different value.
//!
//! The JSON fallback is exercised alongside: every generated event also
//! round-trips through its legacy serde_json encoding via the same decode
//! entry points, pinning the mixed-format guarantee at the codec layer.

use docs_replication::{decode_frame, encode_frame};
use docs_types::{
    codec, Answer, CampaignEvent, CampaignId, EventFrame, PublishedEvent, ReplicationFrame,
    SnapshotFrame, TaskId, WorkerId,
};
use proptest::prelude::*;

/// Strategy: one arbitrary answer (worker/task ids across the u32 range,
/// choices beyond binary).
fn arb_answer() -> impl Strategy<Value = Answer> {
    (0u32..u32::MAX, 0u32..10_000, 0usize..6)
        .prop_map(|(w, t, c)| Answer::new(WorkerId(w), TaskId(t), c))
}

/// Strategy: every `CampaignEvent` variant, selected uniformly, with
/// arbitrary contents (empty collections included).
fn arb_event() -> impl Strategy<Value = CampaignEvent> {
    (
        0usize..5,
        (0u32..u32::MAX, 0u32..1000, 0u32..1000),
        prop::collection::vec((0u32..10_000, 0usize..6), 0..8),
        prop::collection::vec(arb_answer(), 0..12),
    )
        .prop_map(|(variant, (a, b, c), golden, answers)| match variant {
            0 => CampaignEvent::Published(PublishedEvent {
                campaign: CampaignId(a),
                num_tasks: b,
                num_golden: c,
            }),
            1 => CampaignEvent::golden(
                WorkerId(a),
                golden
                    .into_iter()
                    .map(|(t, choice)| (TaskId(t), choice))
                    .collect(),
            ),
            2 => CampaignEvent::answer(Answer::new(
                WorkerId(a),
                TaskId(b % 10_000),
                (c % 6) as usize,
            )),
            3 => CampaignEvent::answer_batch(answers),
            _ => CampaignEvent::finished(),
        })
}

/// Strategy: a replication frame — either a snapshot (arbitrary payload
/// bytes, since the frame treats it as opaque) or a batch of event frames.
fn arb_frame() -> impl Strategy<Value = ReplicationFrame> {
    (
        any::<bool>(),
        (0u32..1000, 0u64..1 << 48),
        prop::collection::vec(any::<u8>(), 0..256),
        prop::collection::vec(((0u32..1000, 0u64..1 << 48), arb_event()), 0..6),
    )
        .prop_map(|(snapshot, (c, seq), payload, events)| {
            if snapshot {
                ReplicationFrame::Snapshot(SnapshotFrame {
                    campaign: CampaignId(c),
                    seq,
                    payload,
                })
            } else {
                ReplicationFrame::Events(
                    events
                        .into_iter()
                        .map(|((ec, eseq), event)| EventFrame {
                            campaign: CampaignId(ec),
                            seq: eseq,
                            payload: codec::encode_event(&event),
                        })
                        .collect(),
                )
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Binary encode → decode is the identity for every event variant, and
    /// the encoding is deterministic.
    #[test]
    fn every_event_variant_roundtrips_binary(event in arb_event()) {
        let bytes = codec::encode_event(&event);
        prop_assert!(codec::is_binary(&bytes));
        prop_assert_eq!(codec::encode_event(&event), bytes.clone());
        let decoded = codec::decode_event(&bytes).expect("decode own encoding");
        prop_assert_eq!(decoded, event);
    }

    /// The same decode entry point accepts the legacy serde_json rendering
    /// of every variant — the mixed-format log guarantee.
    #[test]
    fn every_event_variant_decodes_from_legacy_json(event in arb_event()) {
        let json = serde_json::to_vec(&event).expect("encode json");
        prop_assert!(!codec::is_binary(&json));
        let decoded = codec::decode_event(&json).expect("decode legacy json");
        prop_assert_eq!(decoded, event);
    }

    /// Generic value records (the snapshot path) round-trip through the
    /// binary framing and through the JSON fallback.
    #[test]
    fn value_records_roundtrip_both_formats(
        pairs in prop::collection::vec((0u32..1000, arb_answer()), 0..8)
    ) {
        let bytes = codec::to_bytes(&pairs);
        prop_assert!(codec::is_binary(&bytes));
        let decoded: Vec<(u32, Answer)> = codec::from_bytes(&bytes).expect("decode value");
        prop_assert_eq!(&decoded, &pairs);
        let json = serde_json::to_vec(&pairs).expect("encode json");
        let decoded: Vec<(u32, Answer)> = codec::from_bytes(&json).expect("decode json value");
        prop_assert_eq!(&decoded, &pairs);
    }

    /// Replication frames round-trip through the wire encoding.
    #[test]
    fn every_frame_variant_roundtrips(frame in arb_frame()) {
        let record = encode_frame(&frame);
        let decoded = decode_frame(&record).expect("decode own frame");
        prop_assert_eq!(decoded, frame);
    }

    /// Flipping any single bit anywhere in a framed event record — header,
    /// length, CRC, or body — makes decoding *fail*; it never yields a
    /// value (same or different) from corrupted bytes.
    #[test]
    fn flipping_any_bit_of_an_event_record_is_refused(event in arb_event()) {
        let bytes = codec::encode_event(&event);
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[i] ^= 1 << bit;
                prop_assert!(
                    codec::decode_event(&corrupt).is_err(),
                    "flip byte {} bit {} of {} decoded",
                    i,
                    bit,
                    bytes.len()
                );
            }
        }
    }

    /// The same all-positions refusal for the replication wire format.
    #[test]
    fn flipping_any_bit_of_a_wire_frame_is_refused(frame in arb_frame()) {
        let record = encode_frame(&frame);
        for i in 0..record.len() {
            for bit in 0..8 {
                let mut corrupt = record.clone();
                corrupt[i] ^= 1 << bit;
                prop_assert!(
                    decode_frame(&corrupt).is_err(),
                    "flip byte {} bit {} of {} decoded",
                    i,
                    bit,
                    record.len()
                );
            }
        }
    }

    /// Truncating a binary record at any boundary is refused (torn write).
    #[test]
    fn truncated_records_are_refused(event in arb_event()) {
        let bytes = codec::encode_event(&event);
        for len in 0..bytes.len() {
            prop_assert!(
                codec::decode_event(&bytes[..len]).is_err(),
                "truncation to {len} of {} decoded",
                bytes.len()
            );
        }
    }
}
