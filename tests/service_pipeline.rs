//! Integration tests for the pipelined submission/completion service API:
//! the pipelined crowd driver must be **byte-identical** to the blocking
//! driver for every `service shards × task_shards` combination, typed
//! rejections must travel the wire intact, and bounded ingress queues must
//! push back without losing work.

use docs_crowd::{AnswerModel, PopulationConfig, WorkerPopulation};
use docs_service::{
    drive_workers_blocking_on, drive_workers_on, DocsService, RejectReason, ServiceConfig,
    ServiceError, TicketWait,
};
use docs_system::{Docs, DocsConfig, WorkRequest};
use docs_types::{Answer, Task, TaskBuilder, TaskId, WorkerId};
use std::sync::Arc;
use std::time::Duration;

fn publish(n_tasks: usize, answers_per_task: usize, task_shards: usize) -> Docs {
    let kb = docs_kb::table2_example_kb();
    let subjects = ["Michael Jordan", "Kobe Bryant", "NBA"];
    let tasks: Vec<Task> = (0..n_tasks)
        .map(|i| {
            TaskBuilder::new(i, format!("Is {} great? ({i})", subjects[i % 3]))
                .yes_no()
                .with_ground_truth(i % 2)
                .with_true_domain(1)
                .build()
                .unwrap()
        })
        .collect();
    Docs::publish(
        &kb,
        tasks,
        DocsConfig {
            num_golden: 3,
            k_per_hit: 4,
            answers_per_task,
            z: 25,
            task_shards,
            ..Default::default()
        },
    )
    .unwrap()
}

fn population(workers: usize, seed: u64) -> WorkerPopulation {
    WorkerPopulation::generate(&PopulationConfig {
        m: 3,
        size: workers,
        seed,
        ..Default::default()
    })
}

fn published_tasks(n: usize) -> Arc<Vec<Task>> {
    Arc::new(publish(n, 3, 1).tasks().to_vec())
}

/// The headline invariant of the pipelined driver: for every
/// `shards × task_shards` combination in {1,4} × {1,4}, a deterministically
/// driven campaign produces byte-identical `RequesterReport` truths *and*
/// probability distributions whether the client pipelines (next HIT request
/// in flight behind the previous batch ack) or blocks on every round-trip.
/// One client thread keeps the request stream deterministic, so any
/// divergence is the pipelining reordering operations — exactly what the
/// per-shard FIFO forbids.
#[test]
fn pipelined_truths_equal_blocking_truths_for_every_shard_combination() {
    let n_tasks = 21;
    let seed = 0xF1FE;
    let run = |service_shards: usize, task_shards: usize, pipelined: bool| {
        let (service, handle) = DocsService::spawn_sharded(
            publish(n_tasks, 3, task_shards),
            ServiceConfig::sharded(service_shards),
        );
        let campaign = handle.default_campaign();
        let tasks = published_tasks(n_tasks);
        let pop = population(10, seed);
        let drive = if pipelined {
            drive_workers_on(
                &handle,
                campaign,
                tasks,
                &pop,
                AnswerModel::DomainUniform,
                1,
                seed,
            )
        } else {
            drive_workers_blocking_on(
                &handle,
                campaign,
                tasks,
                &pop,
                AnswerModel::DomainUniform,
                1,
                seed,
            )
        }
        .unwrap();
        let report = handle.finish_in(campaign).unwrap();
        drop(handle);
        service.join();
        (drive, report.truths, report.truth_distributions)
    };
    let (reference_drive, reference_truths, reference_dists) = run(1, 1, false);
    for service_shards in [1usize, 4] {
        for task_shards in [1usize, 4] {
            for pipelined in [false, true] {
                let (drive, truths, dists) = run(service_shards, task_shards, pipelined);
                let label = format!(
                    "shards={service_shards} task_shards={task_shards} pipelined={pipelined}"
                );
                assert_eq!(truths, reference_truths, "truths diverged: {label}");
                assert_eq!(dists, reference_dists, "distributions diverged: {label}");
                assert_eq!(
                    (
                        drive.total_answers(),
                        drive.total_golden(),
                        drive.total_rejected()
                    ),
                    (
                        reference_drive.total_answers(),
                        reference_drive.total_golden(),
                        reference_drive.total_rejected()
                    ),
                    "drive accounting diverged: {label}"
                );
            }
        }
    }
}

/// A multi-client pipelined drive through a tiny bounded ingress queue:
/// backpressure may park submitters but must lose nothing — the final
/// report accounts for every accepted answer, and the drained pool shows
/// no stuck depth or unresolved tickets.
#[test]
fn bounded_ingress_backpressure_loses_no_answers() {
    let (service, handle) = DocsService::spawn_sharded(
        publish(18, 4, 2),
        ServiceConfig::sharded(2).with_queue_capacity(2),
    );
    let campaign = handle.default_campaign();
    let tasks = published_tasks(18);
    let pop = population(12, 0x77);
    let report = drive_workers_on(
        &handle,
        campaign,
        tasks,
        &pop,
        AnswerModel::DomainUniform,
        4,
        0x77,
    )
    .unwrap();
    let final_report = handle.finish_in(campaign).unwrap();
    assert_eq!(
        report.total_answers(),
        final_report.answers_collected,
        "backpressure lost answers"
    );
    assert!(final_report.answers_collected >= 18 * 4, "budget consumed");
    let shards = handle.metrics().all_shards();
    assert!(shards.iter().all(|s| s.queued == 0), "queues drained");
    assert!(shards.iter().all(|s| s.in_flight == 0), "tickets resolved");
    drop(handle);
    service.join();
}

/// Typed rejections over the wire: a strict-budget campaign refuses late
/// answers with `RejectReason::BudgetExhausted`, matchable at the client —
/// and the per-answer batch outcome carries the same taxonomy.
#[test]
fn strict_budget_rejection_is_matchable_at_the_client() {
    let kb = docs_kb::table2_example_kb();
    let tasks: Vec<Task> = (0..2)
        .map(|i| {
            TaskBuilder::new(i, format!("Is Kobe Bryant great? ({i})"))
                .yes_no()
                .with_ground_truth(i % 2)
                .with_true_domain(1)
                .build()
                .unwrap()
        })
        .collect();
    let docs = Docs::publish(
        &kb,
        tasks,
        DocsConfig {
            num_golden: 0,
            k_per_hit: 2,
            answers_per_task: 1,
            z: 10,
            strict_budget: true,
            ..Default::default()
        },
    )
    .unwrap();
    let (service, handle) = DocsService::spawn(docs);
    for t in 0..2u32 {
        handle
            .submit_answer(Answer::new(WorkerId(0), TaskId(t), 0))
            .unwrap();
    }
    // Budget (2 × 1) consumed: the straggler is refused, with the reason.
    let err = handle
        .submit_answer(Answer::new(WorkerId(1), TaskId(0), 1))
        .unwrap_err();
    assert_eq!(err, ServiceError::Rejected(RejectReason::BudgetExhausted));
    assert_eq!(
        err.reason(),
        Some(&RejectReason::BudgetExhausted),
        "reason() exposes the taxonomy"
    );
    let outcome = handle
        .submit_answer_batch(vec![Answer::new(WorkerId(1), TaskId(1), 1)])
        .unwrap();
    assert_eq!(outcome.accepted, 0);
    assert_eq!(outcome.rejected, vec![(0, RejectReason::BudgetExhausted)]);
    drop(handle);
    service.join();
}

/// The ticket API end to end against a live pool: submissions complete in
/// order, `try_take` polling eventually resolves, and `wait_timeout` hands
/// a still-pending ticket back instead of dropping the operation.
#[test]
fn tickets_resolve_against_a_live_service() {
    let (service, handle) = DocsService::spawn(publish(9, 2, 1));
    let campaign = handle.default_campaign();
    let w = WorkerId(0);
    // Pipeline the golden hand-shake: request ticket, poll it, submit the
    // golden answers as a ticket, then request again — two operations in
    // flight back to back.
    let mut ticket = handle.request_tasks_ticket_in(campaign, w).unwrap();
    let work = loop {
        match ticket.try_take() {
            TicketWait::Ready(result) => break result.unwrap(),
            TicketWait::Pending(t) => {
                ticket = match t.wait_timeout(Duration::from_millis(5)) {
                    TicketWait::Ready(result) => break result.unwrap(),
                    TicketWait::Pending(t) => t,
                };
            }
        }
    };
    let golden = match work {
        WorkRequest::Golden(g) => g,
        other => panic!("expected golden HIT, got {other:?}"),
    };
    let answers: Vec<_> = golden.iter().map(|&g| (g, g.index() % 2)).collect();
    let golden_ack = handle
        .submit_golden_ticket_in(campaign, w, answers)
        .unwrap();
    let next = handle.request_tasks_ticket_in(campaign, w).unwrap();
    // FIFO: by the time the later request completed, the golden ack landed.
    let hit = match next.wait().unwrap() {
        WorkRequest::Tasks(t) => t,
        other => panic!("expected tasks after golden, got {other:?}"),
    };
    assert!(!hit.is_empty());
    match golden_ack.try_take() {
        TicketWait::Ready(result) => result.unwrap(),
        TicketWait::Pending(_) => panic!("golden ack must precede the later completion"),
    }
    assert_eq!(handle.metrics().shard(0).in_flight, 0);
    drop(handle);
    service.join();
}
