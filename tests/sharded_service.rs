//! Integration tests for the sharded multi-campaign service runtime:
//! many client threads hammering several campaigns at once, with the
//! acceptance bar that sharding changes *throughput*, never *answers*:
//! no submission is lost, and final truths are byte-identical to the
//! single-shard (seed-architecture) path.

use docs_crowd::{AnswerModel, PopulationConfig, WorkerPopulation};
use docs_service::{drive_workers_on, DocsService, DriveReport, ServiceConfig, ServiceHandle};
use docs_system::{Docs, DocsConfig};
use docs_types::{CampaignId, Task, TaskBuilder};
use std::sync::Arc;

fn publish(n_tasks: usize, answers_per_task: usize, task_shards: usize) -> Docs {
    publish_indexed(n_tasks, answers_per_task, task_shards, false)
}

fn publish_indexed(
    n_tasks: usize,
    answers_per_task: usize,
    task_shards: usize,
    use_benefit_index: bool,
) -> Docs {
    let kb = docs_kb::table2_example_kb();
    let subjects = ["Michael Jordan", "Kobe Bryant", "NBA"];
    let tasks: Vec<Task> = (0..n_tasks)
        .map(|i| {
            TaskBuilder::new(i, format!("Is {} great? ({i})", subjects[i % 3]))
                .yes_no()
                .with_ground_truth(i % 2)
                .with_true_domain(1)
                .build()
                .unwrap()
        })
        .collect();
    Docs::publish(
        &kb,
        tasks,
        DocsConfig {
            num_golden: 3,
            k_per_hit: 4,
            answers_per_task,
            z: 25,
            task_shards,
            use_benefit_index,
            ..Default::default()
        },
    )
    .unwrap()
}

fn population(workers: usize, seed: u64) -> WorkerPopulation {
    WorkerPopulation::generate(&PopulationConfig {
        m: 3,
        size: workers,
        seed,
        ..Default::default()
    })
}

/// Drives one campaign and returns its drive report plus final truths.
fn drive_campaign(
    handle: &ServiceHandle,
    campaign: CampaignId,
    tasks: Arc<Vec<Task>>,
    threads: usize,
    seed: u64,
) -> (DriveReport, Vec<usize>, usize) {
    let pop = population(10, seed);
    let report = drive_workers_on(
        handle,
        campaign,
        tasks,
        &pop,
        AnswerModel::DomainUniform,
        threads,
        seed,
    )
    .unwrap();
    let final_report = handle.finish_in(campaign).unwrap();
    (report, final_report.truths, final_report.answers_collected)
}

/// ≥8 client threads, 2 campaigns, multi-shard pool: every accepted
/// submission must be accounted for in the campaign's final report (no lost
/// answers), and both campaigns must consume their full budget.
#[test]
fn concurrent_multi_campaign_drive_loses_no_answers() {
    let (service, handle) =
        DocsService::spawn_sharded(publish(18, 4, 1), ServiceConfig::sharded(3));
    let c1 = handle.default_campaign();
    let c2 = handle.create_campaign(publish(24, 3, 1)).unwrap();
    let tasks1 = Arc::new(published_tasks(18));
    let tasks2 = Arc::new(published_tasks(24));

    // 4 client threads per campaign = 8 concurrent clients.
    let h1 = handle.clone();
    let t1 = {
        let tasks1 = Arc::clone(&tasks1);
        std::thread::spawn(move || drive_campaign(&h1, c1, tasks1, 4, 0xA1))
    };
    let h2 = handle.clone();
    let t2 = {
        let tasks2 = Arc::clone(&tasks2);
        std::thread::spawn(move || drive_campaign(&h2, c2, tasks2, 4, 0xB2))
    };
    let (report1, truths1, collected1) = t1.join().unwrap();
    let (report2, truths2, collected2) = t2.join().unwrap();

    // No lost answers: everything the clients saw accepted is in the final
    // report (golden answers are accounted separately by the system).
    assert_eq!(
        report1.total_answers(),
        collected1,
        "campaign 1 lost answers"
    );
    assert_eq!(
        report2.total_answers(),
        collected2,
        "campaign 2 lost answers"
    );
    // Both campaigns consumed their full budget despite sharing the pool.
    assert!(collected1 >= 18 * 4, "campaign 1 budget: {collected1}");
    assert!(collected2 >= 24 * 3, "campaign 2 budget: {collected2}");
    assert_eq!(truths1.len(), 18);
    assert_eq!(truths2.len(), 24);

    // The pool processed every request and drained its queues.
    let shards = handle.metrics().all_shards();
    let processed: u64 = shards.iter().map(|s| s.processed).sum();
    assert_eq!(processed, handle.metrics().total_ops());
    assert!(shards.iter().all(|s| s.queued == 0), "queues drained");

    drop(handle);
    let campaigns = service.join_all();
    assert_eq!(campaigns.len(), 2);
    for (_, docs) in &campaigns {
        assert!(docs.budget_exhausted());
    }
}

/// The shards=1 equivalence bar: 8 campaigns driven concurrently on a
/// 4-shard pool (one deterministic client thread each, 8 client threads
/// total) produce byte-identical truths and truth distributions to the same
/// campaigns driven one-by-one on the seed's single-shard runtime.
#[test]
fn sharded_truths_equal_single_shard_truths() {
    let campaign_specs: Vec<(usize, u64)> = (0..8).map(|i| (12 + 3 * i, 0xC0 + i as u64)).collect();

    // Reference: single-shard service and single-task-shard scan, campaigns
    // run sequentially (the seed architecture).
    let mut reference = Vec::new();
    for &(n_tasks, seed) in &campaign_specs {
        let (service, handle) = DocsService::spawn(publish(n_tasks, 3, 1));
        let campaign = handle.default_campaign();
        let tasks = Arc::new(published_tasks(n_tasks));
        let pop = population(10, seed);
        drive_workers_on(
            &handle,
            campaign,
            tasks,
            &pop,
            AnswerModel::DomainUniform,
            1,
            seed,
        )
        .unwrap();
        let report = handle.finish_in(campaign).unwrap();
        reference.push((report.truths, report.truth_distributions));
        drop(handle);
        service.join();
    }

    // Sharded: all 8 campaigns live on a 4-shard pool with a 4-way
    // partitioned benefit scan, driven concurrently.
    let (service, handle) = DocsService::spawn_sharded(
        publish(campaign_specs[0].0, 3, 4),
        ServiceConfig::sharded(4),
    );
    let mut ids = vec![handle.default_campaign()];
    for &(n_tasks, _) in &campaign_specs[1..] {
        ids.push(handle.create_campaign(publish(n_tasks, 3, 4)).unwrap());
    }
    let drivers: Vec<_> = campaign_specs
        .iter()
        .zip(&ids)
        .map(|(&(n_tasks, seed), &campaign)| {
            let handle = handle.clone();
            let tasks = Arc::new(published_tasks(n_tasks));
            std::thread::spawn(move || {
                let pop = population(10, seed);
                drive_workers_on(
                    &handle,
                    campaign,
                    tasks,
                    &pop,
                    AnswerModel::DomainUniform,
                    1,
                    seed,
                )
                .unwrap();
                let report = handle.finish_in(campaign).unwrap();
                (report.truths, report.truth_distributions)
            })
        })
        .collect();
    let sharded: Vec<_> = drivers.into_iter().map(|t| t.join().unwrap()).collect();

    for (i, ((ref_truths, ref_dists), (truths, dists))) in
        reference.iter().zip(&sharded).enumerate()
    {
        assert_eq!(truths, ref_truths, "campaign {i}: truths diverged");
        assert_eq!(
            dists, ref_dists,
            "campaign {i}: truth distributions diverged"
        );
    }
    drop(handle);
    service.join_all();
}

/// The scan/index equivalence bar of the incremental benefit index, at the
/// service level: the same deterministically driven campaign must produce
/// **byte-identical** truths and truth distributions with the benefit index
/// on and off, for every `service shards × task_shards` combination in
/// {1,4} × {1,4}. One client thread per campaign keeps the request stream
/// deterministic, so any divergence is the index picking different tasks —
/// exactly what the invariant forbids.
#[test]
fn indexed_truths_equal_scan_truths_for_every_shard_combination() {
    let n_tasks = 21;
    let seed = 0xD0C5;
    let run = |service_shards: usize, task_shards: usize, use_index: bool| {
        let (service, handle) = DocsService::spawn_sharded(
            publish_indexed(n_tasks, 3, task_shards, use_index),
            ServiceConfig::sharded(service_shards),
        );
        let campaign = handle.default_campaign();
        let tasks = Arc::new(published_tasks(n_tasks));
        let pop = population(10, seed);
        drive_workers_on(
            &handle,
            campaign,
            tasks,
            &pop,
            AnswerModel::DomainUniform,
            1,
            seed,
        )
        .unwrap();
        let report = handle.finish_in(campaign).unwrap();
        drop(handle);
        service.join();
        (report.truths, report.truth_distributions)
    };
    let reference = run(1, 1, false);
    for service_shards in [1usize, 4] {
        for task_shards in [1usize, 4] {
            for use_index in [false, true] {
                let (truths, dists) = run(service_shards, task_shards, use_index);
                let label =
                    format!("shards={service_shards} task_shards={task_shards} index={use_index}");
                assert_eq!(truths, reference.0, "truths diverged: {label}");
                assert_eq!(dists, reference.1, "distributions diverged: {label}");
            }
        }
    }
}

/// The published (DVE-filled) task list of an `n`-task campaign, so the
/// simulated workers can answer from ground truth. The service does not
/// expose tasks over the wire (the real deployment serves task
/// *descriptions* through the platform); publishing is deterministic in the
/// task list, so rebuilding yields the same tasks every campaign uses.
fn published_tasks(n: usize) -> Vec<Task> {
    publish(n, 3, 1).tasks().to_vec()
}
