//! Scenario-harness invariants: byte-reproducibility across the topology
//! matrix, and the paper's quality claim as a regression test.
//!
//! 1. **Seed determinism** — the same [`ScenarioSpec`] produces a
//!    byte-identical answer stream (golden and ordinary, in submission
//!    order) and byte-identical final truths across the
//!    `shards × task_shards` matrix. This is what makes a spec's JSON
//!    manifest a complete repro recipe: quality numbers can only move when
//!    inference itself moves, never because a topology knob or a hash-map
//!    seed did.
//! 2. **DOCS ≥ majority vote on honest crowds** — every honest registry
//!    scenario, shrunk to test size, must keep per-domain inference at or
//!    above the majority-vote baseline computed over the *same* mirrored
//!    answers. The full-size claim is asserted by the `quality` bench
//!    before `BENCH_quality.json` is merged.

use docs_scenarios::{registry, run_scenario, score, ArrivalSpec, PopulationClass, ServiceSpec};
use proptest::prelude::*;

fn spec_for(
    class: PopulationClass,
    arrivals: ArrivalSpec,
    seed: u64,
    shards: usize,
    task_shards: usize,
) -> docs_scenarios::ScenarioSpec {
    let mut spec = docs_scenarios::named("four_domain_honest")
        .expect("registry scenario")
        .shrunk(48, 4);
    spec.name = "prop_matrix".to_string();
    spec.population.class = class;
    spec.arrivals = arrivals;
    spec.service = ServiceSpec::InMemory { shards };
    spec.task_shards = task_shards;
    spec.seed = seed;
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Same spec → byte-identical answer log and truths, for every
    /// combination of service shards and task shards, any population
    /// class, any arrival pattern.
    #[test]
    fn scenario_runs_are_byte_identical_across_the_shard_matrix(
        seed in 0u64..1000,
        class_pick in 0usize..4,
        arrival_pick in 0usize..3,
    ) {
        let class = [
            PopulationClass::Honest,
            PopulationClass::Spammers { fraction: 0.25 },
            PopulationClass::Colluders { fraction: 0.25, cliques: 2, collusion: 0.8 },
            PopulationClass::Drifters { fraction: 0.5, slope: -0.4 },
        ][class_pick];
        let arrivals = [
            ArrivalSpec::Uniform,
            ArrivalSpec::Zipf { exponent: 1.1 },
            ArrivalSpec::Bursty { window: 8, hold: 16 },
        ][arrival_pick];

        let reference = run_scenario(&spec_for(class, arrivals, seed, 1, 1));
        for (shards, task_shards) in [(1usize, 4usize), (4, 1), (4, 4)] {
            let other = run_scenario(&spec_for(class, arrivals, seed, shards, task_shards));
            prop_assert_eq!(
                &reference.mirror.golden, &other.mirror.golden,
                "golden stream diverged at shards={} task_shards={}", shards, task_shards
            );
            prop_assert_eq!(
                &reference.mirror.flat, &other.mirror.flat,
                "answer stream diverged at shards={} task_shards={}", shards, task_shards
            );
            prop_assert_eq!(
                &reference.report.truths, &other.report.truths,
                "truths diverged at shards={} task_shards={}", shards, task_shards
            );
        }
    }
}

/// The paper's core claim as a regression test: on every honest registry
/// scenario, DOCS accuracy must be at or above majority vote over the same
/// answers. Scenarios are shrunk for test time; the quality bench asserts
/// the full-size versions.
#[test]
fn docs_beats_majority_vote_on_every_honest_scenario() {
    for spec in registry() {
        if !spec.population.class.is_honest() {
            continue;
        }
        let q = score(&run_scenario(&spec.shrunk(120, 8)));
        assert!(
            q.docs_accuracy >= q.majority_accuracy,
            "{}: DOCS {:.4} lost to majority vote {:.4}",
            q.scenario,
            q.docs_accuracy,
            q.majority_accuracy
        );
    }
}

/// Two runs of the same spec in the same process are byte-identical —
/// the in-process half of reproducibility (fresh hash-map instances,
/// fresh threads, same bytes).
#[test]
fn repeated_runs_are_byte_identical() {
    let spec = docs_scenarios::named("four_domain_honest")
        .expect("registry scenario")
        .shrunk(60, 4);
    let a = run_scenario(&spec);
    let b = run_scenario(&spec);
    assert_eq!(a.mirror.golden, b.mirror.golden);
    assert_eq!(a.mirror.flat, b.mirror.flat);
    assert_eq!(a.report.truths, b.report.truths);
}

/// The manifest round-trip carries the run: a spec parsed back from its
/// JSON produces the same bytes as the original.
#[test]
fn manifest_json_reproduces_the_run() {
    let spec = docs_scenarios::named("item_honest")
        .expect("registry scenario")
        .shrunk(60, 4);
    let parsed = docs_scenarios::ScenarioSpec::from_json(&spec.to_json()).expect("parse");
    let a = run_scenario(&spec);
    let b = run_scenario(&parsed);
    assert_eq!(a.mirror.flat, b.mirror.flat);
    assert_eq!(a.report.truths, b.report.truths);
}
