//! Crash-at-any-event recovery: the headline invariant of the durable
//! event-sourced runtime.
//!
//! Kill the service mid-campaign at an arbitrary event, recover from the
//! durability directory, drive the rest of the workload, finish — the
//! `RequesterReport` must be **byte-identical** (truths *and* probability
//! distributions) to an uninterrupted in-memory run, for every
//! `shards × task_shards × flush-policy` combination, including a torn
//! final WAL record and a recovery that changes the shard count.
//!
//! Why byte-identity is achievable: `finish` runs the full iterative
//! inference, which depends only on the tasks (exact float round-trip
//! through snapshots), the answer log, and the golden registry — all of
//! which the log replay reconstructs exactly. Group commit may lose an
//! acknowledged suffix at the kill ([`FlushPolicy::Batch`] trades that for
//! throughput); the driver below re-submits the full operation stream, and
//! the duplicate-answer rule turns the already-recovered prefix into
//! deterministic no-ops.

use docs_service::{
    AdaptiveCommit, DocsService, DurabilityConfig, ServiceConfig, ServiceError, ServiceHandle,
};
use docs_storage::FlushPolicy;
use docs_system::{Docs, DocsConfig, RequesterReport, WorkRequest};
use docs_types::{Answer, CampaignId, ChoiceIndex, Task, TaskBuilder, TaskId, WorkerId};
use std::path::{Path, PathBuf};

const NUM_TASKS: usize = 12;
const NUM_WORKERS: u32 = 5;

/// One recorded platform operation, replayable against any service.
#[derive(Debug, Clone)]
enum Op {
    Golden(WorkerId, Vec<(TaskId, ChoiceIndex)>),
    Answer(Answer),
}

fn tasks() -> Vec<Task> {
    let subjects = ["Michael Jordan", "Kobe Bryant", "NBA"];
    (0..NUM_TASKS)
        .map(|i| {
            TaskBuilder::new(i, format!("Is {} great? ({i})", subjects[i % 3]))
                .yes_no()
                .with_ground_truth(i % 2)
                .with_true_domain(1)
                .build()
                .unwrap()
        })
        .collect()
}

fn docs_config(task_shards: usize, durable_flush: Option<FlushPolicy>) -> DocsConfig {
    DocsConfig {
        num_golden: 3,
        k_per_hit: 3,
        answers_per_task: 3,
        z: 5, // small period: replay crosses several full-inference runs
        task_shards,
        durable_flush,
        ..Default::default()
    }
}

fn publish(task_shards: usize, durable_flush: Option<FlushPolicy>) -> Docs {
    Docs::publish(
        &docs_kb::table2_example_kb(),
        tasks(),
        docs_config(task_shards, durable_flush),
    )
    .unwrap()
}

/// Deterministic worker choice — varies by task and worker so TI has
/// disagreement to resolve.
fn choice_of(worker: WorkerId, task: TaskId) -> ChoiceIndex {
    if worker.0.is_multiple_of(2) {
        task.index() % 2 // majority answers the ground truth
    } else {
        (task.index() + worker.0 as usize) % 2
    }
}

/// Drives an uninterrupted in-memory campaign, recording every submission;
/// returns the operation stream and the reference report.
fn oracle(task_shards: usize) -> (Vec<Op>, RequesterReport) {
    let mut docs = publish(task_shards, None);
    let mut ops = Vec::new();
    let mut idle_rounds = 0;
    while !docs.budget_exhausted() && idle_rounds < 2 {
        let mut progressed = false;
        for w in 0..NUM_WORKERS {
            let w = WorkerId(w);
            match docs.request_tasks(w) {
                WorkRequest::Golden(golden) => {
                    let answers: Vec<_> = golden.iter().map(|&g| (g, choice_of(w, g))).collect();
                    docs.submit_golden(w, &answers).unwrap();
                    ops.push(Op::Golden(w, answers));
                    progressed = true;
                }
                WorkRequest::Tasks(hit) => {
                    for t in hit {
                        let answer = Answer::new(w, t, choice_of(w, t));
                        docs.submit_answer(answer).unwrap();
                        ops.push(Op::Answer(answer));
                        progressed = true;
                    }
                }
                WorkRequest::Done => {}
            }
        }
        idle_rounds = if progressed { 0 } else { idle_rounds + 1 };
    }
    let report = docs.finish().unwrap();
    (ops, report)
}

/// Submits one op, tolerating deterministic rejections (duplicates of the
/// already-recovered prefix).
fn submit(handle: &ServiceHandle, campaign: CampaignId, op: &Op) {
    let result = match op {
        Op::Golden(w, answers) => handle.submit_golden_in(campaign, *w, answers.clone()),
        Op::Answer(answer) => handle.submit_answer_in(campaign, *answer),
    };
    match result {
        Ok(()) | Err(ServiceError::Rejected(_)) => {}
        Err(e) => panic!("service failed: {e}"),
    }
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("docs-recovery-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn service_config(shards: usize, dir: &Path, policy: FlushPolicy) -> ServiceConfig {
    ServiceConfig {
        shards,
        durability: Some(DurabilityConfig {
            dir: dir.to_path_buf(),
            default_flush: policy,
            // Small cadence so the run crosses snapshot + prune cycles.
            snapshot_every: 7,
            adaptive: Some(AdaptiveCommit::default()),
        }),
        ..Default::default()
    }
}

fn assert_byte_identical(report: &RequesterReport, reference: &RequesterReport, label: &str) {
    assert_eq!(report.truths, reference.truths, "truths diverged: {label}");
    assert_eq!(
        report.truth_distributions, reference.truth_distributions,
        "probabilistic truths diverged: {label}"
    );
    assert_eq!(
        report.answers_collected, reference.answers_collected,
        "{label}"
    );
    assert_eq!(report.accuracy, reference.accuracy, "{label}");
}

/// Runs the full kill → recover → resume cycle and checks byte-identity.
///
/// `recover_shards` lets the recovering pool use a different shard count
/// than the writing one. `tear_tail` appends a partial WAL record to the
/// campaign's segment after the kill (a crash mid-append).
fn crash_recover_case(
    name: &str,
    shards: usize,
    recover_shards: usize,
    task_shards: usize,
    policy: FlushPolicy,
    crash_at: usize,
    tear_tail: bool,
) {
    let label = format!(
        "{name}: shards {shards}→{recover_shards}, task_shards {task_shards}, \
         policy {policy:?}, crash at {crash_at}"
    );
    let (ops, reference) = oracle(task_shards);
    assert!(!ops.is_empty());
    let crash_at = crash_at.min(ops.len());
    let dir = tmp_dir(name);

    // Phase 1: serve the prefix durably, then die without flushing.
    let config = service_config(shards, &dir, policy);
    let (service, handle) = DocsService::spawn_sharded(publish(task_shards, Some(policy)), config);
    let campaign = handle.default_campaign();
    for op in &ops[..crash_at] {
        submit(&handle, campaign, op);
    }
    handle.simulate_crash();
    drop(handle);
    let _ = service.join_all();

    if tear_tail {
        // A record header promising more bytes than exist, at the tail of
        // the campaign's shard segment.
        let shard_dir = dir.join(format!("shard-{}", campaign.shard(shards)));
        let mut segments: Vec<PathBuf> = std::fs::read_dir(&shard_dir)
            .unwrap()
            .filter_map(|e| {
                let p = e.unwrap().path();
                p.file_name()?.to_str()?.starts_with("events-").then_some(p)
            })
            .collect();
        segments.sort();
        let last = segments.last().expect("campaign has a log segment");
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new().append(true).open(last).unwrap();
        f.write_all(&[200, 0, 0, 0, 7, 7, 7, 7, b'x', b'y'])
            .unwrap();
    }

    // Phase 2: recover (possibly with a different shard count), re-drive
    // the whole stream, finish.
    let config = service_config(recover_shards, &dir, policy);
    let (service, handle) = DocsService::recover(config).expect("recovery succeeds");
    assert_eq!(handle.default_campaign(), campaign, "{label}");
    assert!(
        handle.metrics().durability().snapshots_loaded >= 1,
        "{label}"
    );
    // Satellite regression: `Wal::replay_all` classifies the torn tail,
    // and the count must surface in `DurabilityStats` instead of being
    // silently dropped after recovery.
    if tear_tail {
        assert!(
            handle.metrics().durability().torn_tail_recoveries >= 1,
            "torn tail swallowed instead of surfacing in DurabilityStats: {label}"
        );
    }
    for op in &ops {
        submit(&handle, campaign, op);
    }
    let report = handle.finish_in(campaign).expect("finish after recovery");
    assert_byte_identical(&report, &reference, &label);
    drop(handle);
    let _ = service.join_all();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recovery_is_byte_identical_across_shards_task_shards_and_flush_policies() {
    let policies = [
        FlushPolicy::EveryEvent,
        FlushPolicy::Batch(8),
        // Long interval: almost nothing auto-flushes, so recovery leans on
        // creation/snapshot syncs — the worst case for durable coverage.
        FlushPolicy::IntervalMs(10_000),
    ];
    for shards in [1usize, 4] {
        for task_shards in [1usize, 4] {
            for policy in policies {
                crash_recover_case(
                    &format!("matrix-{shards}-{task_shards}-{}", policy.label()),
                    shards,
                    shards,
                    task_shards,
                    policy,
                    23, // mid-campaign, past golden bootstrap and a z-cycle
                    false,
                );
            }
        }
    }
}

#[test]
fn recovery_survives_a_torn_final_wal_record() {
    for policy in [FlushPolicy::EveryEvent, FlushPolicy::Batch(4)] {
        crash_recover_case(
            &format!("torn-{}", policy.label()),
            1,
            1,
            4,
            policy,
            17,
            true,
        );
    }
}

#[test]
fn recovery_at_the_edges_of_the_stream() {
    // Crash before any event, after the first event, and after the last.
    for crash_at in [0usize, 1, usize::MAX] {
        crash_recover_case(
            &format!("edge-{crash_at}"),
            1,
            1,
            1,
            FlushPolicy::EveryEvent,
            crash_at,
            false,
        );
    }
}

#[test]
fn recovery_rehomes_campaigns_when_the_shard_count_changes() {
    crash_recover_case("reshard-up", 1, 4, 4, FlushPolicy::Batch(8), 23, false);
    crash_recover_case("reshard-down", 4, 1, 1, FlushPolicy::EveryEvent, 23, true);
}

/// Satellite regression: `FlushPolicy::IntervalMs`'s elapsed check only
/// runs at *append* time, so before the idle-flush fix a shard that went
/// quiet kept acknowledged events buffered indefinitely — a crash then lost
/// them even though the interval had long expired. Now the shard loop
/// hardens the buffer when the window elapses with no traffic: a crash
/// after the idle window recovers every acknowledged event.
#[test]
fn interval_policy_flushes_on_idle_so_a_later_crash_loses_nothing() {
    let policy = FlushPolicy::IntervalMs(40);
    let (ops, _) = oracle(1);
    let dir = tmp_dir("interval-idle-flush");
    let config = service_config(1, &dir, policy);
    let (service, handle) = DocsService::spawn_sharded(publish(1, Some(policy)), config);
    let campaign = handle.default_campaign();
    // Burst a prefix quickly (everything lands in the group-commit buffer;
    // at most the first append syncs, via the creation flush resetting the
    // window), then go idle past the interval.
    let prefix = 9.min(ops.len());
    for op in &ops[..prefix] {
        submit(&handle, campaign, op);
    }
    std::thread::sleep(std::time::Duration::from_millis(400));
    // Crash: the in-process kill abandons whatever is still buffered. The
    // idle flush must have left that buffer empty.
    handle.simulate_crash();
    drop(handle);
    let _ = service.join_all();

    let recovered = docs_storage::recover_tree(&dir).expect("clean recovery");
    let rec = &recovered.campaigns[&campaign];
    // Published + one event per prefix op: every acknowledged event
    // survived the idle window + crash.
    assert_eq!(
        rec.last_seq,
        1 + prefix as u64,
        "acknowledged events were lost across the idle window"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The inverse guarantee: a *simulated kill* must not be defeated by the
/// idle-flush timer. Once the crash flag is up, the timer firing must end
/// the shard (abandoning the buffer) rather than harden the events the
/// kill is supposed to lose.
#[test]
fn simulated_crash_is_not_defeated_by_the_idle_flush_timer() {
    let policy = FlushPolicy::IntervalMs(100);
    let (ops, _) = oracle(1);
    let dir = tmp_dir("crash-vs-idle-timer");
    let (service, handle) =
        DocsService::spawn_sharded(publish(1, Some(policy)), service_config(1, &dir, policy));
    let campaign = handle.default_campaign();
    let prefix = 9.min(ops.len());
    for op in &ops[..prefix] {
        submit(&handle, campaign, op);
    }
    handle.simulate_crash();
    // The handle stays alive: the only way the shard can stop is the idle
    // timer waking it with the crash flag already set. Joining here both
    // proves it stops and rules out the buggy flush-and-continue path
    // (which would leave the shard blocked and this join hanging).
    let _ = service.join_all();
    drop(handle);
    let recovered = docs_storage::recover_tree(&dir).expect("clean recovery");
    let rec = &recovered.campaigns[&campaign];
    assert!(
        rec.last_seq < 1 + prefix as u64,
        "the killed shard's unsynced tail must be lost, not idle-flushed \
         (recovered seq {} of {})",
        rec.last_seq,
        1 + prefix
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite regression: crash with a non-empty *unsynced* buffer under
/// `IntervalMs`. Recovery must replay cleanly to the last synced event —
/// the buffered suffix simply vanishes; it must not surface as a mid-log
/// CRC error or sequence gap.
#[test]
fn interval_crash_with_unsynced_buffer_replays_to_the_last_synced_event() {
    // A long window (and a huge snapshot cadence) so nothing auto-syncs
    // between the explicit synced points.
    let policy = FlushPolicy::IntervalMs(60_000);
    let (ops, _) = oracle(2);
    let dir = tmp_dir("interval-unsynced-buffer");
    let config = ServiceConfig {
        shards: 1,
        durability: Some(DurabilityConfig {
            dir: dir.clone(),
            default_flush: policy,
            snapshot_every: 100_000,
            adaptive: Some(AdaptiveCommit::default()),
        }),
        ..Default::default()
    };
    let (service, handle) = DocsService::spawn_sharded(publish(2, Some(policy)), config.clone());
    let campaign = handle.default_campaign();
    let split = 11.min(ops.len());
    for op in &ops[..split] {
        submit(&handle, campaign, op);
    }
    // Finish hardens everything buffered so far (the unconditional sync on
    // finish) — the durable frontier.
    let _ = handle.finish_in(campaign).expect("finish");
    let synced_seq = 1 + split as u64 + 1; // Published + prefix + Finished
                                           // More acknowledged-but-unsynced events, then the kill.
    for op in &ops[split..] {
        submit(&handle, campaign, op);
    }
    handle.simulate_crash();
    drop(handle);
    let _ = service.join_all();

    // recover_tree: no spurious mid-log CRC error, no gap — just a clean
    // stop at the last synced event.
    let recovered = docs_storage::recover_tree(&dir).expect("unsynced buffer is not corruption");
    let rec = &recovered.campaigns[&campaign];
    assert_eq!(
        rec.last_seq, synced_seq,
        "recovery frontier must be the last synced event"
    );
    // The recovered service serves from that frontier; re-driving the full
    // stream converges to the oracle (duplicates reject deterministically).
    let (service, handle) = DocsService::recover(config).expect("recovery succeeds");
    for op in &ops {
        submit(&handle, campaign, op);
    }
    let report = handle.finish_in(campaign).expect("finish after recovery");
    let (_, reference) = oracle(2);
    assert_byte_identical(&report, &reference, "interval unsynced buffer");
    drop(handle);
    let _ = service.join_all();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn multi_campaign_recovery_preserves_every_durable_campaign() {
    let dir = tmp_dir("multi");
    let policy = FlushPolicy::EveryEvent;
    let (ops, reference) = oracle(2);
    let config = service_config(4, &dir, policy);
    let (service, handle) = DocsService::spawn_sharded(publish(2, Some(policy)), config);
    let c0 = handle.default_campaign();
    // A second durable campaign (different geometry) and a memory-only one.
    let c1 = handle.create_campaign_durable(publish(3, None)).unwrap();
    let c2 = handle.create_campaign(publish(1, None)).unwrap();
    for op in &ops[..20] {
        submit(&handle, c0, op);
        submit(&handle, c1, op);
        submit(&handle, c2, op);
    }
    handle.simulate_crash();
    drop(handle);
    let _ = service.join_all();

    let (service, handle) = DocsService::recover(service_config(4, &dir, policy)).unwrap();
    // The memory-only campaign died with the process; both durable ones
    // came back and can run to an identical report.
    let err = handle.request_tasks_in(c2, WorkerId(0)).unwrap_err();
    assert!(matches!(err, ServiceError::Rejected(_)));
    for op in &ops {
        submit(&handle, c0, op);
        submit(&handle, c1, op);
    }
    let r0 = handle.finish_in(c0).unwrap();
    assert_byte_identical(&r0, &reference, "multi-campaign c0");
    let r1 = handle.finish_in(c1).unwrap();
    assert_eq!(r1.truths.len(), NUM_TASKS);
    let d = handle.metrics().durability();
    assert_eq!(d.snapshots_loaded, 2);
    drop(handle);
    let _ = service.join_all();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite pin: a pre-upgrade durability directory — serde_json snapshot
/// payload plus serde_json event records, the exact bytes every log before
/// the binary codec was written in — recovers byte-identically, accepts
/// binary appends into the *same* log (mixed-format segments), survives a
/// crash, and replays both formats on the second recovery. The binary-era
/// snapshot cadence then rewrites the baseline in the new format
/// (upgrade-on-snapshot) without ever rewriting history.
#[test]
fn mixed_format_log_json_seed_plus_binary_appends_recovers_byte_identical() {
    use docs_types::{CampaignEvent, PublishedEvent};

    let policy = FlushPolicy::EveryEvent;
    let (ops, reference) = oracle(1);
    let prefix = ops.len() / 2;
    assert!(prefix > 0);
    let dir = tmp_dir("mixed-format");

    // Phase 1: hand-write the JSON-era directory, mirroring what the old
    // service's create path produced: snapshot at sequence 0, the
    // Published event at 1, then the op stream — all payloads serde_json.
    {
        let docs = publish(1, Some(policy));
        let campaign = CampaignId(0);
        let mut log = docs_storage::CampaignLog::open(dir.join("shard-0")).expect("open log");
        log.register(campaign, policy, 0);
        log.write_snapshot(campaign, &serde_json::to_vec(&docs.snapshot()).unwrap())
            .expect("json snapshot");
        let published = CampaignEvent::Published(PublishedEvent {
            campaign,
            num_tasks: docs.tasks().len() as u32,
            num_golden: docs.golden_ids().len() as u32,
        });
        log.append_event(campaign, &serde_json::to_vec(&published).unwrap())
            .expect("published event");
        for op in &ops[..prefix] {
            let event = match op {
                Op::Golden(w, answers) => CampaignEvent::golden(*w, answers.clone()),
                Op::Answer(answer) => CampaignEvent::answer(*answer),
            };
            log.append_event(campaign, &serde_json::to_vec(&event).unwrap())
                .expect("json event");
        }
        log.flush().expect("seed flush");
    }

    // Phase 2: recover the JSON-era directory, re-drive the stream (the
    // service appends *binary* records after the JSON prefix), then die
    // without flushing.
    let (service, handle) =
        DocsService::recover(service_config(1, &dir, policy)).expect("recover JSON-era directory");
    let campaign = handle.default_campaign();
    assert_eq!(campaign, CampaignId(0), "seeded campaign came back");
    assert!(handle.metrics().durability().snapshots_loaded >= 1);
    for op in &ops {
        submit(&handle, campaign, op);
    }
    handle.simulate_crash();
    drop(handle);
    let _ = service.join_all();

    // Phase 3: recover the now mixed-format log (JSON prefix + binary
    // suffix, possibly within one segment), re-drive, finish — the report
    // must be byte-identical to the uninterrupted in-memory run.
    let (service, handle) =
        DocsService::recover(service_config(1, &dir, policy)).expect("recover mixed-format log");
    for op in &ops {
        submit(&handle, campaign, op);
    }
    let report = handle
        .finish_in(campaign)
        .expect("finish after mixed replay");
    assert_byte_identical(&report, &reference, "mixed-format log");
    drop(handle);
    let _ = service.join_all();
    let _ = std::fs::remove_dir_all(&dir);
}
