//! WAL-shipping replication: the headline invariants of the replicated
//! runtime.
//!
//! 1. **Byte-identity at every acked watermark** — across the
//!    `shards × task_shards` matrix (with the follower pool re-homing
//!    campaigns onto a *different* shard count), after every acknowledged
//!    operation the follower's serialized campaign state equals the
//!    primary's byte for byte once its watermark catches up. Followers
//!    bootstrap **mid-campaign** from a cadence snapshot (seq > 0), not
//!    from the campaign's birth.
//! 2. **Crash → promotion loses nothing** — under `FlushPolicy::EveryEvent`
//!    every acknowledged event is durable, therefore shipped before its
//!    ack; killing the primary (`simulate_crash`, buffers abandoned) and
//!    promoting the follower yields a primary whose watermark covers every
//!    acknowledged event, whose replica-served reads matched the primary's
//!    answers before the failover, and whose resumed traffic converges to
//!    the byte-identical oracle report.

use docs_replication::{bootstrap_frames, replication_channel, Replica, ReplicationHub};
use docs_service::{
    AdaptiveCommit, DocsService, DurabilityConfig, ReadRouter, RejectReason, ReplicaRole,
    ServiceConfig, ServiceError, ServiceHandle,
};
use docs_storage::FlushPolicy;
use docs_system::{Docs, DocsConfig, RequesterReport, WorkRequest};
use docs_types::{
    Answer, CampaignEvent, CampaignId, ChoiceIndex, ReplicationFrame, Task, TaskBuilder, TaskId,
    WorkerId,
};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

const NUM_TASKS: usize = 12;
const NUM_WORKERS: u32 = 5;

/// One recorded platform operation, replayable against any service.
#[derive(Debug, Clone)]
enum Op {
    Golden(WorkerId, Vec<(TaskId, ChoiceIndex)>),
    Answer(Answer),
}

fn tasks() -> Vec<Task> {
    let subjects = ["Michael Jordan", "Kobe Bryant", "NBA"];
    (0..NUM_TASKS)
        .map(|i| {
            TaskBuilder::new(i, format!("Is {} great? ({i})", subjects[i % 3]))
                .yes_no()
                .with_ground_truth(i % 2)
                .with_true_domain(1)
                .build()
                .unwrap()
        })
        .collect()
}

fn publish(task_shards: usize, durable_flush: Option<FlushPolicy>) -> Docs {
    Docs::publish(
        &docs_kb::table2_example_kb(),
        tasks(),
        DocsConfig {
            num_golden: 3,
            k_per_hit: 3,
            answers_per_task: 3,
            z: 5, // small period: replication crosses several full-inference runs
            task_shards,
            durable_flush,
            ..Default::default()
        },
    )
    .unwrap()
}

/// Deterministic worker choice — varies by task and worker so TI has
/// disagreement to resolve.
fn choice_of(worker: WorkerId, task: TaskId) -> ChoiceIndex {
    if worker.0.is_multiple_of(2) {
        task.index() % 2
    } else {
        (task.index() + worker.0 as usize) % 2
    }
}

/// Drives an uninterrupted in-memory campaign, recording every submission;
/// returns the operation stream and the reference report.
fn oracle(task_shards: usize) -> (Vec<Op>, RequesterReport) {
    let mut docs = publish(task_shards, None);
    let mut ops = Vec::new();
    let mut idle_rounds = 0;
    while !docs.budget_exhausted() && idle_rounds < 2 {
        let mut progressed = false;
        for w in 0..NUM_WORKERS {
            let w = WorkerId(w);
            match docs.request_tasks(w) {
                WorkRequest::Golden(golden) => {
                    let answers: Vec<_> = golden.iter().map(|&g| (g, choice_of(w, g))).collect();
                    docs.submit_golden(w, &answers).unwrap();
                    ops.push(Op::Golden(w, answers));
                    progressed = true;
                }
                WorkRequest::Tasks(hit) => {
                    for t in hit {
                        let answer = Answer::new(w, t, choice_of(w, t));
                        docs.submit_answer(answer).unwrap();
                        ops.push(Op::Answer(answer));
                        progressed = true;
                    }
                }
                WorkRequest::Done => {}
            }
        }
        idle_rounds = if progressed { 0 } else { idle_rounds + 1 };
    }
    let report = docs.finish().unwrap();
    (ops, report)
}

/// Submits one op, tolerating deterministic rejections (duplicates of an
/// already-applied prefix when a stream is re-driven).
fn submit(handle: &ServiceHandle, campaign: CampaignId, op: &Op) {
    let result = match op {
        Op::Golden(w, answers) => handle.submit_golden_in(campaign, *w, answers.clone()),
        Op::Answer(answer) => handle.submit_answer_in(campaign, *answer),
    };
    match result {
        Ok(()) | Err(ServiceError::Rejected(_)) => {}
        Err(e) => panic!("service failed: {e}"),
    }
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("docs-replication-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn primary_config(
    shards: usize,
    dir: &Path,
    policy: FlushPolicy,
    snapshot_every: u64,
) -> ServiceConfig {
    ServiceConfig {
        shards,
        durability: Some(DurabilityConfig {
            dir: dir.to_path_buf(),
            default_flush: policy,
            snapshot_every,
            adaptive: Some(AdaptiveCommit::default()),
        }),
        ..Default::default()
    }
}

/// Polls until the replica's watermark for `campaign` reaches `seq`.
fn await_watermark(replica: &Replica, campaign: CampaignId, seq: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while replica.watermark(campaign) < seq {
        if let Some(e) = replica.error() {
            panic!("replica applier failed: {e}");
        }
        assert!(
            Instant::now() < deadline,
            "replica stuck at watermark {} (want {seq})",
            replica.watermark(campaign)
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

fn assert_byte_identical(report: &RequesterReport, reference: &RequesterReport, label: &str) {
    assert_eq!(report.truths, reference.truths, "truths diverged: {label}");
    assert_eq!(
        report.truth_distributions, reference.truth_distributions,
        "probabilistic truths diverged: {label}"
    );
    assert_eq!(
        report.answers_collected, reference.answers_collected,
        "{label}"
    );
    assert_eq!(report.accuracy, reference.accuracy, "{label}");
}

/// One matrix cell: primary with `shards`, follower re-homed onto
/// `follower_shards`, byte-identity checked at *every* acked watermark,
/// follower bootstrapped mid-campaign from a cadence snapshot.
fn byte_identity_case(shards: usize, follower_shards: usize, task_shards: usize) {
    let label = format!("shards {shards}→{follower_shards}, task_shards {task_shards}");
    let (ops, _) = oracle(task_shards);
    let dir = tmp_dir(&format!("ident-{shards}-{follower_shards}-{task_shards}"));
    let policy = FlushPolicy::EveryEvent;

    let (sink, feed) = replication_channel();
    // Snapshot cadence of 6: by the time the follower attaches (after 10
    // ops) at least one snapshot cycle has re-baselined the campaign, so
    // the bootstrap genuinely starts mid-campaign.
    let config = primary_config(shards, &dir, policy, 6).with_replication(sink);
    let (service, handle) = DocsService::spawn_sharded(publish(task_shards, Some(policy)), config);
    let campaign = handle.default_campaign();
    let hub = ReplicationHub::spawn(feed);

    // Prefix before any follower exists.
    let prefix = 10.min(ops.len());
    for op in &ops[..prefix] {
        submit(&handle, campaign, op);
    }

    // Subscribe FIRST, scan SECOND: the overlap is deduplicated by the
    // watermark table, a gap is impossible.
    let link = hub.subscribe("replica-0");
    let bootstrap = bootstrap_frames(&dir).expect("bootstrap scan");
    let snapshot_seq = bootstrap
        .iter()
        .filter_map(|f| match f {
            ReplicationFrame::Snapshot(s) if s.campaign == campaign => Some(s.seq),
            _ => None,
        })
        .max()
        .expect("bootstrap carries the campaign snapshot");
    assert!(
        snapshot_seq > 0,
        "{label}: follower must bootstrap from a mid-campaign snapshot, got seq 0"
    );
    let replica = Replica::spawn(ServiceConfig::follower(follower_shards), link, bootstrap)
        .expect("spawn replica");

    // The already-acknowledged prefix: Published (seq 1) + one event per op.
    let mut seq = 1 + prefix as u64;
    await_watermark(&replica, campaign, seq);
    assert_eq!(
        replica.handle().snapshot_state_in(campaign).unwrap(),
        handle.snapshot_state_in(campaign).unwrap(),
        "{label}: bootstrap state diverged at watermark {seq}"
    );

    // Every further acked watermark: submit one op, catch up, compare the
    // serialized states byte for byte.
    for op in &ops[prefix..] {
        submit(&handle, campaign, op);
        seq += 1;
        await_watermark(&replica, campaign, seq);
        assert_eq!(
            replica.handle().snapshot_state_in(campaign).unwrap(),
            handle.snapshot_state_in(campaign).unwrap(),
            "{label}: state diverged at watermark {seq}"
        );
    }

    // Replica-served reads match the primary's answers.
    let primary_report = handle.peek_report_in(campaign).unwrap();
    let replica_report = replica.handle().peek_report_in(campaign).unwrap();
    assert_eq!(replica_report.truths, primary_report.truths, "{label}");
    assert_eq!(
        replica_report.truth_distributions, primary_report.truth_distributions,
        "{label}"
    );
    assert_eq!(
        replica.handle().status_in(campaign).unwrap(),
        handle.status_in(campaign).unwrap(),
        "{label}"
    );

    let (replica_service, replica_handle) = replica.detach();
    drop(replica_handle);
    replica_service.join_all();
    drop(handle);
    service.join_all();
    hub.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn follower_is_byte_identical_at_every_acked_watermark_across_the_matrix() {
    for shards in [1usize, 4] {
        for task_shards in [1usize, 4] {
            // The follower re-homes campaigns onto a different shard count
            // than the primary's — routing is per pool, state is per
            // campaign.
            let follower_shards = if shards == 1 { 4 } else { 1 };
            byte_identity_case(shards, follower_shards, task_shards);
        }
    }
}

#[test]
fn crash_then_promotion_loses_no_acknowledged_event_and_resumes_traffic() {
    let task_shards = 4;
    let (ops, reference) = oracle(task_shards);
    let dir = tmp_dir("promotion");
    let follower_dir = tmp_dir("promotion-follower");
    // EveryEvent: every acknowledged event is durable, therefore shipped
    // before its ack — the promotion may not lose a single one.
    let policy = FlushPolicy::EveryEvent;

    let (sink, feed) = replication_channel();
    let config = primary_config(2, &dir, policy, 1024).with_replication(sink);
    let (service, handle) = DocsService::spawn_sharded(publish(task_shards, Some(policy)), config);
    let campaign = handle.default_campaign();
    let hub = ReplicationHub::spawn(feed);
    let link = hub.subscribe("standby");
    let bootstrap = bootstrap_frames(&dir).expect("bootstrap scan");
    // A *durable* follower: it writes its own log, so the promoted primary
    // is itself recoverable.
    let replica = Replica::spawn(ServiceConfig::durable(2, &follower_dir), link, bootstrap)
        .expect("spawn replica");

    // Serve a prefix; every op below is individually acknowledged.
    let prefix = 23.min(ops.len());
    for op in &ops[..prefix] {
        submit(&handle, campaign, op);
    }
    let acked_seq = 1 + prefix as u64; // Published + one event per op

    // Reads fan out to the replica through the router; writes pin to the
    // primary.
    await_watermark(&replica, campaign, acked_seq);
    let router = ReadRouter::new(handle.clone(), vec![replica.handle().clone()]);
    let routed_status = router.status_in(campaign).unwrap();
    assert_eq!(routed_status, handle.status_in(campaign).unwrap());
    assert_eq!(routed_status.answers_collected, prefix - 5); // 5 golden HITs
    let routed_report = router.peek_report_in(campaign).unwrap();
    let primary_report = handle.peek_report_in(campaign).unwrap();
    assert_eq!(routed_report.truths, primary_report.truths);
    assert_eq!(
        routed_report.truth_distributions,
        primary_report.truth_distributions
    );
    let routing = router.stats();
    assert_eq!(routing.replica_reads, 2, "reads served by the follower");
    assert_eq!(routing.primary_reads, 0);
    // A read for a campaign the replica never bootstrapped falls back.
    let err = router.status_in(CampaignId(99)).unwrap_err();
    assert!(matches!(
        err,
        ServiceError::Rejected(RejectReason::UnknownCampaign(_))
    ));
    assert_eq!(router.stats().fallbacks, 1);

    // Role enforcement end to end.
    assert_eq!(replica.handle().role(), ReplicaRole::Follower);
    let err = replica
        .handle()
        .submit_answer_in(campaign, Answer::new(WorkerId(0), TaskId(0), 0))
        .unwrap_err();
    assert_eq!(
        err,
        ServiceError::Rejected(RejectReason::ReadOnlyReplica { campaign })
    );
    assert!(err.to_string().contains("read-only follower"));
    assert!(
        replica
            .handle()
            .metrics()
            .replication()
            .read_only_rejections
            >= 1
    );
    let err = handle
        .replicate_apply(campaign, acked_seq + 1, CampaignEvent::finished())
        .unwrap_err();
    assert_eq!(
        err,
        ServiceError::Rejected(RejectReason::NotAFollower { campaign })
    );

    // ---- The fault injection: kill the primary. ----
    let pre_crash_truths = replica.handle().peek_report_in(campaign).unwrap();
    handle.simulate_crash();
    drop(router);
    drop(handle);
    service.join_all();
    hub.join();

    // ---- Promote the follower at its watermark. ----
    let promotion = replica.promote().expect("clean promotion");
    let promoted = promotion.handle;
    assert_eq!(promoted.role(), ReplicaRole::Primary);
    let watermark = promotion
        .watermarks
        .iter()
        .find(|(c, _)| *c == campaign)
        .map(|(_, seq)| *seq)
        .expect("promoted campaign has a watermark");
    assert_eq!(
        watermark, acked_seq,
        "promotion watermark must cover every acknowledged event"
    );
    // Truths served before the crash are exactly the promoted state's.
    let post_promotion = promoted.peek_report_in(campaign).unwrap();
    assert_eq!(post_promotion.truths, pre_crash_truths.truths);
    assert_eq!(
        post_promotion.truth_distributions,
        pre_crash_truths.truth_distributions
    );

    // Regression: the promoted pool's campaign-id allocator must sit past
    // every replicated id (snapshot installs advance it), so new
    // campaigns don't collide with the ones it replicated.
    let fresh = promoted
        .create_campaign(publish(task_shards, None))
        .expect("create campaign on the promoted primary");
    assert!(
        fresh > campaign,
        "allocator collided with a replicated campaign id"
    );

    // ---- Resume traffic on the new primary. ----
    // Re-drive the whole stream: the already-replicated prefix rejects
    // deterministically (duplicate answers), the suffix applies fresh.
    for op in &ops {
        submit(&promoted, campaign, op);
    }
    let report = promoted.finish_in(campaign).expect("finish after failover");
    assert_byte_identical(&report, &reference, "crash → promotion → resume");

    // The promoted primary wrote its own durable log: a later recovery
    // from the *follower's* directory reproduces the same report.
    drop(promoted);
    promotion.service.join_all();
    let (recovered_service, recovered_handle) =
        DocsService::recover(ServiceConfig::durable(2, &follower_dir)).expect("recover follower");
    let recovered = recovered_handle
        .finish_in(campaign)
        .expect("finish after recovery");
    assert_byte_identical(&recovered, &reference, "recovery of the promoted follower");
    drop(recovered_handle);
    recovered_service.join_all();
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&follower_dir);
}
