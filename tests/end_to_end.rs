//! Cross-crate integration tests: the full Figure 1 pipeline, the parallel
//! assignment protocol, and persistence across deployments.

use docs_baselines::ota::{DocsAssign, RandomBaseline};
use docs_crowd::{AssignmentStrategy, Platform, PlatformConfig, WorkerPopulation};
use docs_datasets::pools::domains::SPORTS;
use docs_system::{run_campaign, Docs, DocsConfig, WorkRequest};
use docs_types::{Answer, TaskBuilder, TaskId, WorkerId};

fn sports_population(size: usize) -> WorkerPopulation {
    WorkerPopulation::from_qualities(
        (0..size)
            .map(|i| {
                let mut q = vec![0.6; 26];
                q[SPORTS] = [0.95, 0.9, 0.85, 0.65, 0.6, 0.55][i % 6];
                q
            })
            .collect(),
    )
}

fn sports_tasks(n: usize) -> Vec<docs_types::Task> {
    let players = [
        "Michael Jordan",
        "Kobe Bryant",
        "Stephen Curry",
        "LeBron James",
        "Tim Duncan",
        "Kevin Garnett",
        "Chris Paul",
        "Paul Pierce",
    ];
    (0..n)
        .map(|i| {
            TaskBuilder::new(
                i,
                format!("Has {} won an NBA title?", players[i % players.len()]),
            )
            .yes_no()
            .with_ground_truth(i % 2)
            .with_true_domain(SPORTS)
            .build()
            .unwrap()
        })
        .collect()
}

#[test]
fn full_pipeline_from_text_to_truths() {
    let kb = docs_datasets::curated_kb();
    let population = sports_population(20);
    let report = run_campaign(
        &kb,
        sports_tasks(40),
        &population,
        DocsConfig {
            num_golden: 8,
            k_per_hit: 4,
            answers_per_task: 7,
            ..Default::default()
        },
        7,
    )
    .unwrap();
    assert_eq!(report.truths.len(), 40);
    assert_eq!(report.answers_collected, 280);
    assert!(report.accuracy > 0.8, "accuracy {}", report.accuracy);
}

#[test]
fn docs_beats_random_in_parallel_protocol() {
    // The Section 6.1 parallel comparison on a synthetic workload: DOCS's
    // benefit-driven assignment must not lose to random assignment given
    // the same budget (averaged over seeds to keep the test stable).
    let mut docs_wins = 0.0;
    let mut baseline_wins = 0.0;
    for seed in 0..3u64 {
        let tasks = docs_datasets::scalability_tasks(60, 4, seed);
        let population = WorkerPopulation::generate(&docs_crowd::PopulationConfig {
            m: 4,
            size: 30,
            seed,
            ..Default::default()
        });
        let mut baseline = RandomBaseline::new(tasks.clone(), seed);
        let mut docs = DocsAssign::new(tasks.clone(), 4);
        let golden: Vec<TaskId> = docs_core::golden::select_golden_tasks(&tasks, 8);
        let platform = Platform::new(
            &tasks,
            golden,
            &population,
            PlatformConfig {
                k_per_hit: 3,
                answer_budget: 6 * 60,
                seed,
                ..Default::default()
            },
        );
        let mut strategies: [&mut dyn AssignmentStrategy; 2] = [&mut baseline, &mut docs];
        let outcomes = platform.run_parallel(&mut strategies);
        baseline_wins += outcomes[0].accuracy;
        docs_wins += outcomes[1].accuracy;
    }
    assert!(
        docs_wins + 0.02 >= baseline_wins,
        "DOCS mean {} vs Baseline mean {}",
        docs_wins / 3.0,
        baseline_wins / 3.0
    );
}

#[test]
fn requester_flow_with_manual_platform_interaction() {
    // Drive the Docs object by hand, playing the AMT role ourselves.
    let kb = docs_datasets::curated_kb();
    let mut docs = Docs::publish(
        &kb,
        sports_tasks(10),
        DocsConfig {
            num_golden: 2,
            k_per_hit: 5,
            answers_per_task: 2,
            ..Default::default()
        },
    )
    .unwrap();

    let w = WorkerId(3);
    // First contact → golden HIT.
    let golden = match docs.request_tasks(w) {
        WorkRequest::Golden(g) => g,
        other => panic!("expected golden, got {other:?}"),
    };
    let answers: Vec<_> = golden
        .iter()
        .map(|&g| (g, docs.tasks()[g.index()].ground_truth.unwrap()))
        .collect();
    docs.submit_golden(w, &answers).unwrap();

    // Second contact → real tasks; submit perfect answers.
    let assigned = match docs.request_tasks(w) {
        WorkRequest::Tasks(t) => t,
        other => panic!("expected tasks, got {other:?}"),
    };
    assert_eq!(assigned.len(), 5);
    for t in assigned {
        docs.submit_answer(Answer {
            task: t,
            worker: w,
            choice: docs.tasks()[t.index()].ground_truth.unwrap(),
        })
        .unwrap();
    }
    // The worker cannot receive a task twice.
    if let WorkRequest::Tasks(more) = docs.request_tasks(w) {
        for t in &more {
            assert!(!docs.engine().log().has_answered(w, *t));
        }
    }
    let report = docs.finish().unwrap();
    assert_eq!(report.truths.len(), 10);
}

#[test]
fn persistence_survives_redeployment() {
    let dir = std::env::temp_dir().join(format!("docs-e2e-persist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let kb = docs_datasets::curated_kb();
    let population = sports_population(12);
    let config = DocsConfig {
        num_golden: 4,
        k_per_hit: 4,
        answers_per_task: 4,
        storage_dir: Some(dir.clone()),
        ..Default::default()
    };
    let r1 = run_campaign(&kb, sports_tasks(20), &population, config.clone(), 11).unwrap();
    assert!(r1.accuracy > 0.6);

    // Redeploy: the parameter store now profiles the returning workers.
    let store = docs_storage::ParamStore::open(&dir).unwrap();
    assert!(!store.worker_ids().is_empty());
    let mut docs = Docs::publish(&kb, sports_tasks(20), config).unwrap();
    let known = store.worker_ids()[0];
    match docs.request_tasks(known) {
        WorkRequest::Tasks(_) => {}
        other => panic!("returning worker should skip golden, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dataset_dve_feeds_inference_without_true_domains() {
    // The inference path must work purely from DVE vectors (no true_domain
    // reads): run TI on Item with domain vectors from the real pipeline.
    let prepared = docs_bench::protocol::prepare(docs_datasets::item(), 6, 10, 30, 99);
    let result = docs_core::ti::TruthInference::default().run(
        &prepared.dataset.tasks,
        &prepared.log,
        &prepared.docs_registry(),
    );
    assert!(result.accuracy(&prepared.dataset.tasks) > 0.7);
}
