//! Property-based tests (proptest) on the core invariants, spanning crates.

use docs_core::dve::{
    domain_vector, domain_vector_correlated_exact, domain_vector_enumeration,
    domain_vector_reranked, domain_vector_tuple_key, jensen_shannon, rerank_by_coherence,
    top_j_recall,
};
use docs_core::golden::{allocation_objective, golden_counts};
use docs_core::ota::{answer_probabilities, benefit, BudgetPlanner};
use docs_core::ti::{StoppingPolicy, StoppingRule, TaskState, WorkerStats};
use docs_kb::{IndicatorVector, LinkedEntity};
use docs_types::{prob, DomainVector, WorkerId};
use proptest::prelude::*;

/// Strategy: a random entity with 1..=4 candidates over `m` domains.
fn arb_entity(m: usize) -> impl Strategy<Value = LinkedEntity> {
    prop::collection::vec((0.01f64..1.0, prop::collection::vec(0u8..2, m)), 1..=4).prop_map(
        move |parts| {
            let parts: Vec<(f64, IndicatorVector)> = parts
                .into_iter()
                .map(|(p, bits)| (p, IndicatorVector::from_bits(&bits)))
                .collect();
            LinkedEntity::from_parts("e", &parts)
        },
    )
}

fn arb_distribution(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.01f64..1.0, len).prop_map(|w| prob::normalized(&w))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Algorithm 1 is exact: it agrees with brute-force enumeration of
    /// Eq. 1 on every feasible instance, and with the tuple-keyed variant.
    #[test]
    fn dve_algorithm1_equals_enumeration(
        entities in prop::collection::vec(arb_entity(5), 1..=4)
    ) {
        let fast = domain_vector(&entities, 5);
        let slow = domain_vector_enumeration(&entities, 5, 1 << 20)
            .expect("small instance is enumerable");
        let tuple = domain_vector_tuple_key(&entities, 5);
        for k in 0..5 {
            prop_assert!((fast[k] - slow[k]).abs() < 1e-9);
            prop_assert!((fast[k] - tuple[k]).abs() < 1e-12);
        }
        prop_assert!(prob::is_distribution(fast.as_slice()));
    }

    /// Task states remain valid distributions under any answer stream, and
    /// the incremental single-answer update commutes with batch recompute.
    #[test]
    fn task_state_stays_normalized(
        r in arb_distribution(3),
        answers in prop::collection::vec((0usize..2, 0.05f64..0.95), 1..12)
    ) {
        let r = DomainVector::new(r).unwrap();
        let mut incremental = TaskState::new(3, 2);
        for &(choice, q) in &answers {
            incremental.apply_answer(&r, &[q, q * 0.9, (q * 1.1).min(1.0)], choice);
            prop_assert!(prob::is_distribution(incremental.s()));
            for k in 0..3 {
                prop_assert!(prob::is_distribution(incremental.m_row(k)));
            }
        }
    }

    /// Theorem 2's answer prediction is always a probability distribution.
    #[test]
    fn answer_probabilities_are_distributions(
        r in arb_distribution(4),
        quality in prop::collection::vec(0.01f64..0.99, 4),
        prior_answers in prop::collection::vec(0usize..3, 0..6)
    ) {
        let r = DomainVector::new(r).unwrap();
        let mut st = TaskState::new(4, 3);
        for &a in &prior_answers {
            st.apply_answer(&r, &quality, a);
        }
        let p = answer_probabilities(&st, &r, &quality);
        prop_assert!(prob::is_distribution(&p));
        // Definition 5's benefit is bounded by the current entropy.
        let b = benefit(&st, &r, &quality);
        prop_assert!(b <= prob::entropy(st.s()) + 1e-9);
    }

    /// The incremental benefit index is *exactly* the flat scan: for any
    /// answer stream (driven through the engine so the index is maintained
    /// incrementally, periodic full inference included), any worker quality
    /// and any k / shard count, the indexed pop-and-revalidate returns the
    /// flat scan's picks bit-for-bit — same benefits, same tie-breaks.
    #[test]
    fn benefit_index_selection_equals_flat_scan(
        answers in prop::collection::vec(
            (0usize..24, 0usize..6, 0usize..2), 0..60
        ),
        quality in prop::collection::vec(0.05f64..0.95, 3),
        k in 1usize..12,
        task_shards in 1usize..5,
        z in 0usize..8
    ) {
        use docs_core::ota::{Assigner, AssignerConfig};
        use docs_core::ti::{IncrementalTi, WorkerRegistry};
        use docs_types::{Answer, TaskBuilder, TaskId};
        let n = 24;
        let m = 3;
        let tasks: Vec<docs_types::Task> = (0..n)
            .map(|i| {
                TaskBuilder::new(i, format!("t{i}"))
                    .yes_no()
                    .with_domain_vector(DomainVector::one_hot(m, i % m))
                    .build()
                    .unwrap()
            })
            .collect();
        let mut engine = IncrementalTi::new(tasks, WorkerRegistry::new(m, 0.7), z)
            .with_shards(task_shards)
            .with_benefit_index(true);
        for &(task, worker, choice) in &answers {
            // Duplicates reject deterministically; both paths see the
            // same accepted stream.
            let _ = engine.submit(Answer {
                task: TaskId::from(task),
                worker: WorkerId::from(worker),
                choice,
            });
        }
        let assigner = Assigner::new(AssignerConfig { k, ..Default::default() });
        let answered = |t: TaskId| t.index().is_multiple_of(13);
        let count = |t: TaskId| t.index() % 3;
        let (tasks, states, _, sharding, index) = engine.assign_view();
        let flat = assigner.assign(&quality, tasks, states, answered, count);
        let indexed = assigner.assign_indexed(
            &quality,
            tasks,
            states,
            sharding,
            index.expect("index enabled"),
            answered,
            count,
        );
        prop_assert_eq!(indexed, flat);
    }

    /// Theorem 1: merging per-batch statistics equals computing statistics
    /// over the concatenated batches.
    #[test]
    fn theorem1_merge_is_exact(
        batch1 in prop::collection::vec((0.01f64..1.0, 0.0f64..1.0), 1..8),
        batch2 in prop::collection::vec((0.01f64..1.0, 0.0f64..1.0), 1..8)
    ) {
        let stats_of = |obs: &[(f64, f64)]| {
            let num: f64 = obs.iter().map(|(r, s)| r * s).sum();
            let den: f64 = obs.iter().map(|(r, _)| r).sum();
            WorkerStats { quality: vec![num / den], weight: vec![den] }
        };
        let mut merged = stats_of(&batch1);
        merged.merge(&stats_of(&batch2));
        let all: Vec<(f64, f64)> = batch1.iter().chain(&batch2).copied().collect();
        let direct = stats_of(&all);
        prop_assert!((merged.quality[0] - direct.quality[0]).abs() < 1e-9);
        prop_assert!((merged.weight[0] - direct.weight[0]).abs() < 1e-9);
    }

    /// Golden-count allocation always sums to n′, puts nothing on zero-mass
    /// domains, and never scores worse than the pure floor allocation.
    #[test]
    fn golden_counts_invariants(
        tau in arb_distribution(6),
        n_prime in 0usize..40
    ) {
        let counts = golden_counts(&tau, n_prime);
        prop_assert_eq!(counts.iter().sum::<usize>(), n_prime);
        for (k, &c) in counts.iter().enumerate() {
            if tau[k] == 0.0 {
                prop_assert_eq!(c, 0);
            }
        }
        let obj = allocation_objective(&counts, &tau);
        prop_assert!(obj.is_finite());
        prop_assert!(obj >= -1e-12, "KL divergence is non-negative: {obj}");
    }

    /// The correlated linking model at λ = 0 *is* the paper's independent
    /// model, its output is always a distribution for any λ, and the
    /// polynomial reranking pipeline preserves per-entity distributions.
    #[test]
    fn correlated_dve_invariants(
        entities in prop::collection::vec(arb_entity(5), 1..=4),
        lambda in 0.0f64..3.0
    ) {
        let independent = domain_vector(&entities, 5);
        let at_zero = domain_vector_correlated_exact(&entities, 5, 0.0, 1 << 20)
            .expect("small instance");
        for k in 0..5 {
            prop_assert!((independent[k] - at_zero[k]).abs() < 1e-9);
        }
        let correlated = domain_vector_correlated_exact(&entities, 5, lambda, 1 << 20)
            .expect("small instance");
        prop_assert!(prob::is_distribution(correlated.as_slice()));
        let reranked_entities = rerank_by_coherence(&entities, lambda);
        for e in &reranked_entities {
            prop_assert!(prob::is_distribution(&e.probs));
        }
        let reranked = domain_vector_reranked(&entities, 5, lambda);
        prop_assert!(prob::is_distribution(reranked.as_slice()));
    }

    /// Jensen–Shannon divergence is symmetric, bounded by ln 2, zero on
    /// identical inputs; top-j recall is monotone in j.
    #[test]
    fn multi_domain_metrics_invariants(
        p in arb_distribution(6),
        q in arb_distribution(6),
        truth in prop::collection::vec(0usize..6, 1..4)
    ) {
        let js = jensen_shannon(&p, &q);
        prop_assert!((-1e-12..=std::f64::consts::LN_2 + 1e-12).contains(&js));
        prop_assert!((js - jensen_shannon(&q, &p)).abs() < 1e-12);
        prop_assert!(jensen_shannon(&p, &p).abs() < 1e-12);
        let r = DomainVector::new(p).unwrap();
        let mut truth = truth;
        truth.sort_unstable();
        truth.dedup();
        let mut prev = 0.0;
        for j in 1..=6 {
            let rec = top_j_recall(&r, &truth, j);
            prop_assert!(rec >= prev - 1e-12, "recall must grow with j");
            prev = rec;
        }
        prop_assert!((top_j_recall(&r, &truth, 6) - 1.0).abs() < 1e-12);
    }

    /// Stopping policies respect their answer-count guards for any rule
    /// parameters and any task state.
    #[test]
    fn stopping_policy_guards_hold(
        eps in 0.0f64..1.0,
        min_answers in 0usize..6,
        extra in 0usize..6,
        answers in prop::collection::vec((0usize..2, 0.05f64..0.95), 0..8)
    ) {
        let max_answers = min_answers + extra;
        let policy = StoppingPolicy {
            rule: StoppingRule::EntropyBelow(eps),
            min_answers,
            max_answers,
        };
        let r = DomainVector::new(vec![0.5, 0.5]).unwrap();
        let mut st = TaskState::new(2, 2);
        for &(choice, q) in &answers {
            st.apply_answer(&r, &[q, q], choice);
        }
        // Below min: never stop (unless max == min forces it).
        if min_answers > 0 && max_answers > min_answers - 1 {
            prop_assert!(!policy.should_stop(&st, min_answers - 1) || min_answers > max_answers);
        }
        // At max: always stop.
        prop_assert!(policy.should_stop(&st, max_answers));
    }

    /// The budget planner never overspends, never exceeds per-task caps,
    /// and its per-task caps are consistent with the collected counts.
    #[test]
    fn budget_planner_invariants(
        n in 1usize..12,
        budget in 0usize..40,
        cap in 0usize..8,
        quality in 0.55f64..0.95
    ) {
        let m = 3;
        let states: Vec<TaskState> = (0..n).map(|_| TaskState::new(m, 2)).collect();
        let rs: Vec<DomainVector> = (0..n).map(|i| DomainVector::one_hot(m, i % m)).collect();
        let collected: Vec<usize> = (0..n).map(|i| i % 4).collect();
        let plan = BudgetPlanner::new(budget, cap).plan(&states, &rs, &collected, &[quality; 3]);
        prop_assert!(plan.spent() <= budget);
        for (i, &e) in plan.extra_answers.iter().enumerate() {
            prop_assert!(e <= cap);
            prop_assert_eq!(
                plan.cap_for(docs_types::TaskId::from(i)),
                collected[i] + e
            );
        }
        prop_assert_eq!(plan.total(), plan.spent() + collected.iter().sum::<usize>());
    }

    /// Worker registry quality values stay in [0, 1] under arbitrary
    /// absorb/revise streams (the incremental Step 2 of Section 4.2).
    #[test]
    fn worker_stats_stay_bounded(
        updates in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0), 1..30)
    ) {
        let mut stats = WorkerStats::with_prior(2, 0.7);
        let r = DomainVector::new(vec![0.6, 0.4]).unwrap();
        for &(s_new, s_old, s_rev) in &updates {
            stats.absorb_answer(&r, s_new);
            stats.revise_answer(&r, s_old.min(s_rev), s_old.max(s_rev));
            for k in 0..2 {
                prop_assert!((0.0..=1.0).contains(&stats.quality[k]),
                    "quality out of range: {:?}", stats.quality);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// WAL + KV store: any sequence of puts/deletes survives a reopen.
    #[test]
    fn kv_store_replay_reproduces_state(
        ops in prop::collection::vec((0u8..2, 0u8..8, prop::collection::vec(0u8..255, 0..12)), 1..40)
    ) {
        let dir = std::env::temp_dir().join(format!(
            "docs-prop-kv-{}-{}", std::process::id(),
            std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
        ));
        let mut expected: std::collections::HashMap<String, Vec<u8>> = Default::default();
        {
            let store = docs_storage::KvStore::open(&dir).unwrap();
            for (op, key, value) in &ops {
                let key = format!("k{key}");
                if *op == 0 {
                    store.put(&key, value).unwrap();
                    expected.insert(key, value.clone());
                } else {
                    store.delete(&key).unwrap();
                    expected.remove(&key);
                }
            }
        }
        let store = docs_storage::KvStore::open(&dir).unwrap();
        prop_assert_eq!(store.len(), expected.len());
        for (k, v) in &expected {
            let got = store.get(k);
            prop_assert_eq!(got.as_ref(), Some(v));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// End-to-end mini inference: with sane expert populations, DOCS TI
    /// never produces invalid outputs and tracks ground truth better than
    /// chance.
    #[test]
    fn ti_outputs_always_valid(seed in 0u64..50) {
        let (tasks, _pop, log) =
            docs_datasets::scalability_workload(30, 4, 12, 7, seed);
        let registry = docs_core::ti::WorkerRegistry::new(4, 0.7);
        let result = docs_core::ti::TruthInference::default().run(&tasks, &log, &registry);
        for st in &result.states {
            prop_assert!(prob::is_distribution(st.s()));
        }
        for q in result.qualities.values() {
            for &qk in q {
                prop_assert!((0.0..=1.0).contains(&qk));
            }
        }
        // Small unprofiled populations (12 workers, no golden init) have a
        // statistical tail where EM locks onto a wrong consensus for half
        // the tasks; the guarantee is "never *worse* than chance".
        prop_assert!(result.accuracy(&tasks) >= 0.5);
        let _ = result.quality_deviation(|_w: WorkerId| vec![0.7; 4]);
    }
}
