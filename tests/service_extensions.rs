//! Integration tests spanning the extension crates: the concurrent service
//! front-end, the budget-aware planner, and adaptive stopping — wired
//! through the same datasets and crowd simulator as the paper experiments.

use docs_core::ota::BudgetPlanner;
use docs_core::ti::{IncrementalTi, StoppingPolicy, StoppingRule, WorkerRegistry};
use docs_crowd::{accuracy_of, AnswerModel, PopulationConfig, WorkerPopulation};
use docs_service::{drive_workers, DocsService, OpKind};
use docs_system::{Docs, DocsConfig};
use docs_types::{Answer, TaskId, WorkerId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn population(m: usize, size: usize, seed: u64) -> WorkerPopulation {
    WorkerPopulation::generate(&PopulationConfig {
        m,
        size,
        seed,
        ..Default::default()
    })
}

#[test]
fn concurrent_campaign_through_the_service_matches_protocol() {
    let mut dataset = docs_datasets::item();
    let m = dataset.domain_set.len();
    let n = dataset.len();
    let config = DocsConfig {
        num_golden: 10,
        k_per_hit: 10,
        answers_per_task: 3,
        z: 200,
        ..Default::default()
    };
    let docs = Docs::publish(&dataset.kb, std::mem::take(&mut dataset.tasks), config).unwrap();
    let published = Arc::new(docs.tasks().to_vec());
    let (service, handle) = DocsService::spawn(docs);

    let pop = population(m, 30, 0x11);
    let report = drive_workers(
        &handle,
        Arc::clone(&published),
        &pop,
        AnswerModel::DomainUniform,
        6,
        0x12,
    )
    .unwrap();
    // The protocol promises every method (here: the one deployed system)
    // collects its full budget.
    assert!(
        report.total_answers() >= n * 3,
        "{}",
        report.total_answers()
    );
    assert_eq!(report.total_rejected(), 0, "sharded workers never race");

    let final_report = handle.finish().unwrap();
    assert_eq!(final_report.truths.len(), n);
    assert!(
        final_report.accuracy > 0.5,
        "above chance: {}",
        final_report.accuracy
    );
    // Assignment latency was measured under real concurrency.
    let assign = handle.metrics().stats(OpKind::Assign);
    assert!(assign.count as usize >= n * 3 / 10);
    assert!(assign.max.as_millis() < 1_000, "instant assignment");

    drop(handle);
    let docs = service.join();
    assert!(docs.budget_exhausted());
}

#[test]
fn budget_planner_puts_extra_answers_on_hard_tasks() {
    // Collect 4 answers per task, then ask the planner to spend a small
    // top-up budget; it must prefer the tasks whose truth is still
    // ambiguous over tasks with unanimous answers.
    let mut dataset = docs_datasets::item();
    dataset.run_dve_default();
    let m = dataset.domain_set.len();
    let n = dataset.len();
    let pop = population(m, 40, 0x21);
    let mut rng = SmallRng::seed_from_u64(0x22);
    let mut engine = IncrementalTi::new(dataset.tasks.clone(), WorkerRegistry::new(m, 0.7), 0);
    for _ in 0..4 {
        for i in 0..n {
            let tid = TaskId::from(i);
            let w = loop {
                let w = WorkerId::from(rng.gen_range(0..pop.len()));
                if !engine.log().has_answered(w, tid) {
                    break w;
                }
            };
            let choice =
                pop.worker(w)
                    .answer(&dataset.tasks[i], AnswerModel::DomainUniform, &mut rng);
            engine.submit(Answer::new(w, tid, choice)).unwrap();
        }
    }
    engine.run_full();

    let collected: Vec<usize> = (0..n)
        .map(|i| engine.log().answer_count(TaskId::from(i)))
        .collect();
    let rs: Vec<_> = dataset
        .tasks
        .iter()
        .map(|t| t.domain_vector().clone())
        .collect();
    let budget = n; // one extra answer per task on average
    let plan = BudgetPlanner::new(budget, 6).plan(engine.states(), &rs, &collected, &vec![0.75; m]);
    assert!(plan.spent() <= budget);
    assert!(plan.spent() > 0);

    // Tasks split by current ambiguity: the planner's mean allocation on the
    // most uncertain quartile must exceed the mean on the most confident
    // quartile.
    let mut by_entropy: Vec<(f64, usize)> = engine
        .states()
        .iter()
        .enumerate()
        .map(|(i, st)| (docs_types::prob::entropy(st.s()), i))
        .collect();
    by_entropy.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    let quartile = n / 4;
    let mean_extra = |idx: &[(f64, usize)]| {
        idx.iter()
            .map(|&(_, i)| plan.extra_answers[i] as f64)
            .sum::<f64>()
            / idx.len() as f64
    };
    let uncertain = mean_extra(&by_entropy[..quartile]);
    let confident = mean_extra(&by_entropy[n - quartile..]);
    assert!(
        uncertain > confident,
        "uncertain quartile {uncertain:.2} vs confident quartile {confident:.2}"
    );
}

#[test]
fn full_system_campaign_with_stopping_policy_ends_early() {
    // The same campaign through the *deployed* Docs loop (run_campaign),
    // once with the paper's uniform protocol and once with the adaptive
    // stopping policy installed in DocsConfig.
    let dataset = docs_datasets::item();
    let m = dataset.domain_set.len();
    let pop = population(m, 40, 0x41);
    let base = DocsConfig {
        num_golden: 10,
        k_per_hit: 5,
        answers_per_task: 6,
        z: 200,
        ..Default::default()
    };
    let uniform =
        docs_system::run_campaign(&dataset.kb, dataset.tasks.clone(), &pop, base.clone(), 0x42)
            .unwrap();
    let adaptive = docs_system::run_campaign(
        &dataset.kb,
        dataset.tasks.clone(),
        &pop,
        DocsConfig {
            stopping: Some(StoppingPolicy {
                rule: StoppingRule::EntropyBelow(0.06),
                min_answers: 3,
                max_answers: 6,
            }),
            ..base
        },
        0x42,
    )
    .unwrap();
    assert_eq!(uniform.answers_collected, dataset.len() * 6);
    assert!(
        adaptive.answers_collected < uniform.answers_collected,
        "adaptive {} vs uniform {}",
        adaptive.answers_collected,
        uniform.answers_collected
    );
    assert!(
        adaptive.accuracy > uniform.accuracy - 0.12,
        "adaptive {:.3} vs uniform {:.3}",
        adaptive.accuracy,
        uniform.accuracy
    );
}

#[test]
fn adaptive_stopping_saves_budget_without_collapse() {
    let mut dataset = docs_datasets::four_domain();
    dataset.run_dve_default();
    let m = dataset.domain_set.len();
    let n = dataset.len();
    let pop = population(m, 50, 0x31);
    let policy = StoppingPolicy {
        rule: StoppingRule::EntropyBelow(0.06),
        min_answers: 4,
        max_answers: 8,
    };

    let run = |stop_early: bool, seed: u64| {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut engine =
            IncrementalTi::new(dataset.tasks.clone(), WorkerRegistry::new(m, 0.7), 150);
        for _round in 0..policy.max_answers {
            for i in 0..n {
                let tid = TaskId::from(i);
                let count = engine.log().answer_count(tid);
                let stop = if stop_early {
                    policy.should_stop(engine.state(tid), count)
                } else {
                    count >= policy.max_answers
                };
                if stop {
                    continue;
                }
                let w = loop {
                    let w = WorkerId::from(rng.gen_range(0..pop.len()));
                    if !engine.log().has_answered(w, tid) {
                        break w;
                    }
                };
                let choice =
                    pop.worker(w)
                        .answer(&dataset.tasks[i], AnswerModel::DomainUniform, &mut rng);
                engine.submit(Answer::new(w, tid, choice)).unwrap();
            }
        }
        engine.run_full();
        (
            engine.log().len(),
            accuracy_of(&engine.truths(), &dataset.tasks),
        )
    };

    let (uniform_answers, uniform_acc) = run(false, 0x32);
    let (adaptive_answers, adaptive_acc) = run(true, 0x32);
    assert!(
        adaptive_answers < uniform_answers,
        "adaptive {adaptive_answers} vs uniform {uniform_answers}"
    );
    assert!(
        adaptive_acc > uniform_acc - 0.10,
        "adaptive {adaptive_acc:.3} vs uniform {uniform_acc:.3}"
    );
}
