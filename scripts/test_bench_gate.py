#!/usr/bin/env python3
"""Unit tests for bench_gate.py's direction inference.

Run directly (CI does): ``python3 scripts/test_bench_gate.py``

The gate's only judgment call is whether a metric key means "lower is
better" or "higher is better"; a wrong inference silently inverts a
regression check. These tests pin the marker table, in particular the
histogram-quantile markers (``_p50``/``_p99``/``_p999``) and the rule
that lower-is-better markers win when both kinds match.
"""

import unittest

from bench_gate import direction


class DirectionInference(unittest.TestCase):
    def test_quantile_keys_are_lower_is_better(self):
        for key in (
            "obs_traced_submit_e2e_p99",
            "open_loop_assign_p50",
            "flush_sync_p999",
            "dispatch_park_P99",  # case-insensitive
        ):
            self.assertEqual(direction(key), "lower", key)

    def test_unit_suffix_keys_are_lower_is_better(self):
        for key in (
            "obs_hist_record_ns",
            "replication_single_event_lag_us",
            "fence_window_ms",
            "wire_bytes_per_event",
        ):
            self.assertEqual(direction(key), "lower", key)

    def test_throughput_keys_are_higher_is_better(self):
        for key in (
            "obs_off_tput_answers_per_s",
            "pipeline_tput",
            "recovery_speedup",
            "ti_accuracy",
            "scaling_8_shards_x",
        ):
            self.assertEqual(direction(key), "higher", key)

    def test_lower_wins_when_both_kinds_of_marker_match(self):
        # An overhead multiplier is a cost even though it ends in `_x`,
        # and a latency quantile stays a cost when the key also names a
        # throughput-ish word.
        self.assertEqual(direction("obs_on_overhead_x"), "lower")
        self.assertEqual(direction("tput_latency_p99"), "lower")

    def test_unmarked_keys_have_no_direction(self):
        for key in ("events_replayed", "campaigns", "p99"):  # bare p99: no `_p99`
            self.assertIsNone(direction(key), key)

    def test_count_keys_are_not_direction_inferred(self):
        # `_count` keys are informational in main(); direction() itself
        # must not claim them either way unless another marker matches.
        self.assertIsNone(direction("migration_forwarded_count"))


if __name__ == "__main__":
    unittest.main()
