#!/usr/bin/env python3
"""Bench-trajectory gate: compare working-tree BENCH_*.json files against
the committed baseline (``git show HEAD:<file>``) and fail if any headline
metric regressed beyond the tolerance (default 20%).

Usage:
    python3 scripts/bench_gate.py [--tolerance 0.20] [--baseline HEAD]

The direction of "better" is inferred from the key name:

* lower-is-better keys contain one of: ``overhead``, ``latency``, ``lag``,
  ``bytes``, ``allocation``, ``_ns``, ``_us``, ``_ms``, ``_p50``, ``_p99``,
  ``_p999``, ``calibration_err``, ``per_correct``. The quantile markers
  cover the histogram metrics ``BENCH_obs.json`` reports: a latency
  quantile is always a cost, whatever unit suffix it carries.
* higher-is-better keys contain one of: ``_per_s``, ``tput``, ``speedup``,
  ``accuracy``, or end in ``_x``. This covers the quality metrics of
  ``BENCH_quality.json`` (``*_accuracy``, ``*_accuracy_delta_vs_majority``):
  scenario runs are byte-deterministic, so any change in a quality key is a
  real inference change, not run-to-run noise — a PR that makes the service
  faster but dumber fails here like any perf regression.
* keys ending in ``_count`` are **informational**: reported, never gated
  (they describe workload shape — e.g. how many submissions a migration
  forwarded — not performance).

Lower-is-better markers win when both match (e.g. a ``..._overhead_..._x``
multiplier is an overhead, not a speedup). A metric (or whole file) with no
committed baseline is a **warning, never a failure** — new metrics appear
with every bench added and old ones retire; the gate only protects metrics
with a real baseline, and the warnings make the unprotected ones visible
so a typo'd key can't silently opt a metric out of the gate.
"""

import argparse
import glob
import json
import os
import subprocess
import sys

LOWER_MARKERS = (
    "overhead",
    "latency",
    "lag",
    "bytes",
    "allocation",
    "_ns",
    "_us",
    "_ms",
    "_p50",
    "_p99",
    "_p999",
    "calibration_err",
    "per_correct",
)
HIGHER_MARKERS = ("_per_s", "tput", "speedup", "accuracy")


def direction(key: str) -> str | None:
    k = key.lower()
    if any(m in k for m in LOWER_MARKERS):
        return "lower"
    if any(m in k for m in HIGHER_MARKERS) or k.endswith("_x"):
        return "higher"
    return None


def baseline_json(repo: str, rev: str, name: str) -> dict | None:
    try:
        blob = subprocess.run(
            ["git", "-C", repo, "show", f"{rev}:{name}"],
            capture_output=True,
            check=True,
        ).stdout
    except subprocess.CalledProcessError:
        return None
    try:
        return json.loads(blob)
    except json.JSONDecodeError:
        return None


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("BENCH_GATE_TOLERANCE", "0.20")),
        help="allowed fractional regression before failing (default 0.20)",
    )
    parser.add_argument(
        "--baseline",
        default="HEAD",
        help="git revision holding the committed baseline (default HEAD)",
    )
    args = parser.parse_args()

    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    failures = []
    warnings = []
    compared = 0

    def warn(message: str) -> None:
        warnings.append(message)
        print(f"WARNING: {message}")

    for path in sorted(glob.glob(os.path.join(repo, "BENCH_*.json"))):
        name = os.path.basename(path)
        with open(path) as f:
            current = json.load(f)
        base = baseline_json(repo, args.baseline, name)
        if base is None:
            warn(
                f"{name}: no baseline at {args.baseline} — "
                f"{len(current)} metric(s) unchecked (new file)"
            )
            continue
        for key in sorted(current):
            if key.endswith("_count"):
                print(f"{name}: {key} = {current[key]:.6g} (informational, never gated)")
                continue
            if key not in base:
                warn(f"{name}: {key} = {current[key]:.6g} — new metric, no baseline")
                continue
            old, new = base[key], current[key]
            d = direction(key)
            if d is None:
                warn(f"{name}: {key} has no inferable direction — unchecked")
                continue
            compared += 1
            if old == 0:
                continue
            change = (new - old) / abs(old)
            regressed = (d == "lower" and change > args.tolerance) or (
                d == "higher" and change < -args.tolerance
            )
            arrow = "LOWER-IS-BETTER" if d == "lower" else "higher-is-better"
            status = "REGRESSED" if regressed else "ok"
            print(
                f"{name}: {key}: {old:.6g} -> {new:.6g} "
                f"({change:+.1%}, {arrow}) {status}"
            )
            if regressed:
                failures.append(f"{name}: {key} {old:.6g} -> {new:.6g} ({change:+.1%})")
        for key in sorted(set(base) - set(current)):
            print(f"{name}: {key} retired (was {base[key]:.6g})")

    print(
        f"\n{compared} metrics compared against {args.baseline}, "
        f"{len(warnings)} warning(s)"
    )
    if failures:
        print(f"bench gate FAILED: {len(failures)} metric(s) regressed > {args.tolerance:.0%}")
        for f in failures:
            print(f"  {f}")
        return 1
    print("bench gate passed" + (" (with warnings)" if warnings else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
