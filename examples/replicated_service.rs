//! Replicated service demo: a durable primary streams its WAL to a live
//! follower; reads are served from the follower; the primary is killed and
//! the follower is promoted — without losing a single acknowledged event.
//!
//! ```text
//! cargo run --release --example replicated_service
//! ```
//!
//! The run asserts (and CI relies on) three things:
//! 1. replica-served reads (status, inferred truths) match the primary's
//!    answers once the follower's watermark catches up,
//! 2. the promotion watermark covers every acknowledged event
//!    (`FlushPolicy::EveryEvent`: acked ⇒ durable ⇒ shipped), and
//! 3. the truths served before the crash are byte-identical to the
//!    promoted primary's — and resumed traffic runs to a normal finish.

use docs_replication::{bootstrap_frames, replication_channel, Replica, ReplicationHub};
use docs_service::{
    AdaptiveCommit, DocsService, DurabilityConfig, ReadRouter, ServiceConfig, ServiceHandle,
};
use docs_storage::FlushPolicy;
use docs_system::{Docs, DocsConfig, WorkRequest};
use docs_types::{Answer, CampaignId, ReplicaRole, Task, TaskBuilder, WorkerId};
use std::time::{Duration, Instant};

const NUM_TASKS: usize = 18;
const NUM_WORKERS: u32 = 6;

fn tasks() -> Vec<Task> {
    let subjects = ["Michael Jordan", "Kobe Bryant", "NBA"];
    (0..NUM_TASKS)
        .map(|i| {
            TaskBuilder::new(i, format!("Is {} great? ({i})", subjects[i % 3]))
                .yes_no()
                .with_ground_truth(i % 2)
                .with_true_domain(1)
                .build()
                .unwrap()
        })
        .collect()
}

fn publish() -> Docs {
    Docs::publish(
        &docs_kb::table2_example_kb(),
        tasks(),
        DocsConfig {
            num_golden: 3,
            k_per_hit: 3,
            answers_per_task: 3,
            z: 10,
            durable_flush: Some(FlushPolicy::EveryEvent),
            ..Default::default()
        },
    )
    .expect("publish")
}

/// Serves a deterministic slice of worker traffic; returns ops served.
fn drive(handle: &ServiceHandle, campaign: CampaignId, rounds: usize) -> u64 {
    let mut served = 0;
    for round in 0..rounds {
        for w in 0..NUM_WORKERS {
            let w = WorkerId(w);
            match handle.request_tasks_in(campaign, w).expect("request") {
                WorkRequest::Golden(golden) => {
                    let answers: Vec<_> = golden
                        .iter()
                        .map(|&g| (g, (g.index() + round) % 2))
                        .collect();
                    handle
                        .submit_golden_in(campaign, w, answers)
                        .expect("golden");
                    served += 1;
                }
                WorkRequest::Tasks(hit) => {
                    for t in hit {
                        let answer = Answer::new(w, t, (t.index() + w.0 as usize) % 2);
                        if handle.submit_answer_in(campaign, answer).is_ok() {
                            served += 1;
                        }
                    }
                }
                WorkRequest::Done => {}
            }
        }
    }
    served
}

fn await_watermark(replica: &Replica, campaign: CampaignId, seq: u64) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while replica.watermark(campaign) < seq {
        if let Some(e) = replica.error() {
            panic!("replica applier failed: {e}");
        }
        assert!(Instant::now() < deadline, "replica never caught up");
        std::thread::sleep(Duration::from_millis(1));
    }
}

fn main() {
    let dir = std::env::temp_dir().join(format!("docs-replicated-svc-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // ---- Primary with durability + replication feed. ----
    let (sink, feed) = replication_channel();
    let config = ServiceConfig {
        shards: 2,
        durability: Some(DurabilityConfig {
            dir: dir.clone(),
            default_flush: FlushPolicy::EveryEvent,
            snapshot_every: 16,
            adaptive: Some(AdaptiveCommit::default()),
        }),
        ..Default::default()
    }
    .with_replication(sink);
    let (primary_service, primary) = DocsService::spawn_sharded(publish(), config);
    let campaign = primary.default_campaign();
    let hub = ReplicationHub::spawn(feed);

    // Some traffic lands before any follower exists…
    let before_follower = drive(&primary, campaign, 1);

    // ---- Follower: subscribe first, bootstrap scan second. ----
    let link = hub.subscribe("reader-1");
    let bootstrap = bootstrap_frames(&dir).expect("bootstrap scan");
    let replica = Replica::spawn(ServiceConfig::follower(2), link, bootstrap).expect("replica");

    // …and more traffic while the follower applies live frames.
    let after_follower = drive(&primary, campaign, 2);
    let acked_events = 1 + before_follower + after_follower; // Published + ops

    // ---- Reads are served by the follower. ----
    await_watermark(&replica, campaign, acked_events);
    let router = ReadRouter::new(primary.clone(), vec![replica.handle().clone()]);
    let status = router.status_in(campaign).expect("status via replica");
    let primary_status = primary.status_in(campaign).expect("status via primary");
    assert_eq!(status, primary_status, "replica status diverged");
    let replica_truths = router.peek_report_in(campaign).expect("truths via replica");
    let primary_truths = primary
        .peek_report_in(campaign)
        .expect("truths via primary");
    assert_eq!(replica_truths.truths, primary_truths.truths);
    assert_eq!(
        replica_truths.truth_distributions,
        primary_truths.truth_distributions
    );
    assert_eq!(router.stats().replica_reads, 2, "reads routed to replica");
    let lag = hub.lag();
    println!(
        "replicated: {} answers in, follower '{}' lag {} events, {} frames / {} bytes shipped",
        status.answers_collected,
        lag[0].name,
        lag[0].lag_events,
        hub.stats().frames_shipped,
        hub.stats().bytes_shipped,
    );

    // ---- Failover: kill the primary, promote the follower. ----
    primary.simulate_crash();
    drop(router);
    drop(primary);
    primary_service.join_all();
    hub.join();

    let promotion = replica.promote().expect("promotion");
    let promoted = promotion.handle;
    assert_eq!(promoted.role(), ReplicaRole::Primary);
    let watermark = promotion
        .watermarks
        .iter()
        .find(|(c, _)| *c == campaign)
        .map(|(_, s)| *s)
        .expect("campaign watermark");
    assert_eq!(
        watermark, acked_events,
        "promotion watermark must cover every acknowledged event"
    );

    // Truths before the crash == truths after the failover, byte for byte.
    let post = promoted
        .peek_report_in(campaign)
        .expect("post-failover read");
    assert_eq!(post.truths, replica_truths.truths, "failover lost state");
    assert_eq!(post.truth_distributions, replica_truths.truth_distributions);

    // ---- Traffic resumes on the promoted primary. ----
    let resumed = drive(&promoted, campaign, 3);
    let report = promoted.finish_in(campaign).expect("finish");
    println!(
        "promoted at watermark {watermark}; {resumed} more answers after failover, \
         {} total, accuracy {:.2}",
        report.answers_collected, report.accuracy
    );
    assert!(report.answers_collected >= status.answers_collected);

    drop(promoted);
    promotion.service.join_all();
    let _ = std::fs::remove_dir_all(&dir);
    println!("replicated_service: OK");
}
