//! The OTA hot path at scale: incremental benefit index + batched answer
//! ingestion.
//!
//! ```text
//! cargo run --release --example batched_ingestion
//! ```
//!
//! §5.1's assignment path scans every task's benefit per worker request —
//! fine for the paper's 2k-task batches, ruinous at the "millions of
//! users" scale the service runtime targets. This example runs the same
//! deterministic workload against one campaign four ways, crossing the two
//! new levers:
//!
//! * `use_benefit_index`: serve `request_tasks` from the per-task-shard
//!   entropy-bounded heap (pop-and-revalidate) instead of the flat rescan,
//! * batched ingestion: return each HIT's answers in one
//!   `SubmitAnswerBatch` round-trip (one WAL record, one group-commit
//!   `fdatasync`) instead of one `SubmitAnswer` per answer.
//!
//! It prints assignment latency, ingestion round-trips, and group-commit
//! flush counts, and asserts the headline invariant: **all four runs
//! produce byte-identical truths** — the levers change cost, never
//! answers.

use docs_service::{DocsService, OpKind, ServiceConfig, ServiceHandle};
use docs_storage::FlushPolicy;
use docs_system::{Docs, DocsConfig, WorkRequest};
use docs_types::{Answer, ChoiceIndex, Task, TaskBuilder, TaskId, WorkerId};
use std::time::Instant;

const NUM_TASKS: usize = 3_000;
const NUM_WORKERS: u32 = 40;

fn tasks() -> Vec<Task> {
    let subjects = ["Michael Jordan", "Kobe Bryant", "NBA"];
    (0..NUM_TASKS)
        .map(|i| {
            TaskBuilder::new(i, format!("Is {} great? ({i})", subjects[i % 3]))
                .yes_no()
                .with_ground_truth(i % 2)
                .with_true_domain(1)
                .build()
                .unwrap()
        })
        .collect()
}

fn publish(use_benefit_index: bool) -> Docs {
    Docs::publish(
        &docs_kb::table2_example_kb(),
        tasks(),
        DocsConfig {
            num_golden: 5,
            k_per_hit: 20,
            answers_per_task: 2,
            z: 500,
            task_shards: 4,
            use_benefit_index,
            ..Default::default()
        },
    )
    .expect("publish campaign")
}

/// A minimal default campaign for the pool — never driven.
fn placeholder() -> Docs {
    let tasks: Vec<Task> = (0..4)
        .map(|i| {
            TaskBuilder::new(i, format!("Is the NBA popular? ({i})"))
                .yes_no()
                .with_ground_truth(i % 2)
                .with_true_domain(1)
                .build()
                .unwrap()
        })
        .collect();
    Docs::publish(
        &docs_kb::table2_example_kb(),
        tasks,
        DocsConfig {
            num_golden: 2,
            k_per_hit: 2,
            answers_per_task: 1,
            ..Default::default()
        },
    )
    .expect("publish placeholder")
}

/// Deterministic worker choice so every run sees the same answer stream.
fn choice_of(worker: WorkerId, task: TaskId) -> ChoiceIndex {
    if worker.0.is_multiple_of(4) {
        (task.index() + 1) % 2 // a minority dissents
    } else {
        task.index() % 2
    }
}

struct RunReport {
    truths: Vec<ChoiceIndex>,
    assign_mean_us: f64,
    assign_count: u64,
    submit_round_trips: u64,
    log_flushes: u64,
    wall_ms: f64,
}

/// Drives the fixed workload: workers arrive round-robin, answer golden on
/// first contact, then answer every assigned HIT until the budget is done.
fn run(label: &str, use_index: bool, batched: bool) -> RunReport {
    let dir = std::env::temp_dir().join(format!(
        "docs-batched-ingestion-{}-{label}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    // The measured campaign is the durable one created below; the pool's
    // default campaign is a tiny placeholder so each run pays DVE + golden
    // selection for the 3000-task set only once.
    let (service, handle) =
        DocsService::spawn_sharded(placeholder(), ServiceConfig::durable(2, &dir));
    let campaign = handle
        .create_campaign_with(publish(use_index), FlushPolicy::EveryEvent)
        .expect("durable campaign");
    let started = Instant::now();
    let mut idle_rounds = 0;
    while idle_rounds < 2 {
        let mut progressed = false;
        for w in 0..NUM_WORKERS {
            let w = WorkerId(w);
            match handle.request_tasks_in(campaign, w).expect("request") {
                WorkRequest::Golden(golden) => {
                    let answers: Vec<_> = golden.iter().map(|&g| (g, choice_of(w, g))).collect();
                    handle
                        .submit_golden_in(campaign, w, answers)
                        .expect("golden");
                    progressed = true;
                }
                WorkRequest::Tasks(hit) => {
                    progressed = true;
                    submit_hit(&handle, campaign, w, &hit, batched);
                }
                WorkRequest::Done => {}
            }
        }
        idle_rounds = if progressed { 0 } else { idle_rounds + 1 };
    }
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let report = handle.finish_in(campaign).expect("finish");
    let assign = handle.metrics().stats(OpKind::Assign);
    let submits = handle.metrics().stats(OpKind::Submit).count
        + handle.metrics().stats(OpKind::SubmitBatch).count;
    let flushes = handle.metrics().durability().log_flushes;
    drop(handle);
    service.join_all();
    let _ = std::fs::remove_dir_all(&dir);
    RunReport {
        truths: report.truths,
        assign_mean_us: assign.mean().as_secs_f64() * 1e6,
        assign_count: assign.count,
        submit_round_trips: submits,
        log_flushes: flushes,
        wall_ms,
    }
}

fn submit_hit(
    handle: &ServiceHandle,
    campaign: docs_types::CampaignId,
    w: WorkerId,
    hit: &[TaskId],
    batched: bool,
) {
    if batched {
        let answers: Vec<Answer> = hit
            .iter()
            .map(|&t| Answer::new(w, t, choice_of(w, t)))
            .collect();
        handle
            .submit_answer_batch_in(campaign, answers)
            .expect("batch");
    } else {
        for &t in hit {
            handle
                .submit_answer_in(campaign, Answer::new(w, t, choice_of(w, t)))
                .expect("answer");
        }
    }
}

fn main() {
    println!(
        "batched ingestion + benefit index: {NUM_TASKS} tasks, {NUM_WORKERS} workers, \
         durable EveryEvent campaign\n"
    );
    let configs = [
        ("scan + per-answer", false, false),
        ("scan + batched", false, true),
        ("index + per-answer", true, false),
        ("index + batched", true, true),
    ];
    let mut reports = Vec::new();
    for (label, use_index, batched) in configs {
        let r = run(label, use_index, batched);
        println!(
            "{label:20} assign {:>8.1} µs/req ({} reqs) · {:>5} ingest round-trips · \
             {:>5} fsyncs · {:>7.0} ms wall",
            r.assign_mean_us, r.assign_count, r.submit_round_trips, r.log_flushes, r.wall_ms
        );
        reports.push((label, r));
    }
    // The headline invariant: four cost profiles, one answer.
    let reference = &reports[0].1.truths;
    for (label, r) in &reports[1..] {
        assert_eq!(
            &r.truths, reference,
            "{label}: truths diverged from the scan + per-answer reference"
        );
    }
    let scan = &reports[1].1; // scan + batched
    let index = &reports[3].1; // index + batched
    println!(
        "\nindexed assignment: {:.1}x faster than the flat scan on this pool",
        scan.assign_mean_us / index.assign_mean_us.max(1e-9)
    );
    let per_answer = &reports[2].1;
    println!(
        "batched ingestion: {} -> {} ingestion round-trips, {} -> {} fsyncs",
        per_answer.submit_round_trips,
        index.submit_round_trips,
        per_answer.log_flushes,
        index.log_flushes
    );
    println!("all four runs produced byte-identical truths ✓");
}
