//! The durable runtime end to end: create a campaign, kill the service
//! mid-stream (drop without finish, unflushed group-commit buffer lost),
//! recover from the durability directory, finish — and compare durable
//! group-commit throughput against the in-memory path.
//!
//! ```text
//! cargo run --release --example durable_service
//! ```
//!
//! Two demonstrations:
//!
//! 1. **Crash → recover → byte-identical report.** A deterministic worker
//!    script runs once against a plain in-memory `Docs` (the reference),
//!    then against a durable service that is killed mid-campaign. After
//!    `DocsService::recover` the script is re-driven (the recovered prefix
//!    rejects duplicates deterministically) and the final report must match
//!    the reference byte for byte — truths *and* probability
//!    distributions.
//! 2. **Group commit pays for durability.** The same concurrent crowd
//!    drive runs against an in-memory campaign, a `Batch(64)` durable
//!    campaign, and an `EveryEvent` durable campaign. `Batch(n)` amortizes
//!    the `fdatasync` so durable throughput stays within ~2× of memory;
//!    the numbers land in `BENCH_durability.json` for trend tracking.

use docs_crowd::{AnswerModel, PopulationConfig, WorkerPopulation};
use docs_service::{
    drive_workers_on, AdaptiveCommit, DocsService, DurabilityConfig, ServiceConfig, ServiceError,
    ServiceHandle,
};
use docs_storage::FlushPolicy;
use docs_system::{Docs, DocsConfig, RequesterReport, WorkRequest};
use docs_types::{Answer, CampaignId, ChoiceIndex, Task, TaskBuilder, TaskId, WorkerId};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

// ---------------------------------------------------------------------------
// Part 1: crash → recover → byte-identical report
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Op {
    Golden(WorkerId, Vec<(TaskId, ChoiceIndex)>),
    Answer(Answer),
}

fn smoke_tasks() -> Vec<Task> {
    let subjects = ["Michael Jordan", "Kobe Bryant", "NBA"];
    (0..15)
        .map(|i| {
            TaskBuilder::new(i, format!("Is {} great? ({i})", subjects[i % 3]))
                .yes_no()
                .with_ground_truth(i % 2)
                .with_true_domain(1)
                .build()
                .unwrap()
        })
        .collect()
}

fn smoke_publish(durable_flush: Option<FlushPolicy>) -> Docs {
    Docs::publish(
        &docs_kb::table2_example_kb(),
        smoke_tasks(),
        DocsConfig {
            num_golden: 3,
            k_per_hit: 4,
            answers_per_task: 3,
            z: 10,
            task_shards: 2,
            durable_flush,
            ..Default::default()
        },
    )
    .expect("publish smoke campaign")
}

fn choice_of(worker: WorkerId, task: TaskId) -> ChoiceIndex {
    if worker.0.is_multiple_of(2) {
        task.index() % 2
    } else {
        (task.index() + worker.0 as usize) % 2
    }
}

/// Uninterrupted in-memory run: records the op stream, returns the
/// reference report.
fn oracle() -> (Vec<Op>, RequesterReport) {
    let mut docs = smoke_publish(None);
    let mut ops = Vec::new();
    while !docs.budget_exhausted() {
        let mut progressed = false;
        for w in 0..6u32 {
            let w = WorkerId(w);
            match docs.request_tasks(w) {
                WorkRequest::Golden(golden) => {
                    let answers: Vec<_> = golden.iter().map(|&g| (g, choice_of(w, g))).collect();
                    docs.submit_golden(w, &answers).unwrap();
                    ops.push(Op::Golden(w, answers));
                    progressed = true;
                }
                WorkRequest::Tasks(hit) => {
                    for t in hit {
                        let answer = Answer::new(w, t, choice_of(w, t));
                        docs.submit_answer(answer).unwrap();
                        ops.push(Op::Answer(answer));
                        progressed = true;
                    }
                }
                WorkRequest::Done => {}
            }
        }
        if !progressed {
            break;
        }
    }
    let report = docs.finish().unwrap();
    (ops, report)
}

fn submit(handle: &ServiceHandle, campaign: CampaignId, op: &Op) {
    let result = match op {
        Op::Golden(w, answers) => handle.submit_golden_in(campaign, *w, answers.clone()),
        Op::Answer(a) => handle.submit_answer_in(campaign, *a),
    };
    match result {
        Ok(()) | Err(ServiceError::Rejected(_)) => {}
        Err(e) => panic!("service failed: {e}"),
    }
}

fn recovery_smoke(dir: &Path) {
    println!("— crash/recovery smoke —");
    let (ops, reference) = oracle();
    let policy = FlushPolicy::Batch(8);
    let config = ServiceConfig {
        shards: 2,
        durability: Some(DurabilityConfig {
            dir: dir.to_path_buf(),
            default_flush: policy,
            // Larger than the whole stream: recovery must lean on replay,
            // not on a lucky snapshot right before the kill.
            snapshot_every: 500,
            adaptive: Some(AdaptiveCommit::default()),
        }),
        ..Default::default()
    };

    // Serve 60% of the stream durably, then die without finishing: the
    // handle is dropped mid-campaign and the unflushed batch is lost.
    let crash_at = ops.len() * 6 / 10;
    let (service, handle) = DocsService::spawn_sharded(smoke_publish(Some(policy)), config.clone());
    let campaign = handle.default_campaign();
    for op in &ops[..crash_at] {
        submit(&handle, campaign, op);
    }
    handle.simulate_crash();
    drop(handle);
    let _ = service.join_all();
    println!(
        "  killed after {crash_at}/{} ops (group-commit tail abandoned)",
        ops.len()
    );

    let (service, handle) = DocsService::recover(config).expect("recover from durability dir");
    let d = handle.metrics().durability();
    println!(
        "  recovered: {} snapshot(s), {} event(s) replayed, {} rejected",
        d.snapshots_loaded, d.events_replayed, d.replay_rejected
    );
    for op in &ops {
        submit(&handle, campaign, op);
    }
    let report = handle.finish_in(campaign).expect("finish after recovery");
    assert_eq!(
        report.truths, reference.truths,
        "truths must be byte-identical"
    );
    assert_eq!(
        report.truth_distributions, reference.truth_distributions,
        "probabilistic truths must be byte-identical"
    );
    assert_eq!(report.answers_collected, reference.answers_collected);
    println!(
        "  report byte-identical to the uninterrupted run ✓ ({} answers, accuracy {:.3})",
        report.answers_collected, report.accuracy
    );
    drop(handle);
    let _ = service.join_all();
}

// ---------------------------------------------------------------------------
// Part 2: durable vs in-memory throughput
// ---------------------------------------------------------------------------

fn bench_publish(
    task_shards: usize,
    durable_flush: Option<FlushPolicy>,
) -> (Docs, Arc<Vec<Task>>, usize) {
    let mut dataset = docs_datasets::four_domain();
    let m = dataset.domain_set.len();
    let config = DocsConfig {
        num_golden: 20,
        k_per_hit: 20,
        answers_per_task: 4,
        z: 100,
        task_shards,
        durable_flush,
        ..Default::default()
    };
    let docs = Docs::publish(&dataset.kb, std::mem::take(&mut dataset.tasks), config)
        .expect("publish 4D dataset");
    let published = Arc::new(docs.tasks().to_vec());
    (docs, published, m)
}

/// Drives one campaign to budget exhaustion; returns answers/second.
fn measure(dir: &Path, flush: Option<FlushPolicy>, label: &str) -> f64 {
    let config = match flush {
        Some(_) => ServiceConfig {
            shards: 2,
            durability: Some(DurabilityConfig {
                dir: dir.join(label),
                default_flush: FlushPolicy::Batch(64),
                snapshot_every: 4096,
                adaptive: Some(AdaptiveCommit::default()),
            }),
            ..Default::default()
        },
        None => ServiceConfig::sharded(2),
    };
    let (docs, tasks, m) = bench_publish(2, flush);
    let (service, handle) = DocsService::spawn_sharded(docs, config);
    let campaign = handle.default_campaign();
    let population = WorkerPopulation::generate(&PopulationConfig {
        m,
        size: 40,
        seed: 0xD0C5,
        ..Default::default()
    });
    let started = Instant::now();
    let report = drive_workers_on(
        &handle,
        campaign,
        tasks,
        &population,
        AnswerModel::DomainUniform,
        4,
        0xBEEF,
    )
    .expect("drive campaign");
    let wall = started.elapsed().as_secs_f64();
    let answers = report.total_answers();
    let tput = answers as f64 / wall;
    let d = handle.metrics().durability();
    println!(
        "  {label:<22} {answers:>6} answers in {wall:>5.2}s → {tput:>7.0} answers/s   \
         (events logged {:>6}, flushes {:>5}, last flush {:?})",
        d.events_logged, d.log_flushes, d.last_flush
    );
    drop(handle);
    let _ = service.join_all();
    tput
}

/// Read-modify-write merge into `BENCH_durability.json` so the service
/// numbers and the `docs-bench` micro numbers share one trend file.
fn merge_bench_json(updates: &[(&str, f64)]) {
    // Anchor at the workspace root whatever the CWD is.
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("BENCH_durability.json");
    let mut map: HashMap<String, f64> = std::fs::read(&path)
        .ok()
        .and_then(|bytes| serde_json::from_slice(&bytes).ok())
        .unwrap_or_default();
    for (key, value) in updates {
        map.insert(key.to_string(), *value);
    }
    let mut entries: Vec<(String, f64)> = map.into_iter().collect();
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    let body: Vec<String> = entries
        .iter()
        .map(|(k, v)| format!("  \"{k}\": {v}"))
        .collect();
    std::fs::write(&path, format!("{{\n{}\n}}\n", body.join(",\n"))).expect("write bench json");
    println!("  numbers merged into {}", path.display());
}

fn main() {
    let dir = std::env::temp_dir().join(format!("docs-durable-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    recovery_smoke(&dir.join("smoke"));

    println!("\n— durable vs in-memory throughput (same crowd drive) —");
    let tput_memory = measure(&dir, None, "in-memory");
    let tput_batch = measure(&dir, Some(FlushPolicy::Batch(64)), "durable batch(64)");
    let tput_every = measure(&dir, Some(FlushPolicy::EveryEvent), "durable every-event");
    let overhead_batch = tput_memory / tput_batch;
    let overhead_every = tput_memory / tput_every;
    println!(
        "\n  group commit overhead: batch(64) {overhead_batch:.2}× vs in-memory \
         (target ≤ ~2×); every-event {overhead_every:.2}×"
    );
    assert!(
        overhead_batch <= 2.0,
        "Batch(64) group commit must keep durable throughput within ~2× of \
         the in-memory path (measured {overhead_batch:.2}×)"
    );

    merge_bench_json(&[
        ("service_tput_memory_answers_per_s", tput_memory),
        ("service_tput_durable_batch64_answers_per_s", tput_batch),
        ("service_tput_durable_every_event_answers_per_s", tput_every),
        ("service_durable_overhead_batch64_x", overhead_batch),
        ("service_durable_overhead_every_event_x", overhead_every),
    ]);

    let _ = std::fs::remove_dir_all(&dir);
    println!("\ndurable service example complete ✓");
}
