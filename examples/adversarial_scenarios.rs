//! Honest crowd vs uniform spammers vs colluding cliques on the 4-Domain
//! dataset — the scenario harness as a requester would use it.
//!
//! ```text
//! cargo run --release --example adversarial_scenarios
//! ```
//!
//! Each scenario is a named manifest from [`docs_scenarios::registry`]:
//! the same dataset, budget, and seed discipline, differing only in the
//! behavioral mix of the crowd. The run goes through the real
//! `docs-service` request path (golden gate → OTA assignment → batched
//! submission → final inference) and is scored client-side against the
//! majority-vote baseline over the *same* mirrored answers.
//!
//! What the table shows:
//!
//! * **honest** — per-domain weighting already beats majority vote on a
//!   well-behaved crowd (the paper's Figure 5 claim).
//! * **spammers** — 30% uniform spammers: majority vote absorbs the noise
//!   into every tally, DOCS discounts the spammers' low estimated quality
//!   and widens the gap.
//! * **colluders** — 25% of the crowd votes for a coordinated wrong answer:
//!   majority vote collapses, DOCS keeps the colluders' quality estimates
//!   low (their golden answers don't help them — collusion is off-script
//!   there) and stays accurate.

use docs_scenarios::{named, render_table, run_scenario, score};

fn main() {
    let scenarios = [
        "four_domain_honest",
        "four_domain_spammers",
        "four_domain_colluders",
    ];
    let mut reports = Vec::new();
    for name in scenarios {
        let spec = named(name).expect("registry scenario");
        println!(
            "running {name} ({} tasks x {} answers, {} workers, {:?})…",
            spec.dataset.build().len(),
            spec.answers_per_task,
            spec.population.size,
            spec.service,
        );
        let outcome = run_scenario(&spec);
        reports.push(score(&outcome));
    }

    println!("\n{}", render_table(&reports));

    let honest = &reports[0];
    let spammers = &reports[1];
    let colluders = &reports[2];
    assert!(
        honest.docs_accuracy >= honest.majority_accuracy,
        "honest crowd: DOCS lost to majority vote"
    );
    assert!(
        spammers.accuracy_delta_vs_majority >= honest.accuracy_delta_vs_majority,
        "spam should widen the DOCS advantage"
    );
    assert!(
        colluders.accuracy_delta_vs_majority > 0.05,
        "collusion should crater majority vote, not DOCS"
    );
    println!(
        "collusion cost majority vote {:.1} points; DOCS kept {:.1}% accuracy",
        100.0 * (honest.majority_accuracy - colluders.majority_accuracy),
        100.0 * colluders.docs_accuracy,
    );
}
