//! The deployed-system view: DOCS behind the sharded multi-campaign
//! service runtime.
//!
//! ```text
//! cargo run --release --example concurrent_service
//! ```
//!
//! The paper's DOCS is a Django web service on AMT: many workers hit it in
//! parallel, some submitting answers, others requesting HITs, and "online
//! task assignment is required to achieve instant assignment". The seed
//! reproduced that with one server thread owning one campaign; this example
//! runs the generalized runtime: four requester campaigns served at once by
//! a shard pool, every campaign hammered by its own client threads.
//!
//! It runs the same workload twice — `shards = 1` (the seed architecture:
//! every campaign serialized through one thread) and `shards = 4` — and
//! reports the end-to-end throughput of both, the per-operation latency
//! (the concurrent version of Figure 8(b)'s worst-case assignment time),
//! and the per-shard queue statistics.

use docs_crowd::{AnswerModel, PopulationConfig, WorkerPopulation};
use docs_service::{drive_workers_on, DocsService, OpKind, ServiceConfig};
use docs_system::{Docs, DocsConfig};
use docs_types::Task;
use std::sync::Arc;
use std::time::Instant;

const CAMPAIGNS: usize = 4;
const CLIENTS_PER_CAMPAIGN: usize = 2;

/// Publishes one 4D-dataset campaign; returns the system, its published
/// task list, and the domain count `m`.
fn publish_campaign(task_shards: usize) -> (Docs, Arc<Vec<Task>>, usize) {
    let mut dataset = docs_datasets::four_domain();
    let m = dataset.domain_set.len();
    let config = DocsConfig {
        num_golden: 20,
        k_per_hit: 20,
        answers_per_task: 5,
        z: 100,
        task_shards,
        ..Default::default()
    };
    // `Docs::publish` runs DVE itself; hand it the raw tasks.
    let docs = Docs::publish(&dataset.kb, std::mem::take(&mut dataset.tasks), config)
        .expect("publish 4D dataset");
    let published = Arc::new(docs.tasks().to_vec());
    (docs, published, m)
}

/// Runs `CAMPAIGNS` campaigns to budget exhaustion on a pool with the given
/// shard count; returns (wall time seconds, total answers collected).
fn run_pool(shards: usize) -> (f64, usize, docs_service::ServiceMetrics) {
    let (first_docs, first_tasks, m) = publish_campaign(shards);
    let (service, handle) = DocsService::spawn_sharded(first_docs, ServiceConfig::sharded(shards));
    let mut campaigns = vec![(handle.default_campaign(), first_tasks)];
    for _ in 1..CAMPAIGNS {
        let (docs, tasks, _) = publish_campaign(shards);
        let id = handle.create_campaign(docs).expect("create campaign");
        campaigns.push((id, tasks));
    }

    let started = Instant::now();
    let drivers: Vec<_> = campaigns
        .into_iter()
        .enumerate()
        .map(|(i, (campaign, tasks))| {
            let handle = handle.clone();
            std::thread::spawn(move || {
                let population = WorkerPopulation::generate(&PopulationConfig {
                    m,
                    size: 40,
                    seed: 0xC0C0 + i as u64,
                    ..Default::default()
                });
                let report = drive_workers_on(
                    &handle,
                    campaign,
                    tasks,
                    &population,
                    AnswerModel::DomainUniform,
                    CLIENTS_PER_CAMPAIGN,
                    0xD0C5 + i as u64,
                )
                .expect("drive campaign");
                let final_report = handle.finish_in(campaign).expect("finish campaign");
                (report.total_answers(), final_report.accuracy)
            })
        })
        .collect();
    let mut total_answers = 0;
    for d in drivers {
        let (answers, accuracy) = d.join().expect("campaign driver panicked");
        total_answers += answers;
        assert!(accuracy > 0.0, "campaign produced a report");
    }
    let wall = started.elapsed().as_secs_f64();
    let metrics = handle.metrics().clone();
    drop(handle);
    let campaigns = service.join_all();
    if shards > 1 {
        let (id, docs) = &campaigns[0];
        println!(
            "  campaign {id} TI ingestion per task shard: {:?} (hash balance check)",
            docs.shard_ingestion()
        );
    }
    (wall, total_answers, metrics)
}

fn main() {
    println!(
        "serving {CAMPAIGNS} campaigns × {CLIENTS_PER_CAMPAIGN} client threads \
         ({} concurrent clients) through the DOCS service…\n",
        CAMPAIGNS * CLIENTS_PER_CAMPAIGN
    );

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let (wall_1, answers_1, _) = run_pool(1);
    let tput_1 = answers_1 as f64 / wall_1;
    println!("shards = 1 (seed architecture): {answers_1} answers in {wall_1:.2}s → {tput_1:.0} answers/s");

    let (wall_n, answers_n, metrics) = run_pool(4);
    let tput_n = answers_n as f64 / wall_n;
    println!("shards = 4 (sharded runtime):  {answers_n} answers in {wall_n:.2}s → {tput_n:.0} answers/s");
    println!(
        "\nthroughput speedup vs single shard: {:.2}× on {cores} core(s) \
         (target on a 4-core runner: ≥ 2×; a single-core box can at best break even)",
        tput_n / tput_1
    );

    println!("\nper-operation service latency (sharded run):");
    for (name, kind) in [
        ("assignment (OTA)", OpKind::Assign),
        ("golden submission", OpKind::Golden),
        ("answer submission (TI)", OpKind::Submit),
        ("finish (full inference)", OpKind::Finish),
        ("campaign creation", OpKind::Create),
    ] {
        let s = metrics.stats(kind);
        println!(
            "  {name:<24} count {:>6}   mean {:>10.2?}   worst {:>10.2?}",
            s.count,
            s.mean(),
            s.max
        );
    }

    println!("\nper-shard load (sharded run):");
    for (i, s) in metrics.all_shards().iter().enumerate() {
        println!(
            "  shard {i}: processed {:>6}   busy {:>9.2?}   mean {:>9.2?}   worst {:>9.2?}   peak queue {:>3}   busy rejections {:>3}",
            s.processed,
            s.busy,
            s.mean_latency(),
            s.max_latency,
            s.max_queued,
            s.busy_rejections
        );
    }
}
