//! The deployed-system view: DOCS behind a concurrent service front-end.
//!
//! ```text
//! cargo run --release --example concurrent_service
//! ```
//!
//! The paper's DOCS is a Django web service on AMT: many workers hit it in
//! parallel, some submitting answers, others requesting HITs, and "online
//! task assignment is required to achieve instant assignment". This example
//! publishes the 4D dataset through [`docs_service::DocsService`] and drives
//! a 40-worker simulated crowd from 8 client threads, then reports the
//! per-operation latency the service sustained — the concurrent version of
//! Figure 8(b)'s worst-case assignment time.

use docs_crowd::{AnswerModel, PopulationConfig, WorkerPopulation};
use docs_service::{drive_workers, DocsService, OpKind};
use docs_system::{Docs, DocsConfig};
use std::sync::Arc;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut dataset = docs_datasets::four_domain();
    let m = dataset.domain_set.len();
    println!(
        "publishing dataset {} ({} tasks) through the DOCS service…",
        dataset.name,
        dataset.len()
    );

    let config = DocsConfig {
        num_golden: 20,
        k_per_hit: 20,
        answers_per_task: 5,
        z: 100,
        ..Default::default()
    };
    // `Docs::publish` runs DVE itself; hand it the raw tasks.
    let docs = Docs::publish(&dataset.kb, std::mem::take(&mut dataset.tasks), config)?;
    let published = Arc::new(docs.tasks().to_vec());
    let (service, handle) = DocsService::spawn(docs);

    let population = WorkerPopulation::generate(&PopulationConfig {
        m,
        size: 40,
        seed: 0xC0C0,
        ..Default::default()
    });

    let started = Instant::now();
    let report = drive_workers(
        &handle,
        Arc::clone(&published),
        &population,
        AnswerModel::DomainUniform,
        8,
        0xD0C5,
    );
    let wall = started.elapsed();

    println!(
        "\ncrowd done in {:.2?}: {} answers, {} golden HITs, {} rejected submissions",
        wall,
        report.total_answers(),
        report.total_golden(),
        report.total_rejected()
    );

    let final_report = handle.finish()?;
    println!(
        "inferred truth for {} tasks, accuracy {:.1}% on {} collected answers",
        final_report.truths.len(),
        final_report.accuracy * 100.0,
        final_report.answers_collected
    );

    println!("\nper-operation service latency (8 concurrent clients):");
    for (name, kind) in [
        ("assignment (OTA)", OpKind::Assign),
        ("golden submission", OpKind::Golden),
        ("answer submission (TI)", OpKind::Submit),
        ("finish (full inference)", OpKind::Finish),
    ] {
        let s = handle.metrics().stats(kind);
        println!(
            "  {name:<24} count {:>6}   mean {:>10.2?}   worst {:>10.2?}",
            s.count,
            s.mean(),
            s.max
        );
    }

    drop(handle);
    let _docs = service.join();
    Ok(())
}
