//! Observability demo: a durable, replicated service run with
//! every-request trace sampling, then harvested — a flight-recorder
//! trace of one submit with its full pipeline span breakdown, the
//! Prometheus exposition, the JSON snapshot, and the control-plane
//! journal across a failover.
//!
//! ```text
//! cargo run --release --example observability
//! ```
//!
//! The run asserts (and CI relies on) three things:
//! 1. a traced durable replicated submit carries the pipeline spans —
//!    queue-wait, apply, ship, flush-wait — and the spans sum to within
//!    10% of the trace's own end-to-end time,
//! 2. `render_prometheus()` output parses (`validate_prometheus`) and the
//!    JSON snapshot is well-formed JSON,
//! 3. the control-plane journal records the failover: the follower's
//!    promotion shows up as a `promotion` entry on the promoted node.

use docs_obs::{validate_prometheus, SpanKind};
use docs_replication::{bootstrap_frames, replication_channel, Replica, ReplicationHub};
use docs_service::{AdaptiveCommit, DocsService, DurabilityConfig, ServiceConfig, ServiceHandle};
use docs_storage::FlushPolicy;
use docs_system::{Docs, DocsConfig, WorkRequest};
use docs_types::{Answer, CampaignId, Task, TaskBuilder, WorkerId};

const NUM_TASKS: usize = 18;
const NUM_WORKERS: u32 = 6;

fn tasks() -> Vec<Task> {
    let subjects = ["Michael Jordan", "Kobe Bryant", "NBA"];
    (0..NUM_TASKS)
        .map(|i| {
            TaskBuilder::new(i, format!("Is {} great? ({i})", subjects[i % 3]))
                .yes_no()
                .with_ground_truth(i % 2)
                .with_true_domain(1)
                .build()
                .unwrap()
        })
        .collect()
}

fn publish() -> Docs {
    Docs::publish(
        &docs_kb::table2_example_kb(),
        tasks(),
        DocsConfig {
            num_golden: 3,
            k_per_hit: 3,
            answers_per_task: 3,
            z: 10,
            durable_flush: Some(FlushPolicy::EveryEvent),
            ..Default::default()
        },
    )
    .expect("publish")
}

/// Serves a deterministic slice of worker traffic; returns ops served.
fn drive(handle: &ServiceHandle, campaign: CampaignId, rounds: usize) -> u64 {
    let mut served = 0;
    for round in 0..rounds {
        for w in 0..NUM_WORKERS {
            let w = WorkerId(w);
            match handle.request_tasks_in(campaign, w).expect("request") {
                WorkRequest::Golden(golden) => {
                    let answers: Vec<_> = golden
                        .iter()
                        .map(|&g| (g, (g.index() + round) % 2))
                        .collect();
                    handle
                        .submit_golden_in(campaign, w, answers)
                        .expect("golden");
                    served += 1;
                }
                WorkRequest::Tasks(hit) => {
                    for t in hit {
                        let answer = Answer::new(w, t, (t.index() + w.0 as usize) % 2);
                        if handle.submit_answer_in(campaign, answer).is_ok() {
                            served += 1;
                        }
                    }
                }
                WorkRequest::Done => {}
            }
        }
    }
    served
}

/// Structural JSON check (the vendored serde_json subset has no generic
/// `Value`): braces/brackets balance outside strings, object root.
fn assert_well_formed_json(json: &str) {
    let (mut depth, mut in_string, mut escaped) = (0i64, false, false);
    for c in json.chars() {
        if in_string {
            match (escaped, c) {
                (true, _) => escaped = false,
                (false, '\\') => escaped = true,
                (false, '"') => in_string = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' | '[' => depth += 1,
            '}' | ']' => depth -= 1,
            _ => {}
        }
        assert!(depth >= 0, "unbalanced close in snapshot JSON");
    }
    assert_eq!(depth, 0, "unbalanced open in snapshot JSON");
    assert!(!in_string, "unterminated string in snapshot JSON");
    assert!(json.starts_with('{') && json.ends_with('}'), "root object");
}

fn main() {
    let dir = std::env::temp_dir().join(format!("docs-obs-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // ---- Primary: durable, replicated, tracing every request. ----
    // `trace_sample_every: 1` is demo-grade; a production pool samples
    // 1-in-N (the unsampled path is one relaxed load per request).
    let (sink, feed) = replication_channel();
    let config = ServiceConfig {
        shards: 2,
        durability: Some(DurabilityConfig {
            dir: dir.clone(),
            default_flush: FlushPolicy::EveryEvent,
            snapshot_every: 64,
            adaptive: Some(AdaptiveCommit::default()),
        }),
        ..Default::default()
    }
    .with_replication(sink)
    .with_trace_sampling(1);
    let (primary_service, primary) = DocsService::spawn_sharded(publish(), config);
    let campaign = primary.default_campaign();
    let hub = ReplicationHub::spawn(feed);
    hub.attach_metrics(primary.metrics());
    let link = hub.subscribe("follower-1");
    let bootstrap = bootstrap_frames(&dir).expect("bootstrap scan");
    let replica = Replica::spawn(ServiceConfig::follower(2), link, bootstrap).expect("replica");

    let served = drive(&primary, campaign, 3);
    println!("served {served} worker ops on the traced primary\n");

    // ---- 1. A flight-recorder trace of a durable replicated submit. ----
    let traces = primary.metrics().flight().snapshot();
    let pipeline = [
        SpanKind::QueueWait,
        SpanKind::Apply,
        SpanKind::Ship,
        SpanKind::FlushWait,
    ];
    let traced = traces
        .iter()
        .find(|t| pipeline.iter().all(|&k| t.span_ns(k).is_some()))
        .expect("a traced submit must carry the full pipeline spans");
    println!(
        "one traced durable replicated submit ({} harvested):",
        traces.len()
    );
    println!("  {}", traced.to_json());
    for kind in SpanKind::ALL {
        if let Some(ns) = traced.span_ns(kind) {
            println!("  {:>13}: {:>8.1} µs", kind.name(), ns as f64 / 1e3);
        }
    }
    let covered = traced.spans_sum_ns() as f64 / traced.total_ns.max(1) as f64;
    println!(
        "  spans account for {:.1}% of the {:.1} µs end-to-end time\n",
        covered * 100.0,
        traced.total_ns as f64 / 1e3
    );
    assert!(covered >= 0.9, "trace must account for ≥90% of its latency");

    // ---- 2. Prometheus exposition + JSON snapshot. ----
    let prom = primary.metrics().render_prometheus();
    let families = validate_prometheus(&prom).expect("exposition must parse");
    let excerpt: Vec<&str> = prom
        .lines()
        .filter(|l| l.contains("docs_op_latency") || l.contains("docs_flush"))
        .take(8)
        .collect();
    println!("prometheus exposition: {families} families, excerpt:");
    for line in excerpt {
        println!("  {line}");
    }
    let json = primary.metrics().snapshot_json();
    assert_well_formed_json(&json);
    println!("json snapshot: {} bytes, well-formed\n", json.len());

    // ---- 3. Failover, journaled. ----
    // Stop the primary, drain the stream, promote. Under EveryEvent,
    // acked ⇒ durable ⇒ shipped, and `promote` drains every shipped
    // frame before flipping — no acknowledged event can be lost.
    drop(primary);
    primary_service.join_all();
    hub.join();
    let promoted = replica.promote().expect("promotion");
    let resumed = drive(&promoted.handle, campaign, 1);
    println!("promoted the follower; served {resumed} more ops after failover");
    let journal = promoted.handle.metrics().journal().snapshot();
    assert!(
        journal
            .iter()
            .any(|e| e.kind == docs_obs::JournalKind::Promotion),
        "the promotion must be journaled on the promoted node"
    );
    println!("control-plane journal on the promoted node:");
    for entry in &journal {
        println!(
            "  #{} [{}] {}: {}",
            entry.seq,
            entry.severity.name(),
            entry.kind.name(),
            entry.detail
        );
    }

    promoted.handle.finish_in(campaign).expect("finish");
    drop(promoted.handle);
    promoted.service.join_all();
    let _ = std::fs::remove_dir_all(&dir);
    println!("\nobservability example: all assertions passed");
}
