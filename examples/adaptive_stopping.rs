//! Adaptive answer collection — the Figure 4(c) "stable point" future work.
//!
//! ```text
//! cargo run --release --example adaptive_stopping
//! ```
//!
//! The paper collects exactly 10 answers for every task and observes that
//! accuracy "remains stable as ≥ 8 answers are collected. We will study the
//! estimation of stable point in future." This example runs that study on
//! the simulated Item dataset, three ways:
//!
//! 1. the uniform 10-answers-per-task protocol (the paper's),
//! 2. a per-task [`StoppingPolicy`]: confident tasks stop collecting early,
//! 3. the campaign-level stable point, estimated offline from the accuracy
//!    curve and online (no ground truth) from truth flips.

use docs_core::ti::stopping::{stable_point_of_curve, StoppingPolicy, TruthFlipTracker};
use docs_core::ti::{IncrementalTi, WorkerRegistry};
use docs_crowd::{accuracy_of, AnswerModel, PopulationConfig, WorkerPopulation};
use docs_types::{Answer, TaskId, WorkerId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut dataset = docs_datasets::item();
    dataset.run_dve_default();
    let m = dataset.domain_set.len();
    let n = dataset.len();
    let population = WorkerPopulation::generate(&PopulationConfig {
        m,
        size: 60,
        seed: 0x57AB,
        ..Default::default()
    });
    let mut rng = SmallRng::seed_from_u64(0x57AB1E);

    println!(
        "dataset {} ({n} tasks, {m} domains), 60 simulated workers\n",
        dataset.name
    );

    // ── Round-based collection: one answer per task per round, with the
    //    stopping policy deciding which tasks keep collecting.
    // Stricter than the library default: without golden initialization the
    // early quality estimates are uninformed, so demand ~99% confidence and
    // at least half the uniform budget before releasing a task.
    let policy = StoppingPolicy {
        rule: docs_core::ti::StoppingRule::EntropyBelow(0.06),
        min_answers: 5,
        max_answers: 10,
    };
    let mut engine = IncrementalTi::new(dataset.tasks.clone(), WorkerRegistry::new(m, 0.7), 100);
    let mut tracker = TruthFlipTracker::new(0.02, 2);
    let mut curve = Vec::new();
    let mut online_stable: Option<usize> = None;

    for round in 1..=policy.max_answers {
        for i in 0..n {
            let tid = TaskId::from(i);
            if policy.should_stop(engine.state(tid), engine.log().answer_count(tid)) {
                continue;
            }
            // A random worker who has not answered this task yet.
            let worker = loop {
                let w = WorkerId::from(rng.gen_range(0..population.len()));
                if !engine.log().has_answered(w, tid) {
                    break w;
                }
            };
            let choice = population.worker(worker).answer(
                &dataset.tasks[i],
                AnswerModel::DomainUniform,
                &mut rng,
            );
            engine
                .submit(Answer::new(worker, tid, choice))
                .expect("fresh (worker, task) pair");
        }
        engine.run_full();
        let truths = engine.truths();
        let accuracy = accuracy_of(&truths, &dataset.tasks);
        curve.push((round, accuracy));
        if tracker.checkpoint(truths) && online_stable.is_none() {
            online_stable = Some(round);
        }
        println!(
            "round {round:>2}: answers so far {:>5}, accuracy {:.1}%{}",
            engine.log().len(),
            accuracy * 100.0,
            if online_stable == Some(round) {
                "   <- online stable point (truth flips quiet)"
            } else {
                ""
            }
        );
    }

    let adaptive_answers = engine.log().len();
    let adaptive_accuracy = curve.last().expect("ten rounds ran").1;

    // ── The uniform protocol for comparison: same crowd, 10 answers per
    //    task, no early stopping.
    let mut uniform = IncrementalTi::new(dataset.tasks.clone(), WorkerRegistry::new(m, 0.7), 100);
    let mut rng = SmallRng::seed_from_u64(0x57AB1E);
    for _ in 0..10 {
        for i in 0..n {
            let tid = TaskId::from(i);
            let worker = loop {
                let w = WorkerId::from(rng.gen_range(0..population.len()));
                if !uniform.log().has_answered(w, tid) {
                    break w;
                }
            };
            let choice = population.worker(worker).answer(
                &dataset.tasks[i],
                AnswerModel::DomainUniform,
                &mut rng,
            );
            uniform.submit(Answer::new(worker, tid, choice)).unwrap();
        }
    }
    uniform.run_full();
    let uniform_accuracy = accuracy_of(&uniform.truths(), &dataset.tasks);
    let uniform_answers = uniform.log().len();

    println!("\n── summary ──");
    println!(
        "uniform 10/task : {uniform_answers} answers, accuracy {:.1}%",
        uniform_accuracy * 100.0
    );
    println!(
        "adaptive policy : {adaptive_answers} answers, accuracy {:.1}%  (saved {} answers = ${:.2} at $0.005/answer)",
        adaptive_accuracy * 100.0,
        uniform_answers - adaptive_answers,
        (uniform_answers - adaptive_answers) as f64 * 0.005,
    );
    println!(
        "offline stable point (accuracy curve, tol 1pp): {:?} answers/task",
        stable_point_of_curve(&curve, 0.01)
    );
    println!("online stable point (truth-flip tracker)      : {online_stable:?} answers/task");
    println!(
        "per-round truth-flip fractions                : {:?}",
        tracker
            .flip_history
            .iter()
            .map(|f| (f * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );
    // On this deliberately mediocre crowd the flip rate never falls under
    // the 2% threshold — the online detector correctly refuses to declare
    // stability while the offline curve already plateaued within 1pp. That
    // gap (truths still churn even when *aggregate* accuracy is flat) is
    // exactly why the stable-point question the paper defers is nontrivial.
}
