//! Worker-quality maintenance across requesters (Section 4.2, Theorem 1).
//!
//! ```text
//! cargo run --release --example persistent_requesters
//! ```
//!
//! Two requesters publish batches to the same DOCS deployment, backed by
//! the WAL-based parameter database. Workers profiled during the first
//! campaign are recognized when they return for the second: no golden HIT
//! again, and their merged quality statistics (Theorem 1) seed inference
//! immediately.

use docs_crowd::WorkerPopulation;
use docs_datasets::pools::domains::{FOOD, SPORTS};
use docs_system::{run_campaign, DocsConfig};
use docs_types::TaskBuilder;

fn sports_tasks(n: usize) -> Vec<docs_types::Task> {
    let players = ["Kobe Bryant", "Stephen Curry", "Tim Duncan", "James Harden"];
    (0..n)
        .map(|i| {
            TaskBuilder::new(i, format!("Is {} a championship winner?", players[i % 4]))
                .yes_no()
                .with_ground_truth(i % 2)
                .with_true_domain(SPORTS)
                .build()
                .unwrap()
        })
        .collect()
}

fn food_tasks(n: usize) -> Vec<docs_types::Task> {
    let foods = ["Chocolate", "Avocado", "Salmon", "Lentils"];
    (0..n)
        .map(|i| {
            TaskBuilder::new(
                i,
                format!("Does {} contain more calories than Honey?", foods[i % 4]),
            )
            .yes_no()
            .with_ground_truth(i % 2)
            .with_true_domain(FOOD)
            .build()
            .unwrap()
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("docs-example-params-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let kb = docs_datasets::curated_kb();
    // One shared crowd: sports experts are food novices and vice versa.
    let population = WorkerPopulation::from_qualities(
        (0..16)
            .map(|i| {
                let mut q = vec![0.6; 26];
                if i % 2 == 0 {
                    q[SPORTS] = 0.93;
                    q[FOOD] = 0.55;
                } else {
                    q[SPORTS] = 0.55;
                    q[FOOD] = 0.93;
                }
                q
            })
            .collect(),
    );

    let config = DocsConfig {
        num_golden: 4,
        k_per_hit: 4,
        answers_per_task: 6,
        storage_dir: Some(dir.clone()),
        ..Default::default()
    };

    println!("requester 1: 40 sports tasks");
    let r1 = run_campaign(&kb, sports_tasks(40), &population, config.clone(), 1)?;
    println!(
        "  accuracy {:.1}% from {} answers ({} workers profiled)\n",
        100.0 * r1.accuracy,
        r1.answers_collected,
        r1.workers_used
    );

    println!("requester 2: 40 food tasks — same platform, same worker pool");
    let r2 = run_campaign(&kb, food_tasks(40), &population, config, 2)?;
    println!(
        "  accuracy {:.1}% from {} answers ({} workers participated)",
        100.0 * r2.accuracy,
        r2.answers_collected,
        r2.workers_used
    );

    // Show what the parameter database now knows.
    let store = docs_storage::ParamStore::open(&dir)?;
    let workers = store.worker_ids();
    println!(
        "\nparameter database: {} workers on file at {}",
        workers.len(),
        dir.display()
    );
    for w in workers.iter().take(4) {
        let stats: docs_core::ti::WorkerStats = store.get_worker(*w)?.expect("stored");
        println!(
            "  {w}: sports q={:.2} (u={:.1})  food q={:.2} (u={:.1})",
            stats.quality[SPORTS], stats.weight[SPORTS], stats.quality[FOOD], stats.weight[FOOD],
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
