//! Cluster migration demo: two primary nodes, one hot campaign, and a
//! live migration out from under the traffic — with zero lost acks.
//!
//! ```text
//! cargo run --release --example cluster_migration
//! ```
//!
//! The run asserts (and CI relies on) three things:
//! 1. every submission the driver makes through the [`ClusterRouter`] is
//!    acknowledged exactly once — `WrongNode` redirects during the fence
//!    window are absorbed and retried, never surfaced,
//! 2. the finished report is byte-identical to a single-node oracle that
//!    replayed the same operation stream uninterrupted, and
//! 3. the directory flip converges: after the new map is installed the
//!    router sends writes straight to the new owner.

use docs_replication::{migrate_campaign, replication_channel, MigrationSource, ReplicationHub};
use docs_service::{
    AdaptiveCommit, ClusterNode, ClusterRouter, DocsService, DurabilityConfig, ServiceConfig,
};
use docs_storage::FlushPolicy;
use docs_system::{Docs, DocsConfig, RequesterReport, WorkRequest};
use docs_types::{
    Answer, CampaignId, ChoiceIndex, ClusterMap, NodeId, Task, TaskBuilder, TaskId, WorkerId,
};
use std::time::Duration;

const NUM_TASKS: usize = 24;
const NUM_WORKERS: u32 = 6;

/// One recorded platform operation, replayable against any service.
#[derive(Debug, Clone)]
enum Op {
    Golden(WorkerId, Vec<(TaskId, ChoiceIndex)>),
    Answer(Answer),
}

fn tasks() -> Vec<Task> {
    let subjects = ["Michael Jordan", "Kobe Bryant", "NBA"];
    (0..NUM_TASKS)
        .map(|i| {
            TaskBuilder::new(i, format!("Is {} great? ({i})", subjects[i % 3]))
                .yes_no()
                .with_ground_truth(i % 2)
                .with_true_domain(1)
                .build()
                .unwrap()
        })
        .collect()
}

fn publish(durable_flush: Option<FlushPolicy>) -> Docs {
    Docs::publish(
        &docs_kb::table2_example_kb(),
        tasks(),
        DocsConfig {
            num_golden: 3,
            k_per_hit: 3,
            answers_per_task: 3,
            z: 8, // small period: the migration crosses full-inference runs
            task_shards: 2,
            durable_flush,
            ..Default::default()
        },
    )
    .expect("publish")
}

fn choice_of(worker: WorkerId, task: TaskId) -> ChoiceIndex {
    if worker.0.is_multiple_of(2) {
        task.index() % 2
    } else {
        (task.index() + worker.0 as usize) % 2
    }
}

/// Drives an uninterrupted in-memory campaign, recording every submission;
/// returns the operation stream and the reference report.
fn oracle() -> (Vec<Op>, RequesterReport) {
    let mut docs = publish(None);
    let mut ops = Vec::new();
    let mut idle_rounds = 0;
    while !docs.budget_exhausted() && idle_rounds < 2 {
        let mut progressed = false;
        for w in 0..NUM_WORKERS {
            let w = WorkerId(w);
            match docs.request_tasks(w) {
                WorkRequest::Golden(golden) => {
                    let answers: Vec<_> = golden.iter().map(|&g| (g, choice_of(w, g))).collect();
                    docs.submit_golden(w, &answers).unwrap();
                    ops.push(Op::Golden(w, answers));
                    progressed = true;
                }
                WorkRequest::Tasks(hit) => {
                    for t in hit {
                        let answer = Answer::new(w, t, choice_of(w, t));
                        docs.submit_answer(answer).unwrap();
                        ops.push(Op::Answer(answer));
                        progressed = true;
                    }
                }
                WorkRequest::Done => {}
            }
        }
        idle_rounds = if progressed { 0 } else { idle_rounds + 1 };
    }
    let report = docs.finish().unwrap();
    (ops, report)
}

/// Submits one op through the router; a surfaced rejection is a lost ack.
fn submit_via(router: &ClusterRouter, campaign: CampaignId, op: &Op) {
    match op {
        Op::Golden(w, answers) => router
            .submit_golden_in(campaign, *w, answers.clone())
            .expect("golden submission must be acknowledged"),
        Op::Answer(answer) => router
            .submit_answer_in(campaign, *answer)
            .expect("answer submission must be acknowledged"),
    }
}

fn durable_node(dir: &std::path::Path, node: NodeId) -> ServiceConfig {
    ServiceConfig {
        shards: 2,
        durability: Some(DurabilityConfig {
            dir: dir.to_path_buf(),
            default_flush: FlushPolicy::EveryEvent,
            snapshot_every: 16,
            adaptive: Some(AdaptiveCommit::default()),
        }),
        ..Default::default()
    }
    .with_node(node)
}

fn main() {
    let pid = std::process::id();
    let dir0 = std::env::temp_dir().join(format!("docs-cluster-demo-{pid}-n0"));
    let dir1 = std::env::temp_dir().join(format!("docs-cluster-demo-{pid}-n1"));
    let _ = std::fs::remove_dir_all(&dir0);
    let _ = std::fs::remove_dir_all(&dir1);

    // The oracle: the same op stream against one uninterrupted campaign.
    let (ops, reference) = oracle();

    // ---- Node 0 hosts the campaign; node 1 starts empty. ----
    let (sink, feed) = replication_channel();
    let (service0, handle0) = DocsService::spawn_sharded(
        publish(Some(FlushPolicy::EveryEvent)),
        durable_node(&dir0, NodeId(0)).with_replication(sink),
    );
    let campaign = handle0.default_campaign();
    let hub = ReplicationHub::spawn(feed);
    let (service1, handle1) =
        DocsService::spawn_empty(durable_node(&dir1, NodeId(1))).expect("spawn node 1");

    let router = ClusterRouter::new(
        vec![
            ClusterNode {
                id: NodeId(0),
                primary: handle0.clone(),
                replicas: vec![],
            },
            ClusterNode {
                id: NodeId(1),
                primary: handle1.clone(),
                replicas: vec![],
            },
        ],
        ClusterMap::new(NodeId(0)),
    );

    // First half of the stream lands on node 0, the campaign's birthplace.
    let half = ops.len() / 2;
    for op in &ops[..half] {
        submit_via(&router, campaign, op);
    }

    // Keep the rest flowing from a driver thread while the main thread
    // migrates the campaign out from under it.
    let driver = {
        let router = router.clone();
        let suffix: Vec<Op> = ops[half..].to_vec();
        std::thread::spawn(move || {
            for op in &suffix {
                submit_via(&router, campaign, op);
                std::thread::sleep(Duration::from_micros(300));
            }
        })
    };

    std::thread::sleep(Duration::from_millis(2));
    let outcome = migrate_campaign(
        campaign,
        &MigrationSource {
            handle: &handle0,
            node: NodeId(0),
            dir: &dir0,
            hub: &hub,
        },
        &handle1,
        NodeId(1),
    )
    .expect("live migration");

    // Flip the directory: epoch bump, campaign on node 1, everywhere.
    let mut map = router.map();
    map.assign(campaign, NodeId(1));
    assert!(router.install_map(&map), "router adopts the new epoch");
    handle0
        .install_cluster_map(&map)
        .expect("node 0 adopts map");
    handle1
        .install_cluster_map(&map)
        .expect("node 1 adopts map");

    driver.join().expect("driver thread panicked");

    // Zero lost acks: the post-migration report matches the oracle's bytes.
    let report = router.finish_in(campaign).expect("finish after migration");
    assert_eq!(report.truths, reference.truths, "truths diverged");
    assert_eq!(
        report.truth_distributions, reference.truth_distributions,
        "probabilistic truths diverged"
    );
    assert_eq!(report.answers_collected, reference.answers_collected);

    let stats = router.stats();
    println!(
        "migrated campaign {campaign}: fence window {:.3} ms at watermark {} \
         ({} bootstrap frames, {} streamed events)",
        outcome.fence_window.as_secs_f64() * 1e3,
        outcome.fence_watermark,
        outcome.bootstrap_frames,
        outcome.streamed_events,
    );
    println!(
        "router absorbed {} WrongNode redirects, forwarded {} writes; \
         {} answers collected, accuracy {:.2}",
        stats.wrong_node_redirects,
        stats.forwarded_writes,
        report.answers_collected,
        report.accuracy,
    );
    assert_eq!(
        handle0.metrics().routing().campaigns_fenced,
        1,
        "node 0 fenced the campaign"
    );
    assert_eq!(
        handle1.metrics().routing().migrations_adopted,
        1,
        "node 1 adopted the campaign"
    );

    drop(router);
    drop(handle0);
    service0.join_all();
    hub.join();
    drop(handle1);
    service1.join_all();
    let _ = std::fs::remove_dir_all(&dir0);
    let _ = std::fs::remove_dir_all(&dir1);
    println!("cluster_migration: OK");
}
