//! Truth-inference showdown (the Figure 5 experiment, in miniature).
//!
//! ```text
//! cargo run --release --example truth_inference_showdown
//! ```
//!
//! Regenerates the 4D dataset, simulates the Section 6.1 answer collection
//! (10 workers per task), and runs all six truth-inference methods — MV,
//! ZenCrowd, Dawid-Skene, iCrowd, FaitCrowd, and DOCS — on the *same*
//! answers, printing accuracy and wall time per method.

use docs_baselines::ti::{DawidSkene, FaitCrowd, ICrowd, MajorityVote, TruthMethod, ZenCrowd};
use docs_bench::protocol::prepare;
use docs_core::ti::TruthInference;
use docs_crowd::accuracy_of;
use std::time::Instant;

fn main() {
    println!("preparing 4D: DVE over the knowledge base + simulated answer collection…");
    let prepared = prepare(docs_datasets::four_domain(), 10, 20, 50, 0x5110);
    let tasks = &prepared.dataset.tasks;
    let log = &prepared.log;
    println!(
        "{} tasks, {} answers, {} workers, {} golden tasks\n",
        tasks.len(),
        log.len(),
        log.num_workers(),
        prepared.golden_ids.len()
    );

    let scalar_init = prepared.scalar_init();
    let registry = prepared.docs_registry();

    type Method<'a> = (&'a str, Box<dyn Fn() -> Vec<usize> + 'a>);
    let methods: Vec<Method> = vec![
        ("MV", Box::new(|| MajorityVote.infer(tasks, log))),
        ("ZC", {
            let init = scalar_init.clone();
            Box::new(move || {
                ZenCrowd::default()
                    .with_init(init.clone())
                    .infer(tasks, log)
            })
        }),
        ("DS", {
            let init = scalar_init.clone();
            Box::new(move || {
                DawidSkene::default()
                    .with_init(init.clone())
                    .infer(tasks, log)
            })
        }),
        ("IC", Box::new(|| ICrowd::default().infer(tasks, log))),
        ("FC", {
            let init = scalar_init.clone();
            Box::new(move || {
                FaitCrowd::default()
                    .with_init(init.clone())
                    .infer(tasks, log)
            })
        }),
        ("DOCS", {
            let registry = registry.clone();
            Box::new(move || TruthInference::default().run(tasks, log, &registry).truths)
        }),
    ];

    println!("{:<6} {:>10} {:>12}", "method", "accuracy", "time");
    for (name, run) in methods {
        let t0 = Instant::now();
        let truths = run();
        let dt = t0.elapsed();
        println!(
            "{:<6} {:>9.1}% {:>12.1?}",
            name,
            100.0 * accuracy_of(&truths, tasks),
            dt
        );
    }
}
