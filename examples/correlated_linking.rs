//! Correlation-aware domain vector estimation — the paper's Section 3
//! future work in action.
//!
//! ```text
//! cargo run --release --example correlated_linking
//! ```
//!
//! Section 3.1 assumes entities link to concepts independently and defers
//! "the issues of correlation among concepts" to future work. This example
//! shows what that extension buys on the paper's own ambiguity: "Michael
//! Jordan" next to "NBA" and "Kobe Bryant" should resolve to the basketball
//! player, and a coherence-aware linker exploits exactly that.

use docs_core::dve::{
    self, domain_vector, domain_vector_correlated_exact, domain_vector_correlated_gibbs,
    domain_vector_reranked, rerank_by_coherence, CorrelationConfig,
};
use docs_kb::{table2_example_kb, EntityLinker};

fn print_vector(label: &str, r: &docs_types::DomainVector, domains: &[&str]) {
    let cells: Vec<String> = domains
        .iter()
        .zip(r.as_slice())
        .map(|(d, p)| format!("{d}: {p:.3}"))
        .collect();
    println!("  {label:<28} [{}]", cells.join(", "));
}

fn main() {
    let kb = table2_example_kb();
    let linker = EntityLinker::with_defaults(&kb);
    let domains = ["politics", "sports", "films"];
    let text = "Does Michael Jordan win more NBA championships than Kobe Bryant?";
    println!("task: {text}\n");

    let entities = linker.link(text);
    for e in &entities {
        println!(
            "  mention \"{}\": {} candidates, prior {:?}",
            e.mention,
            e.num_candidates(),
            e.probs
                .iter()
                .map(|p| (p * 100.0).round() / 100.0)
                .collect::<Vec<_>>()
        );
    }
    println!();

    // The paper's independent model (Eq. 1 / Algorithm 1).
    let independent = domain_vector(&entities, domains.len());
    print_vector("independent (Algorithm 1)", &independent, &domains);

    // Exact correlated model at increasing correlation strength λ.
    for lambda in [0.5, 1.0, 2.0] {
        let r = domain_vector_correlated_exact(&entities, domains.len(), lambda, 1 << 20)
            .expect("small linking space");
        print_vector(&format!("correlated exact (λ={lambda})"), &r, &domains);
    }

    // The two polynomial approximations.
    let gibbs = domain_vector_correlated_gibbs(
        &entities,
        domains.len(),
        &CorrelationConfig {
            lambda: 1.0,
            ..Default::default()
        },
    );
    print_vector("correlated Gibbs (λ=1)", &gibbs, &domains);
    let reranked = domain_vector_reranked(&entities, domains.len(), 1.0);
    print_vector("rerank + Algorithm 1 (λ=1)", &reranked, &domains);

    // What the reranking did to the ambiguous mention.
    println!("\ncoherence reranking of \"michael jordan\" (λ=2):");
    let boosted = rerank_by_coherence(&entities, 2.0);
    let mj = entities
        .iter()
        .position(|e| e.mention.contains("michael"))
        .expect("mention detected");
    for (j, (before, after)) in entities[mj]
        .probs
        .iter()
        .zip(&boosted[mj].probs)
        .enumerate()
    {
        println!(
            "  candidate {j} (domains {:?}): {before:.3} -> {after:.3}",
            entities[mj].indicators[j].to_bits()
        );
    }

    // Multi-domain evaluation metrics (the Section 6.2 future work) on the
    // Table 2 task: its true domains are sports AND films.
    println!("\nmulti-domain metrics vs truth {{sports, films}}:");
    let truth = vec![1usize, 2];
    for (label, r) in [("independent", &independent), ("reranked λ=1", &reranked)] {
        let mixture = dve::metrics::truth_mixture(domains.len(), &truth);
        let js = dve::jensen_shannon(r.as_slice(), mixture.as_slice());
        let top2 = dve::top_j_recall(r, &truth, 2);
        let modes = dve::mode_scores(r, &truth, 0.15);
        println!(
            "  {label:<14} JS={js:.4}  top-2 recall={top2:.2}  mode-F1={:.2}",
            modes.f1
        );
    }
}
