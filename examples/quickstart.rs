//! Quickstart: publish a handful of tasks through the full DOCS pipeline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the Figure 1 architecture end to end on the paper's own running
//! example: domain vector estimation against a small knowledge base, golden
//! task selection, online assignment, truth inference, and the final report.

use docs_crowd::WorkerPopulation;
use docs_datasets::pools::domains::SPORTS;
use docs_system::{run_campaign, DocsConfig};
use docs_types::TaskBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A knowledge base. Here: the Table 2 example KB with the three
    //    "Michael Jordan" concepts; real deployments use a large curated KB
    //    (see `docs_datasets::curated_kb`).
    let kb = docs_datasets::curated_kb();

    // 2. The requester's tasks: multiple-choice questions with plain-text
    //    descriptions. Ground truth is evaluation-only — DOCS never reads it
    //    for inference (golden tasks excepted).
    let questions = [
        (
            "Does Michael Jordan win more NBA championships than Kobe Bryant?",
            0,
        ),
        ("Who has more MVP awards: LeBron James or Stephen Curry?", 0),
        ("Is Kevin Durant taller than Chris Paul?", 0),
        ("Has Tim Duncan ever played for the Chicago Bulls?", 1),
        (
            "Did Magic Johnson win a championship with the Los Angeles Lakers?",
            0,
        ),
        ("Is Allen Iverson in the Hall of Fame?", 0),
        (
            "Does Dirk Nowitzki have more championships than Shaquille O'Neal?",
            1,
        ),
        ("Was Larry Bird drafted by the Boston Celtics?", 0),
    ];
    let tasks: Vec<_> = questions
        .iter()
        .enumerate()
        .map(|(i, (text, truth))| {
            TaskBuilder::new(i, *text)
                .yes_no()
                .with_ground_truth(*truth)
                .with_true_domain(SPORTS)
                .build()
                .expect("valid task")
        })
        .collect();

    // 3. A simulated crowd (stand-in for AMT): a couple of NBA experts, a
    //    few average workers, one spammer.
    let population = WorkerPopulation::from_qualities(
        (0..12)
            .map(|i| {
                let mut q = vec![0.6; 26];
                q[SPORTS] = [0.95, 0.9, 0.65, 0.6][i % 4];
                q
            })
            .collect(),
    );

    // 4. Run the campaign: DVE → golden selection → OTA/TI loop → report.
    let config = DocsConfig {
        num_golden: 2,
        k_per_hit: 3,
        answers_per_task: 5,
        ..Default::default()
    };
    let report = run_campaign(&kb, tasks.clone(), &population, config, 42)?;

    println!(
        "collected {} answers from {} workers",
        report.answers_collected, report.workers_used
    );
    for (task, &truth) in tasks.iter().zip(&report.truths) {
        println!(
            "[{}] {}  →  {}",
            if Some(truth) == task.ground_truth {
                "ok "
            } else {
                "MISS"
            },
            task.text,
            task.choices[truth],
        );
    }
    println!("accuracy: {:.1}%", 100.0 * report.accuracy);
    Ok(())
}
