//! Automating the latent-topic count the paper's baselines hand-tune.
//!
//! ```text
//! cargo run --release --example topic_model_selection
//! ```
//!
//! The paper faults iCrowd and FaitCrowd because they "manually set the
//! number of latent domains" (m′ = m″ = 4 is chosen *because the evaluator
//! knows* the datasets have 4 domains). This example runs the standard
//! data-driven alternative — BIC-penalized model selection over candidate
//! K — on the Item and 4D corpora, and shows *why* the KB approach wins
//! regardless: even a well-chosen K yields latent topics that need manual
//! interpretation, while DVE's domains are explicit.

use docs_topics::{Lda, LdaConfig, Vocabulary};

fn run_dataset(name: &str, texts: &[String], true_domains: usize) {
    println!(
        "── {name} ({} tasks, {true_domains} true domains)",
        texts.len()
    );
    let lda = Lda::new(LdaConfig {
        num_topics: 4, // base config; K is swept by select_num_topics
        ..Default::default()
    });
    let candidates = [2usize, 3, 4, 6, 8, 12];
    let (k, scores) = lda.select_num_topics(texts, &candidates, 2);
    for (cand, score) in &scores {
        println!(
            "  K = {cand:<3} BIC score = {score:>12.1}{}",
            if *cand == k { "   <- selected" } else { "" }
        );
    }

    // Fit the winner and show what the latent topics look like — the
    // interpretability gap the paper's Figure 3 discussion points at.
    let (vocab, docs) = Vocabulary::encode_corpus(texts);
    let model = Lda::new(LdaConfig {
        num_topics: k,
        ..Default::default()
    })
    .fit(&docs, vocab.len().max(1));
    println!(
        "  fitted K = {k}: perplexity {:.1} (V = {})",
        model.perplexity(),
        vocab.len()
    );
    for topic in 0..k.min(4) {
        let words: Vec<&str> = model
            .top_words(topic, 5)
            .into_iter()
            .map(|w| vocab.word(w))
            .collect();
        println!("  latent topic {topic}: {}", words.join(", "));
    }
    println!();
}

fn main() {
    let item = docs_datasets::item();
    run_dataset("Item", &item.texts(), 4);

    let four_d = docs_datasets::four_domain();
    run_dataset("4D", &four_d.texts(), 4);

    println!(
        "note: on these short-text corpora BIC under-segments (K = 2 < 4\n\
         true domains) — data-driven selection does NOT recover the domain\n\
         structure the paper hands IC/FC for free (m' = m'' = 4). And even\n\
         at the right K, latent topics need a human to map them onto real\n\
         domains; DVE's knowledge-base domains are explicit and need no\n\
         mapping. Both gaps are the paper's Figure 3 argument, quantified."
    );
}
