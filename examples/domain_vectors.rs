//! Domain Vector Estimation walk-through (Section 3).
//!
//! ```text
//! cargo run --release --example domain_vectors
//! ```
//!
//! Reproduces Table 2 and Figure 2: links the paper's example task against
//! the example knowledge base, prints each detected entity's candidate
//! distribution, and computes the domain vector with both Algorithm 1 and
//! the exponential enumeration — showing they agree and how their costs
//! diverge as candidates grow.

use docs_core::dve::{domain_vector, domain_vector_enumeration};
use docs_kb::generator::synthetic_entities;
use docs_kb::{table2_example_kb, EntityLinker};
use std::time::Instant;

fn main() {
    let kb = table2_example_kb();
    let linker = EntityLinker::with_defaults(&kb);
    let text = "Does Michael Jordan win more NBA championships than Kobe Bryant?";
    println!("task: {text}\n");

    // Step 1: entities, concepts, and indicator vectors (Table 2).
    let entities = linker.link(text);
    for e in &entities {
        println!("entity: {}", e.mention);
        for (j, &cid) in e.candidates.iter().enumerate() {
            let concept = kb.concept(cid);
            println!(
                "  p = {:.2}  h = {:?}  {}",
                e.probs[j],
                concept.domains.to_bits(),
                concept.name
            );
        }
    }

    // Step 2: the domain vector (Figure 2 computes r_2 = 0.78).
    let m = kb.num_domains();
    let r = domain_vector(&entities, m);
    println!("\ndomain vector over {:?}:", kb.domain_set().names());
    println!(
        "  r = [{}]",
        r.as_slice()
            .iter()
            .map(|x| format!("{x:.2}"))
            .collect::<Vec<_>>()
            .join(", ")
    );

    let slow = domain_vector_enumeration(&entities, m, 1 << 30).expect("small instance");
    assert!((r[1] - slow[1]).abs() < 1e-12, "both algorithms agree");
    println!("  (enumeration agrees exactly)");

    // The complexity story: grow |E_t| with 20 candidates each and watch
    // enumeration fall off a cliff while Algorithm 1 stays polynomial.
    println!("\n|E_t| sweep with c = 20 candidates per entity:");
    println!("{:<8} {:>14} {:>18}", "|E_t|", "Algorithm 1", "Enumeration");
    for num_entities in [2usize, 3, 4, 5, 6] {
        let es = synthetic_entities(26, num_entities, 20, 2, 7);
        let t0 = Instant::now();
        let _ = domain_vector(&es, 26);
        let fast = t0.elapsed();
        let t0 = Instant::now();
        let slow = domain_vector_enumeration(&es, 26, 2_000_000);
        let slow_str = match slow {
            Some(_) => format!("{:.1?}", t0.elapsed()),
            None => "> 2M linkings".to_string(),
        };
        println!(
            "{:<8} {:>14} {:>18}",
            num_entities,
            format!("{fast:.1?}"),
            slow_str
        );
    }
}
