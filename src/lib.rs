//! Workspace umbrella crate: re-exports for examples and integration tests.
pub use docs_baselines as baselines;
pub use docs_core as core;
pub use docs_crowd as crowd;
pub use docs_datasets as datasets;
pub use docs_kb as kb;
pub use docs_service as service;
pub use docs_storage as storage;
pub use docs_system as system;
pub use docs_topics as topics;
pub use docs_types as types;
