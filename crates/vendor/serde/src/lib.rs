//! Offline stand-in for the `serde` facade used by this workspace.
//!
//! Instead of serde's visitor-based zero-copy data model, this crate uses a
//! plain owned [`Value`] tree: `Serialize` renders a type into a `Value`,
//! `Deserialize` rebuilds it from one, and `serde_json` (the sibling stub)
//! converts `Value` to and from JSON text. The `#[derive(Serialize,
//! Deserialize)]` macros come from the in-tree `serde_derive` proc-macro and
//! cover the struct shapes this workspace declares (named-field structs,
//! newtype and tuple structs).

use std::collections::HashMap;
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing intermediate representation.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also the stand-in for absent struct fields).
    Null,
    /// Boolean.
    Bool(bool),
    /// Non-negative integer.
    UInt(u64),
    /// Negative integer (positive ones parse as [`Value::UInt`]).
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Value>),
    /// Key-ordered map with string keys (struct fields, hash maps).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// Numeric view accepting any integer or float value.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::UInt(v) => Some(v as f64),
            Value::Int(v) => Some(v as f64),
            Value::Float(v) => Some(v),
            _ => None,
        }
    }

    /// Unsigned-integer view (floats with zero fraction are accepted).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(v) => Some(v),
            Value::Int(v) if v >= 0 => Some(v as u64),
            Value::Float(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            _ => None,
        }
    }

    /// Signed-integer view.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::UInt(v) if v <= i64::MAX as u64 => Some(v as i64),
            Value::Int(v) => Some(v),
            Value::Float(v) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => Some(v as i64),
            _ => None,
        }
    }

    /// One-word description of the value's shape, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Looks up a struct field / map entry by key.
pub fn map_get<'v>(entries: &'v [(String, Value)], key: &str) -> Option<&'v Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// "expected X, found Y"-style constructor.
    pub fn expected(what: &str, found: &Value) -> Self {
        DeError(format!("expected {what}, found {}", found.kind()))
    }

    /// Prefixes the error with the field it occurred in.
    pub fn in_field(self, field: &str) -> Self {
        DeError(format!("field `{field}`: {}", self.0))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Renders `self` into the intermediate [`Value`].
pub trait Serialize {
    /// The value tree for this object.
    fn to_value(&self) -> Value;
}

/// Rebuilds `Self` from the intermediate [`Value`].
pub trait Deserialize: Sized {
    /// Parses the value tree, reporting shape mismatches as [`DeError`].
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// The `serde::de` items this workspace imports.
pub mod de {
    /// Owned deserialization — with this crate's owned [`super::Value`]
    /// model, every `Deserialize` type qualifies.
    pub trait DeserializeOwned: super::Deserialize {}
    impl<T: super::Deserialize> DeserializeOwned for T {}
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = v.as_u64().ok_or_else(|| DeError::expected("unsigned integer", v))?;
                <$t>::try_from(raw).map_err(|_| DeError(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self >= 0 { Value::UInt(*self as u64) } else { Value::Int(*self as i64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = v.as_i64().ok_or_else(|| DeError::expected("integer", v))?;
                <$t>::try_from(raw).map_err(|_| DeError(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Float(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                v.as_f64().map(|f| f as $t).ok_or_else(|| DeError::expected("number", v))
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for std::path::PathBuf {
    fn to_value(&self) -> Value {
        // Lossy for non-UTF-8 paths; the workspace only builds paths from
        // UTF-8 strings.
        Value::Str(self.to_string_lossy().into_owned())
    }
}

impl Deserialize for std::path::PathBuf {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(std::path::PathBuf::from(s)),
            _ => Err(DeError::expected("path string", v)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError::expected("sequence", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($($name:ident : $idx:tt),+ ; $len:literal) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let seq = v.as_seq().ok_or_else(|| DeError::expected("sequence", v))?;
                if seq.len() != $len {
                    return Err(DeError(format!("expected {}-tuple, found {} elements", $len, seq.len())));
                }
                Ok(($($name::from_value(&seq[$idx])?,)+))
            }
        }
    };
}
impl_tuple!(A:0 ; 1);
impl_tuple!(A:0, B:1 ; 2);
impl_tuple!(A:0, B:1, C:2 ; 3);

/// Renders a map key: scalar values become their string form.
fn key_to_string(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        Value::UInt(n) => n.to_string(),
        Value::Int(n) => n.to_string(),
        Value::Float(f) => format!("{f:?}"),
        Value::Bool(b) => b.to_string(),
        other => panic!("unsupported map key shape: {}", other.kind()),
    }
}

/// Parses a map key back into the scalar [`Value`] it most plausibly was.
fn key_from_string(s: &str) -> Value {
    if let Ok(n) = s.parse::<u64>() {
        Value::UInt(n)
    } else if let Ok(n) = s.parse::<i64>() {
        Value::Int(n)
    } else {
        Value::Str(s.to_string())
    }
}

impl<K: Serialize + Eq + Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_to_string(&k.to_value()), v.to_value()))
            .collect();
        // Deterministic output: hash maps iterate in arbitrary order.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_map()
            .ok_or_else(|| DeError::expected("map", v))?
            .iter()
            .map(|(k, val)| Ok((K::from_value(&key_from_string(k))?, V::from_value(val)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert!(bool::from_value(&true.to_value()).unwrap());
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<f64> = Some(0.25);
        assert_eq!(Option::<f64>::from_value(&o.to_value()).unwrap(), o);
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        let t = (3u32, 0.5f64);
        assert_eq!(<(u32, f64)>::from_value(&t.to_value()).unwrap(), t);
    }

    #[test]
    fn hashmap_roundtrips_with_integer_keys() {
        let mut m: HashMap<u32, Vec<u8>> = HashMap::new();
        m.insert(3, vec![1, 2]);
        m.insert(11, vec![]);
        let back = HashMap::<u32, Vec<u8>>::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn errors_name_the_mismatch() {
        let err = u32::from_value(&Value::Str("x".into())).unwrap_err();
        assert!(err.to_string().contains("unsigned integer"));
        let err = err.in_field("quality");
        assert!(err.to_string().contains("quality"));
    }
}
