//! Offline stand-in for the `bytes` crate subset this workspace uses:
//! [`BytesMut`] as a growable write buffer (via [`BufMut`]) and [`Buf`] as a
//! little-endian cursor over `&[u8]`.

use std::ops::{Deref, DerefMut};

/// Growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }

    /// Empties the buffer, keeping its allocation (group-commit buffers are
    /// reused across flushes).
    pub fn clear(&mut self) {
        self.data.clear();
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

/// Append-style writing.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a `u32` in little-endian order.
    fn put_u32_le(&mut self, v: u32);
    /// Appends a `u64` in little-endian order.
    fn put_u64_le(&mut self, v: u64);
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

/// Cursor-style reading; implemented on `&[u8]`, which advances in place.
///
/// # Panics
/// Like the real crate, reads past the end of the buffer panic.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Skips `n` bytes.
    fn advance(&mut self, n: usize);
    /// Reads one byte.
    fn get_u8(&mut self) -> u8;
    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;
    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        *self = &self[1..];
        v
    }

    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self[..4].try_into().expect("4 bytes"));
        *self = &self[4..];
        v
    }

    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self[..8].try_into().expect("8 bytes"));
        *self = &self[8..];
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrip() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(42);
        buf.put_slice(b"xyz");
        let mut cursor: &[u8] = &buf;
        assert_eq!(cursor.remaining(), 16);
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u64_le(), 42);
        assert_eq!(cursor, b"xyz");
        cursor.advance(3);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn temporaries_can_read_without_consuming() {
        let data = [1u8, 0, 0, 0, 9, 9];
        let first = (&data[0..4]).get_u32_le();
        assert_eq!(first, 1);
        assert_eq!(data[4], 9);
    }
}
