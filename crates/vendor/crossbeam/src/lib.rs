//! Offline stand-in for the `crossbeam::channel` subset this workspace
//! uses, implemented over `std::sync::mpsc`. One [`channel::Sender`] type
//! fronts both bounded and unbounded channels (like crossbeam's), and
//! senders are cloneable; receivers are single-consumer, which matches the
//! one-owner-thread-per-channel pattern of the service runtime.

pub mod channel {
    use std::fmt;
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Sender::try_send`]: the channel is either full
    /// (bounded channel at capacity — the message comes back so the caller
    /// can retry or drop it) or disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The bounded channel is at capacity.
        Full(T),
        /// The receiver is gone.
        Disconnected(T),
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "sending on a full channel"),
                TrySendError::Disconnected(_) => {
                    write!(f, "sending on a disconnected channel")
                }
            }
        }
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    pub use std::sync::mpsc::RecvError;
    /// Error returned by [`Receiver::recv_timeout`].
    pub use std::sync::mpsc::RecvTimeoutError;
    /// Error returned by [`Receiver::try_recv`].
    pub use std::sync::mpsc::TryRecvError;

    enum Tx<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Tx<T> {
        fn clone(&self) -> Self {
            match self {
                Tx::Unbounded(tx) => Tx::Unbounded(tx.clone()),
                Tx::Bounded(tx) => Tx::Bounded(tx.clone()),
            }
        }
    }

    /// Sending half of a channel; cheap to clone, safe across threads.
    pub struct Sender<T> {
        tx: Tx<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                tx: self.tx.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking on a full bounded channel.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.tx {
                Tx::Unbounded(tx) => tx.send(value).map_err(|mpsc::SendError(v)| SendError(v)),
                Tx::Bounded(tx) => tx.send(value).map_err(|mpsc::SendError(v)| SendError(v)),
            }
        }

        /// Non-blocking send: fails fast with [`TrySendError::Full`] instead
        /// of parking the caller when a bounded channel is at capacity. On
        /// an unbounded channel this never reports `Full`.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            match &self.tx {
                Tx::Unbounded(tx) => tx
                    .send(value)
                    .map_err(|mpsc::SendError(v)| TrySendError::Disconnected(v)),
                Tx::Bounded(tx) => tx.try_send(value).map_err(|e| match e {
                    mpsc::TrySendError::Full(v) => TrySendError::Full(v),
                    mpsc::TrySendError::Disconnected(v) => TrySendError::Disconnected(v),
                }),
            }
        }
    }

    /// Receiving half of a channel (single consumer).
    pub struct Receiver<T> {
        rx: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks for the next message; errors when every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.rx.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.rx.try_recv()
        }

        /// Blocks for the next message at most `timeout`, distinguishing a
        /// timeout from disconnection.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.rx.recv_timeout(timeout)
        }

        /// Iterator draining the channel until disconnection.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.rx.iter()
        }
    }

    /// Creates a channel with unlimited capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender {
                tx: Tx::Unbounded(tx),
            },
            Receiver { rx },
        )
    }

    /// Creates a channel holding at most `cap` in-flight messages
    /// (`cap = 0` is a rendezvous channel).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (
            Sender {
                tx: Tx::Bounded(tx),
            },
            Receiver { rx },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded};

    #[test]
    fn unbounded_roundtrip_across_threads() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        let t = std::thread::spawn(move || {
            for i in 0..100 {
                tx2.send(i).unwrap();
            }
        });
        for _ in 0..50 {
            tx.send(999).unwrap();
        }
        drop(tx);
        t.join().unwrap();
        assert_eq!(rx.iter().count(), 150);
    }

    #[test]
    fn bounded_one_acts_as_reply_slot() {
        let (tx, rx) = bounded::<&'static str>(1);
        tx.send("reply").unwrap();
        assert_eq!(rx.recv().unwrap(), "reply");
        drop(tx);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn try_send_distinguishes_full_from_disconnected() {
        use super::channel::TrySendError;
        let (tx, rx) = bounded::<u8>(2);
        assert_eq!(tx.try_send(1), Ok(()));
        assert_eq!(tx.try_send(2), Ok(()));
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(tx.try_send(3), Ok(()));
        drop(rx);
        assert_eq!(tx.try_send(4), Err(TrySendError::Disconnected(4)));
        // Unbounded senders never report Full.
        let (tx, rx) = unbounded::<u8>();
        for i in 0..64 {
            assert_eq!(tx.try_send(i), Ok(()));
        }
        drop(rx);
        assert_eq!(tx.try_send(9), Err(TrySendError::Disconnected(9)));
    }

    #[test]
    fn send_after_receiver_drop_fails() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn recv_timeout_distinguishes_timeout_from_disconnect() {
        use super::channel::RecvTimeoutError;
        use std::time::Duration;
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(3).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(3));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }
}
