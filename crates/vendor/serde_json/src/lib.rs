//! JSON text codec for the in-tree serde stand-in: `to_vec` / `from_slice`
//! over [`serde::Value`]. Supports the full JSON grammar (objects, arrays,
//! strings with escapes, numbers, booleans, null); numbers round-trip
//! through Rust's shortest `f64`/`u64`/`i64` representations.

use serde::de::DeserializeOwned;
use serde::{Serialize, Value};
use std::fmt;

/// Encode/decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes a value to JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out)?;
    Ok(out.into_bytes())
}

/// Serializes a value to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Deserializes a value from JSON bytes.
pub fn from_slice<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, Error> {
    let text = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid utf-8: {e}")))?;
    from_str(text)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: DeserializeOwned>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", parser.pos)));
    }
    T::from_value(&value).map_err(|e| Error(e.to_string()))
}

fn write_value(v: &Value, out: &mut String) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error(format!("{f} is not representable in JSON")));
            }
            // `{:?}` is Rust's shortest round-trip float form, always with
            // a decimal point or exponent — valid JSON either way.
            out.push_str(&format!("{f:?}"));
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(format!("invalid utf-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {:?}", other.map(|b| b as char))))
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("bad number".into()))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn roundtrip_map_of_bytes() {
        let mut m: HashMap<String, Vec<u8>> = HashMap::new();
        m.insert("worker/1".into(), vec![1, 255, 0]);
        m.insert("task/2".into(), vec![]);
        let json = to_vec(&m).unwrap();
        let back: HashMap<String, Vec<u8>> = from_slice(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn roundtrip_floats_and_strings() {
        let v = vec![0.1f64, 1.0, -2.5e-3, 1e300];
        let json = to_string(&v).unwrap();
        let back: Vec<f64> = from_str(&json).unwrap();
        assert_eq!(back, v);
        let s = "line\n\"quoted\"\\slash\tend".to_string();
        let back: String = from_slice(&to_vec(&s).unwrap()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn parses_whitespace_and_nesting() {
        let text = r#" { "a" : [ 1 , 2.5 , null , true ] , "b" : { } } "#;
        let v: serde::Value = {
            let mut p = Parser {
                bytes: text.as_bytes(),
                pos: 0,
            };
            p.skip_ws();
            p.parse_value().unwrap()
        };
        let map = v.as_map().unwrap();
        assert_eq!(map.len(), 2);
        assert_eq!(map[0].1.as_seq().unwrap().len(), 4);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_slice::<Vec<u8>>(b"[1, 2").is_err());
        assert!(from_slice::<Vec<u8>>(b"[1] trailing").is_err());
        assert!(from_slice::<Vec<u8>>(b"nope").is_err());
    }
}
