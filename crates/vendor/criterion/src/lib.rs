//! Offline stand-in for the `criterion` benchmarking surface this workspace
//! uses: `criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`/`bench_with_input`, `BenchmarkId`, and `Bencher::iter`.
//!
//! Measurement is intentionally simple — warm up briefly, time a fixed
//! batch, print mean per-iteration time — enough for `cargo bench` to
//! produce comparable numbers without the statistics machinery of the real
//! crate.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter` id.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{function_name}/{parameter}"),
        }
    }

    /// Id carrying only a parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.text)
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    mean: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs `f` repeatedly and records the mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: one untimed call (also primes caches/allocations).
        black_box(f());
        let started = Instant::now();
        let mut iters: u64 = 0;
        // Measure for ~50ms or 1000 iterations, whichever comes first.
        while started.elapsed() < Duration::from_millis(50) && iters < 1000 {
            black_box(f());
            iters += 1;
        }
        self.iters = iters.max(1);
        self.mean = started.elapsed() / self.iters as u32;
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the stub's batch size is time-bounded.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            mean: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        println!(
            "bench {}/{}: {:>12.2?} per iter ({} iters)",
            self.name, id, b.mean, b.iters
        );
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a group-runner function from a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from one or more group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_reports_nonzero_time() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("test");
        group.sample_size(10).bench_function("spin", |b| {
            b.iter(|| (0..1000u64).sum::<u64>());
        });
        group.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>());
        });
        group.finish();
    }

    criterion_group!(smoke, smoke_bench);
    fn smoke_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        smoke();
    }
}
