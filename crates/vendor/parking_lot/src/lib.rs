//! Offline stand-in for the `parking_lot` locks this workspace uses: the
//! non-poisoning `lock()` API over `std::sync` primitives (a panicked
//! holder's poison flag is stripped, matching parking_lot semantics).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion, `lock()` returning the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poison from panicked holders.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock, non-poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_counts_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(1u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
