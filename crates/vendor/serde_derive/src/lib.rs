//! `#[derive(Serialize, Deserialize)]` for the in-tree serde stand-in.
//!
//! Hand-rolled token parsing (no `syn`/`quote` available offline) covering
//! exactly the shapes this workspace declares: non-generic structs with
//! named fields, newtype structs, and tuple structs. Enums or generic
//! structs panic at compile time with a clear message rather than
//! miscompiling.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of the deriving struct.
enum Shape {
    /// `struct X { a: A, b: B }` — field names in declaration order.
    Named(Vec<String>),
    /// `struct X(A, B, ...);` — number of fields.
    Tuple(usize),
}

struct Input {
    name: String,
    shape: Shape,
}

/// Skips one `#[...]` attribute if the cursor is on one.
fn skip_attr(tokens: &[TokenTree], i: &mut usize) -> bool {
    if let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() == '#' {
            if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
                if g.delimiter() == Delimiter::Bracket {
                    *i += 2;
                    return true;
                }
            }
        }
    }
    false
}

/// Skips `pub`, `pub(crate)`, `pub(in ...)` if present.
fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    while skip_attr(&tokens, &mut i) {}
    skip_visibility(&tokens, &mut i);
    match tokens.get(i) {
        Some(TokenTree::Ident(kw)) if kw.to_string() == "struct" => i += 1,
        other => panic!("serde stub derive supports only structs, found {other:?}"),
    }
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected struct name, found {other:?}"),
    };
    i += 1;
    match tokens.get(i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("serde stub derive does not support generic structs ({name})")
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Input {
            name,
            shape: Shape::Named(parse_named_fields(g.stream())),
        },
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Input {
            name,
            shape: Shape::Tuple(count_tuple_fields(g.stream())),
        },
        other => panic!("unsupported struct body for {name}: {other:?}"),
    }
}

/// Collects field names from `a: A, b: B, ...`, tracking `<...>` depth so
/// commas inside generic types (e.g. `HashMap<K, V>`) don't split fields.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while skip_attr(&tokens, &mut i) {}
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        let field = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("expected field name, found {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field `{field}`, found {other:?}"),
        }
        let mut angle_depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        fields.push(field);
    }
    fields
}

/// Counts top-level comma-separated entries of a tuple-struct body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut saw_trailing_comma = false;
    for (idx, tok) in tokens.iter().enumerate() {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    if idx == tokens.len() - 1 {
                        saw_trailing_comma = true;
                    } else {
                        count += 1;
                    }
                }
                _ => {}
            }
        }
    }
    let _ = saw_trailing_comma;
    count
}

/// `#[derive(Serialize)]` — renders the struct into `serde::Value`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),"))
                .collect();
            format!("::serde::Value::Map(vec![{}])", entries.join(""))
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(""))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// `#[derive(Deserialize)]` — rebuilds the struct from `serde::Value`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                             ::serde::map_get(__map, \"{f}\")\
                                 .unwrap_or(&::serde::Value::Null))\
                             .map_err(|e| e.in_field(\"{f}\"))?,"
                    )
                })
                .collect();
            format!(
                "let __map = v.as_map()\
                     .ok_or_else(|| ::serde::DeError::expected(\"map for {name}\", v))?;\n\
                 Ok({name} {{ {} }})",
                inits.join("")
            )
        }
        Shape::Tuple(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__seq[{i}])?,"))
                .collect();
            format!(
                "let __seq = v.as_seq()\
                     .ok_or_else(|| ::serde::DeError::expected(\"sequence for {name}\", v))?;\n\
                 if __seq.len() != {n} {{\n\
                     return Err(::serde::DeError(format!(\
                         \"expected {n} elements for {name}, found {{}}\", __seq.len())));\n\
                 }}\n\
                 Ok({name}({}))",
                items.join("")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}
