//! `#[derive(Serialize, Deserialize)]` for the in-tree serde stand-in.
//!
//! Hand-rolled token parsing (no `syn`/`quote` available offline) covering
//! exactly the shapes this workspace declares: non-generic structs with
//! named fields, newtype structs, tuple structs, and non-generic enums
//! (unit, newtype, tuple, and named-field variants, encoded externally
//! tagged exactly like real serde). Generic types panic at compile time
//! with a clear message rather than miscompiling.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of the deriving struct.
enum Shape {
    /// `struct X { a: A, b: B }` — field names in declaration order.
    Named(Vec<String>),
    /// `struct X(A, B, ...);` — number of fields.
    Tuple(usize),
    /// `enum X { ... }` — variants in declaration order.
    Enum(Vec<(String, VariantShape)>),
}

/// The data carried by one enum variant.
enum VariantShape {
    /// `Variant` — no payload; encoded as the bare string `"Variant"`.
    Unit,
    /// `Variant(T)` — encoded as `{"Variant": <T>}`.
    Newtype,
    /// `Variant(A, B, ...)` — encoded as `{"Variant": [<A>, <B>, ...]}`.
    Tuple(usize),
    /// `Variant { a: A, ... }` — encoded as `{"Variant": {"a": ..., ...}}`.
    Named(Vec<String>),
}

struct Input {
    name: String,
    shape: Shape,
}

/// Skips one `#[...]` attribute if the cursor is on one.
fn skip_attr(tokens: &[TokenTree], i: &mut usize) -> bool {
    if let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() == '#' {
            if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
                if g.delimiter() == Delimiter::Bracket {
                    *i += 2;
                    return true;
                }
            }
        }
    }
    false
}

/// Skips `pub`, `pub(crate)`, `pub(in ...)` if present.
fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    while skip_attr(&tokens, &mut i) {}
    skip_visibility(&tokens, &mut i);
    let is_enum = match tokens.get(i) {
        Some(TokenTree::Ident(kw)) if kw.to_string() == "struct" => {
            i += 1;
            false
        }
        Some(TokenTree::Ident(kw)) if kw.to_string() == "enum" => {
            i += 1;
            true
        }
        other => panic!("serde stub derive supports only structs and enums, found {other:?}"),
    };
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, found {other:?}"),
    };
    i += 1;
    match tokens.get(i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("serde stub derive does not support generic types ({name})")
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Input {
            shape: if is_enum {
                Shape::Enum(parse_variants(g.stream(), &name))
            } else {
                Shape::Named(parse_named_fields(g.stream()))
            },
            name,
        },
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis && !is_enum => Input {
            name,
            shape: Shape::Tuple(count_tuple_fields(g.stream())),
        },
        other => panic!("unsupported body for {name}: {other:?}"),
    }
}

/// Parses `Variant`, `Variant(T, ...)`, and `Variant { a: A, ... }` entries
/// of an enum body.
fn parse_variants(stream: TokenStream, enum_name: &str) -> Vec<(String, VariantShape)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while skip_attr(&tokens, &mut i) {}
        if i >= tokens.len() {
            break;
        }
        let variant = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("expected variant name in {enum_name}, found {other:?}"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                match count_tuple_fields(g.stream()) {
                    1 => VariantShape::Newtype,
                    n => VariantShape::Tuple(n),
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Named(parse_named_fields(g.stream()))
            }
            _ => VariantShape::Unit,
        };
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                panic!("serde stub derive does not support explicit discriminants ({enum_name}::{variant})")
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            None => {}
            other => panic!("expected `,` after {enum_name}::{variant}, found {other:?}"),
        }
        variants.push((variant, shape));
    }
    variants
}

/// Collects field names from `a: A, b: B, ...`, tracking `<...>` depth so
/// commas inside generic types (e.g. `HashMap<K, V>`) don't split fields.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while skip_attr(&tokens, &mut i) {}
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        let field = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("expected field name, found {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field `{field}`, found {other:?}"),
        }
        let mut angle_depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        fields.push(field);
    }
    fields
}

/// Counts top-level comma-separated entries of a tuple-struct body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut saw_trailing_comma = false;
    for (idx, tok) in tokens.iter().enumerate() {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    if idx == tokens.len() - 1 {
                        saw_trailing_comma = true;
                    } else {
                        count += 1;
                    }
                }
                _ => {}
            }
        }
    }
    let _ = saw_trailing_comma;
    count
}

/// `#[derive(Serialize)]` — renders the struct into `serde::Value`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),"))
                .collect();
            format!("::serde::Value::Map(vec![{}])", entries.join(""))
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(""))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, shape)| match shape {
                    VariantShape::Unit => {
                        format!("{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),")
                    }
                    VariantShape::Newtype => format!(
                        "{name}::{v}(__f0) => ::serde::Value::Map(vec![(\"{v}\".to_string(), \
                             ::serde::Serialize::to_value(__f0))]),"
                    ),
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_value(__f{i}),"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Map(vec![(\"{v}\".to_string(), \
                                 ::serde::Value::Seq(vec![{}]))]),",
                            binds.join(","),
                            items.join("")
                        )
                    }
                    VariantShape::Named(fields) => {
                        let binds = fields.join(",");
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!("(\"{f}\".to_string(), ::serde::Serialize::to_value({f})),")
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Map(vec![(\
                                 \"{v}\".to_string(), ::serde::Value::Map(vec![{}]))]),",
                            entries.join("")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(""))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// `#[derive(Deserialize)]` — rebuilds the struct from `serde::Value`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(\
                             ::serde::map_get(__map, \"{f}\")\
                                 .unwrap_or(&::serde::Value::Null))\
                             .map_err(|e| e.in_field(\"{f}\"))?,"
                    )
                })
                .collect();
            format!(
                "let __map = v.as_map()\
                     .ok_or_else(|| ::serde::DeError::expected(\"map for {name}\", v))?;\n\
                 Ok({name} {{ {} }})",
                inits.join("")
            )
        }
        Shape::Tuple(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__seq[{i}])?,"))
                .collect();
            format!(
                "let __seq = v.as_seq()\
                     .ok_or_else(|| ::serde::DeError::expected(\"sequence for {name}\", v))?;\n\
                 if __seq.len() != {n} {{\n\
                     return Err(::serde::DeError(format!(\
                         \"expected {n} elements for {name}, found {{}}\", __seq.len())));\n\
                 }}\n\
                 Ok({name}({}))",
                items.join("")
            )
        }
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, shape)| matches!(shape, VariantShape::Unit))
                .map(|(v, _)| format!("\"{v}\" => Ok({name}::{v}),"))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|(v, shape)| match shape {
                    VariantShape::Unit => None,
                    VariantShape::Newtype => Some(format!(
                        "\"{v}\" => Ok({name}::{v}(::serde::Deserialize::from_value(__inner)\
                             .map_err(|e| e.in_field(\"{v}\"))?)),"
                    )),
                    VariantShape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__seq[{i}])\
                                 .map_err(|e| e.in_field(\"{v}\"))?,"))
                            .collect();
                        Some(format!(
                            "\"{v}\" => {{\n\
                                 let __seq = __inner.as_seq().ok_or_else(|| \
                                     ::serde::DeError::expected(\"sequence for {name}::{v}\", __inner))?;\n\
                                 if __seq.len() != {n} {{\n\
                                     return Err(::serde::DeError(format!(\
                                         \"expected {n} elements for {name}::{v}, found {{}}\", __seq.len())));\n\
                                 }}\n\
                                 Ok({name}::{v}({}))\n\
                             }}",
                            items.join("")
                        ))
                    }
                    VariantShape::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(\
                                         ::serde::map_get(__fields, \"{f}\")\
                                             .unwrap_or(&::serde::Value::Null))\
                                         .map_err(|e| e.in_field(\"{f}\"))?,"
                                )
                            })
                            .collect();
                        Some(format!(
                            "\"{v}\" => {{\n\
                                 let __fields = __inner.as_map().ok_or_else(|| \
                                     ::serde::DeError::expected(\"map for {name}::{v}\", __inner))?;\n\
                                 Ok({name}::{v} {{ {} }})\n\
                             }}",
                            inits.join("")
                        ))
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Str(__tag) => match __tag.as_str() {{\n\
                         {unit}\n\
                         __other => Err(::serde::DeError(format!(\
                             \"unknown {name} variant `{{__other}}`\"))),\n\
                     }},\n\
                     ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                         let (__tag, __inner) = &__entries[0];\n\
                         match __tag.as_str() {{\n\
                             {tagged}\n\
                             __other => Err(::serde::DeError(format!(\
                                 \"unknown {name} variant `{{__other}}`\"))),\n\
                         }}\n\
                     }}\n\
                     __other => Err(::serde::DeError::expected(\"{name} variant\", __other)),\n\
                 }}",
                unit = unit_arms.join("\n"),
                tagged = tagged_arms.join("\n"),
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}
