//! Offline stand-in for the `proptest` surface this workspace uses: the
//! `proptest!` macro with `arg in strategy` bindings, range/tuple/collection
//! strategies, `prop_map`, `any::<T>()`, `prop::option::of`, and
//! `ProptestConfig::with_cases`.
//!
//! Inputs are generated from a deterministic per-test stream (seeded from
//! the test's module path and case index), so failures reproduce exactly on
//! re-run. Unlike real proptest there is no shrinking: a failing case
//! reports the assertion with the generated values still available via the
//! panic message's case index.

use rand::rngs::SmallRng;
use rand::{Rng, SampleRange, SeedableRng, Standard};
use std::ops::Range;

/// Per-case random source handed to strategies.
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// Deterministic stream for `(test name, case index)`.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            inner: SmallRng::seed_from_u64(hash ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Uniform draw from a range.
    pub fn sample<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        self.inner.gen_range(range)
    }

    /// Standard-distribution draw.
    pub fn sample_standard<T: Standard>(&mut self) -> T {
        self.inner.gen()
    }
}

/// Generates values of `Self::Value` for one test case.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the generated value through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.sample(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.sample(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A:0);
tuple_strategy!(A:0, B:1);
tuple_strategy!(A:0, B:1, C:2);
tuple_strategy!(A:0, B:1, C:2, D:3);

/// `any::<T>()` — the standard distribution of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

/// Creates the [`Any`] strategy for `T`.
pub fn any<T: Standard>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl Strategy for Any<u8> {
    type Value = u8;
    fn generate(&self, rng: &mut TestRng) -> u8 {
        (rng.sample_standard::<u64>() & 0xFF) as u8
    }
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.sample_standard()
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.sample_standard()
    }
}

impl Strategy for Any<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        rng.sample_standard()
    }
}

/// Inclusive bounds on a generated collection's length.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Minimum length.
    pub min: usize,
    /// Maximum length (inclusive).
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.sample(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies (`prop::option`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy yielding `Some` half the time.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `prop::option::of(strategy)`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.sample_standard::<bool>() {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

/// Runner configuration (only the case count is honored).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Assertion inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// The property-test declaration macro: each `fn name(arg in strategy, ...)`
/// becomes a `#[test]` that runs the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cases = { $cfg }.cases;
                for __case in 0..__cases {
                    let mut __rng = $crate::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case as u64,
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

/// Everything a property-test file imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestRng,
    };

    /// The `prop::` namespace (`prop::collection`, `prop::option`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_streams() {
        let mut a = TestRng::for_case("x", 3);
        let mut b = TestRng::for_case("x", 3);
        assert_eq!(a.sample(0usize..100), b.sample(0usize..100));
        let mut c = TestRng::for_case("x", 4);
        let _ = c.sample(0usize..100);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..17, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_and_tuple_and_map(
            v in prop::collection::vec((0u8..4, 0.0f64..1.0), 2..=5),
            o in prop::option::of(0usize..9),
            mapped in (0u32..10).prop_map(|x| x * 2),
        ) {
            prop_assert!((2..=5).contains(&v.len()));
            for (b, f) in &v {
                prop_assert!(*b < 4 && (0.0..1.0).contains(f));
            }
            if let Some(x) = o {
                prop_assert!(x < 9);
            }
            prop_assert!(mapped % 2 == 0 && mapped < 20);
        }
    }
}
