//! Offline stand-in for the subset of the `rand` 0.8 API used by this
//! workspace: `SmallRng`, `SeedableRng::seed_from_u64`, `Rng::{gen,
//! gen_range, gen_bool}`, and `seq::SliceRandom::{shuffle, choose}`.
//!
//! The build environment has no access to crates.io, so the workspace pins
//! this path crate instead of the registry package. The generator is
//! xoshiro256++ seeded through SplitMix64 — statistically solid for
//! simulation workloads, deterministic per seed, and *not* stream-compatible
//! with the real `rand` crate (seeded experiments reproduce within this
//! workspace only).

use std::ops::{Range, RangeInclusive};

/// Random number generator: the single core primitive every helper builds on.
pub trait Rng {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` with 53 random mantissa bits.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Samples a value uniformly from `range`. Panics on empty ranges.
    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Samples from the "standard" distribution of `T` (uniform `[0,1)` for
    /// floats, uniform bits for integers, fair coin for `bool`).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Bernoulli draw with success probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.next_f64() < p
    }
}

/// Types constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                lo + (rng.next_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
float_sample_range!(f32, f64);

/// The "standard" distribution marker (the `Standard`/`StandardUniform`
/// distribution of real `rand`, folded into one trait).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: Rng>(rng: &mut R) -> f64 {
        rng.next_f64()
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: Rng>(rng: &mut R) -> f32 {
        rng.next_f64() as f32
    }
}

impl Standard for u64 {
    #[inline]
    fn sample_standard<R: Rng>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample_standard<R: Rng>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u16 {
    #[inline]
    fn sample_standard<R: Rng>(rng: &mut R) -> u16 {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    #[inline]
    fn sample_standard<R: Rng>(rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: Rng>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Slice sampling helpers (the `rand::seq::SliceRandom` subset).
pub mod seq {
    use super::Rng;

    /// Shuffling and choosing on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(0u8..=4);
            assert!(i <= 4);
        }
    }

    #[test]
    fn uniformity_is_rough_but_sane() {
        let mut rng = SmallRng::seed_from_u64(42);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "bucket count {c}");
        }
        let mean: f64 = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
