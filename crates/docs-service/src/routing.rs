//! Read-routing client for a replicated deployment: reads fan out to
//! follower replicas round-robin, writes pin to the primary.
//!
//! The paper's deployment serves every request from one Django backend;
//! with WAL-shipping replication the status/truths/stats read traffic — the
//! kind that dominates a dashboarded crowdsourcing campaign — can be
//! offloaded to followers while the primary keeps exclusive ownership of
//! the mutation path (cf. the HTAP read-path offloading direction in
//! PAPERS.md). A [`ReadRouter`] wraps one primary [`ServiceHandle`] plus
//! any number of replica handles:
//!
//! * **writes** (`request_tasks_in`, `submit_*`, `finish_in`,
//!   `create_campaign`) always go to the primary,
//! * **reads** (`status_in`, `peek_report_in`, `snapshot_state_in`) go to
//!   the next replica in round-robin order, **falling back to the
//!   primary** when a replica is gone, refuses, or simply has not
//!   bootstrapped the campaign yet (its lag shows as `UnknownCampaign`).
//!
//! Replicas serve *their watermark's* state: a read routed to a lagging
//! follower is consistent-but-stale, exactly like any asynchronous read
//! replica. Callers that need read-your-writes read from the primary.

use crate::server::{ServiceError, ServiceHandle};
use docs_system::{CampaignStatus, RequesterReport, WorkRequest};
use docs_types::{Answer, CampaignId, ChoiceIndex, RejectReason, TaskId, WorkerId};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Where the router sent reads so far (observability for tests, examples,
/// and capacity planning).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadRoutingStats {
    /// Reads served by a replica.
    pub replica_reads: u64,
    /// Reads served by the primary (no replicas, or fallback).
    pub primary_reads: u64,
    /// Reads that fell back to the primary after a replica refused or
    /// disconnected.
    pub fallbacks: u64,
}

/// The routing client of a primary + replicas deployment.
#[derive(Clone)]
pub struct ReadRouter {
    primary: ServiceHandle,
    replicas: Arc<Vec<ServiceHandle>>,
    next: Arc<AtomicUsize>,
    replica_reads: Arc<AtomicU64>,
    primary_reads: Arc<AtomicU64>,
    fallbacks: Arc<AtomicU64>,
}

impl ReadRouter {
    /// Routes writes to `primary` and fans reads out across `replicas`
    /// (an empty list degrades to an all-primary router).
    pub fn new(primary: ServiceHandle, replicas: Vec<ServiceHandle>) -> Self {
        ReadRouter {
            primary,
            replicas: Arc::new(replicas),
            next: Arc::new(AtomicUsize::new(0)),
            replica_reads: Arc::new(AtomicU64::new(0)),
            primary_reads: Arc::new(AtomicU64::new(0)),
            fallbacks: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The write-side handle.
    pub fn primary(&self) -> &ServiceHandle {
        &self.primary
    }

    /// The attached replica handles.
    pub fn replicas(&self) -> &[ServiceHandle] {
        &self.replicas
    }

    /// Read-routing accounting so far.
    pub fn stats(&self) -> ReadRoutingStats {
        ReadRoutingStats {
            replica_reads: self.replica_reads.load(Ordering::Relaxed),
            primary_reads: self.primary_reads.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
        }
    }

    /// Whether a replica's refusal warrants retrying on the primary: the
    /// replica is gone, lagging (campaign not bootstrapped yet), or was
    /// promoted/demoted out from under the router.
    fn retry_on_primary(error: &ServiceError) -> bool {
        matches!(
            error,
            ServiceError::Disconnected
                | ServiceError::Busy { .. }
                | ServiceError::Rejected(RejectReason::UnknownCampaign(_))
        )
    }

    /// Runs one read: next replica in round-robin order, primary fallback.
    fn read<T>(
        &self,
        op: impl Fn(&ServiceHandle) -> Result<T, ServiceError>,
    ) -> Result<T, ServiceError> {
        if self.replicas.is_empty() {
            self.primary_reads.fetch_add(1, Ordering::Relaxed);
            return op(&self.primary);
        }
        let pick = self.next.fetch_add(1, Ordering::Relaxed) % self.replicas.len();
        match op(&self.replicas[pick]) {
            Ok(value) => {
                self.replica_reads.fetch_add(1, Ordering::Relaxed);
                Ok(value)
            }
            Err(e) if Self::retry_on_primary(&e) => {
                self.fallbacks.fetch_add(1, Ordering::Relaxed);
                self.primary_reads.fetch_add(1, Ordering::Relaxed);
                op(&self.primary)
            }
            Err(e) => Err(e),
        }
    }

    // ------------------------------------------------------------------
    // Reads: replica-first.
    // ------------------------------------------------------------------

    /// Campaign status, served replica-first.
    pub fn status_in(&self, campaign: CampaignId) -> Result<CampaignStatus, ServiceError> {
        self.read(|h| h.status_in(campaign))
    }

    /// Inferred truths under the current state, served replica-first.
    pub fn peek_report_in(&self, campaign: CampaignId) -> Result<RequesterReport, ServiceError> {
        self.read(|h| h.peek_report_in(campaign))
    }

    /// Serialized campaign state, served replica-first.
    pub fn snapshot_state_in(&self, campaign: CampaignId) -> Result<Vec<u8>, ServiceError> {
        self.read(|h| h.snapshot_state_in(campaign))
    }

    // ------------------------------------------------------------------
    // Writes: primary-pinned.
    // ------------------------------------------------------------------

    /// "A worker comes and requests tasks" — primary only (assignment
    /// reads *and then consumes* budget as answers flow back; a follower
    /// refuses it).
    pub fn request_tasks_in(
        &self,
        campaign: CampaignId,
        worker: WorkerId,
    ) -> Result<WorkRequest, ServiceError> {
        self.primary.request_tasks_in(campaign, worker)
    }

    /// Assignment subscription (push/hybrid dispatch) — primary only:
    /// like polling, a pushed assignment leads to answers that consume the
    /// primary's budget, and a follower refuses the subscribe outright.
    pub fn subscribe_assignments_ticket_in(
        &self,
        campaign: CampaignId,
        worker: WorkerId,
    ) -> Result<crate::Ticket<WorkRequest>, ServiceError> {
        self.primary
            .subscribe_assignments_ticket_in(campaign, worker)
    }

    /// Drops a parked assignment subscription — primary only.
    pub fn unsubscribe_in(
        &self,
        campaign: CampaignId,
        worker: WorkerId,
    ) -> Result<(), ServiceError> {
        self.primary.unsubscribe_in(campaign, worker)
    }

    /// Golden-HIT submission — primary only.
    pub fn submit_golden_in(
        &self,
        campaign: CampaignId,
        worker: WorkerId,
        answers: Vec<(TaskId, ChoiceIndex)>,
    ) -> Result<(), ServiceError> {
        self.primary.submit_golden_in(campaign, worker, answers)
    }

    /// Single-answer submission — primary only.
    pub fn submit_answer_in(
        &self,
        campaign: CampaignId,
        answer: Answer,
    ) -> Result<(), ServiceError> {
        self.primary.submit_answer_in(campaign, answer)
    }

    /// Batched answer submission — primary only.
    pub fn submit_answer_batch_in(
        &self,
        campaign: CampaignId,
        answers: Vec<Answer>,
    ) -> Result<crate::message::BatchOutcome, ServiceError> {
        self.primary.submit_answer_batch_in(campaign, answers)
    }

    /// Finalization (runs inference, logs `Finished`) — primary only.
    pub fn finish_in(&self, campaign: CampaignId) -> Result<RequesterReport, ServiceError> {
        self.primary.finish_in(campaign)
    }
}

impl std::fmt::Debug for ReadRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReadRouter")
            .field("replicas", &self.replicas.len())
            .field("stats", &self.stats())
            .finish()
    }
}
