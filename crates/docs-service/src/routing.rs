//! Cluster routing client: a campaign→node directory with role-aware
//! fan-out — writes go to the owning primary, reads fan out to that node's
//! replicas round-robin, and stale-map redirects retry against the owner
//! the service names.
//!
//! The paper's deployment serves every request from one Django backend;
//! WAL-shipping replication (PR 5) scaled the read path, and the cluster
//! directory scales the write path: campaigns are partitioned across
//! multiple primary nodes, and ownership is a *migratable* fact recorded
//! in a versioned [`ClusterMap`] (see ARCHITECTURE.md, "Cluster &
//! migration"). A [`ClusterRouter`] wraps any number of [`ClusterNode`]s
//! (each a primary [`ServiceHandle`] plus its read replicas):
//!
//! * **writes** (`request_tasks_in`, `submit_*`, `finish_in`) resolve the
//!   campaign's owner through the router's map and go to that node's
//!   primary. A [`RejectReason::WrongNode`] answer means the map is stale
//!   (the campaign was migrated): the router learns the returned owner and
//!   retries there — one retry for a settled directory, a brief
//!   park-and-ping-pong during a migration's fence window (both sides
//!   redirect until the new owner adopts the tail, which is exactly the
//!   "buffer and forward in-flight submissions" phase),
//! * **reads** (`status_in`, `peek_report_in`, `snapshot_state_in`) go to
//!   the owning node's next replica in round-robin order, falling back to
//!   that node's primary when a replica is gone, refuses, or has not
//!   bootstrapped the campaign yet (its lag shows as `UnknownCampaign`).
//!
//! Replicas serve *their watermark's* state: a read routed to a lagging
//! follower is consistent-but-stale, exactly like any asynchronous read
//! replica. Callers that need read-your-writes read from the primary.
//!
//! [`ReadRouter`] — the single-node primary+replicas client from the
//! replication era — survives as a thin wrapper around a one-node
//! [`ClusterRouter`]: same API, same counters, one routing engine.

use crate::server::{ServiceError, ServiceHandle};
use crate::ticket::Ticket;
use docs_system::{CampaignStatus, RequesterReport, WorkRequest};
use docs_types::{
    Answer, CampaignId, ChoiceIndex, ClusterMap, NodeId, RejectReason, TaskId, WorkerId,
};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Redirect budget of one write: generous enough to ride out a
/// migration's whole fence window (each post-first redirect parks ~1 ms,
/// so this is ~10 s of forwarding patience), finite so a routing loop
/// between two confused nodes cannot hang a client forever.
const WRITE_REDIRECT_LIMIT: usize = 10_000;

/// One primary node of the cluster, as the router sees it: the write-side
/// handle plus any read replicas tailing it.
#[derive(Clone)]
pub struct ClusterNode {
    /// The node's cluster identity ([`ServiceConfig::node`] of its pool).
    ///
    /// [`ServiceConfig::node`]: crate::ServiceConfig
    pub id: NodeId,
    /// The node's primary (write-side) handle.
    pub primary: ServiceHandle,
    /// Read replicas tailing this node (may be empty).
    pub replicas: Vec<ServiceHandle>,
}

/// Per-node routing state: the handles plus the node's replica
/// round-robin cursor.
struct NodeEntry {
    node: ClusterNode,
    next_replica: AtomicUsize,
}

/// Where the router sent traffic so far (observability for tests,
/// examples, and capacity planning).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterRouterStats {
    /// Reads served by a replica.
    pub replica_reads: u64,
    /// Reads served by a primary (no replicas, or fallback).
    pub primary_reads: u64,
    /// Reads that fell back to a primary after a replica refused or
    /// disconnected.
    pub fallbacks: u64,
    /// `WrongNode` answers absorbed: the map was stale and the router
    /// re-aimed at the owner the service named.
    pub wrong_node_redirects: u64,
    /// Writes that succeeded after at least one redirect — the forwarded
    /// in-flight submissions of migration fence windows plus ordinary
    /// stale-map retries.
    pub forwarded_writes: u64,
}

impl std::fmt::Display for ClusterRouterStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "reads: {} replica / {} primary ({} fallbacks); \
             writes: {} redirects absorbed, {} forwarded",
            self.replica_reads,
            self.primary_reads,
            self.fallbacks,
            self.wrong_node_redirects,
            self.forwarded_writes
        )
    }
}

/// The routing client of a multi-primary cluster.
#[derive(Clone)]
pub struct ClusterRouter {
    nodes: Arc<Vec<NodeEntry>>,
    map: Arc<Mutex<ClusterMap>>,
    /// Placements learned from `WrongNode` answers — fresher than the map
    /// but not epoch-stamped, so a real [`ClusterRouter::install_map`]
    /// clears them.
    learned: Arc<Mutex<HashMap<CampaignId, NodeId>>>,
    replica_reads: Arc<AtomicU64>,
    primary_reads: Arc<AtomicU64>,
    fallbacks: Arc<AtomicU64>,
    wrong_node_redirects: Arc<AtomicU64>,
    forwarded_writes: Arc<AtomicU64>,
}

impl ClusterRouter {
    /// Routes by `map` across `nodes`.
    ///
    /// # Panics
    /// Panics when `nodes` is empty — a router with nowhere to send
    /// traffic is a construction bug, not a runtime condition.
    pub fn new(nodes: Vec<ClusterNode>, map: ClusterMap) -> Self {
        assert!(!nodes.is_empty(), "cluster router needs at least one node");
        ClusterRouter {
            nodes: Arc::new(
                nodes
                    .into_iter()
                    .map(|node| NodeEntry {
                        node,
                        next_replica: AtomicUsize::new(0),
                    })
                    .collect(),
            ),
            map: Arc::new(Mutex::new(map)),
            learned: Arc::new(Mutex::new(HashMap::new())),
            replica_reads: Arc::new(AtomicU64::new(0)),
            primary_reads: Arc::new(AtomicU64::new(0)),
            fallbacks: Arc::new(AtomicU64::new(0)),
            wrong_node_redirects: Arc::new(AtomicU64::new(0)),
            forwarded_writes: Arc::new(AtomicU64::new(0)),
        }
    }

    /// A one-node cluster: every campaign lives on `primary`, reads fan
    /// out to `replicas` — the [`ReadRouter`] deployment shape.
    pub fn single(id: NodeId, primary: ServiceHandle, replicas: Vec<ServiceHandle>) -> Self {
        Self::new(
            vec![ClusterNode {
                id,
                primary,
                replicas,
            }],
            ClusterMap::new(id),
        )
    }

    /// The routing directory the router currently follows (learned
    /// placements not included — they are transient hints).
    pub fn map(&self) -> ClusterMap {
        self.map.lock().clone()
    }

    /// Adopts a fresher directory (stale epochs are ignored) and drops
    /// every learned placement — the map is authoritative now. Returns
    /// whether the map was adopted.
    pub fn install_map(&self, map: &ClusterMap) -> bool {
        let mut current = self.map.lock();
        if map.epoch() <= current.epoch() && *current != *map {
            return false;
        }
        *current = map.clone();
        self.learned.lock().clear();
        true
    }

    /// The cluster nodes, in construction order.
    pub fn nodes(&self) -> Vec<ClusterNode> {
        self.nodes.iter().map(|e| e.node.clone()).collect()
    }

    /// Routing accounting so far.
    pub fn stats(&self) -> ClusterRouterStats {
        ClusterRouterStats {
            replica_reads: self.replica_reads.load(Ordering::Relaxed),
            primary_reads: self.primary_reads.load(Ordering::Relaxed),
            fallbacks: self.fallbacks.load(Ordering::Relaxed),
            wrong_node_redirects: self.wrong_node_redirects.load(Ordering::Relaxed),
            forwarded_writes: self.forwarded_writes.load(Ordering::Relaxed),
        }
    }

    /// Records a `WrongNode` answer observed *outside* the router's own
    /// retry loop (a pipelined ticket harvested by the caller): the
    /// router learns the placement so the caller's retry aims right.
    pub fn note_redirect(&self, campaign: CampaignId, owner: NodeId) {
        self.wrong_node_redirects.fetch_add(1, Ordering::Relaxed);
        self.learn(campaign, owner);
    }

    /// Records a write that succeeded after an out-of-loop redirect (the
    /// pipelined twin of the blocking path's forwarding accounting).
    pub fn note_forwarded(&self, campaign: CampaignId) {
        self.forwarded_writes.fetch_add(1, Ordering::Relaxed);
        if let Some(entry) = self.entry_of(self.owner_of(campaign)) {
            entry.node.primary.metrics().forwarded_submission();
        }
    }

    fn learn(&self, campaign: CampaignId, owner: NodeId) {
        self.learned.lock().insert(campaign, owner);
    }

    /// The node currently believed to own `campaign`: a learned placement
    /// if one is pending, the directory otherwise. A one-node router
    /// skips the lookup — there is nothing to resolve.
    fn owner_of(&self, campaign: CampaignId) -> NodeId {
        if self.nodes.len() == 1 {
            return self.nodes[0].node.id;
        }
        if let Some(&owner) = self.learned.lock().get(&campaign) {
            return owner;
        }
        self.map.lock().owner(campaign)
    }

    fn entry_of(&self, id: NodeId) -> Option<&NodeEntry> {
        self.nodes.iter().find(|e| e.node.id == id)
    }

    /// The primary handle a pipelined submission for `campaign` should
    /// target right now. An owner outside the router's node set surfaces
    /// as the same `WrongNode` rejection the service would send.
    pub fn owner_primary(&self, campaign: CampaignId) -> Result<&ServiceHandle, ServiceError> {
        let owner = self.owner_of(campaign);
        match self.entry_of(owner) {
            Some(entry) => Ok(&entry.node.primary),
            None => Err(ServiceError::Rejected(RejectReason::WrongNode { owner })),
        }
    }

    /// Runs one write with redirect-retry: resolve the owner, call its
    /// primary, and absorb `WrongNode` answers by learning the named
    /// owner and retrying there. The first retry is immediate (the
    /// settled stale-map case converges in one); later ones park ~1 ms,
    /// riding out a migration's fence window in which source and
    /// destination both redirect until the tail is adopted.
    fn write<T>(
        &self,
        campaign: CampaignId,
        op: impl Fn(&ServiceHandle) -> Result<T, ServiceError>,
    ) -> Result<T, ServiceError> {
        let started = Instant::now();
        let mut redirects = 0usize;
        loop {
            let owner = self.owner_of(campaign);
            let Some(entry) = self.entry_of(owner) else {
                return Err(ServiceError::Rejected(RejectReason::WrongNode { owner }));
            };
            // Routing work so far — directory lookup plus every absorbed
            // redirect and fence-window park — is what this hop cost the
            // request before it reached the node it is about to try.
            entry
                .node
                .primary
                .metrics()
                .router_hop_recorded(started.elapsed());
            match op(&entry.node.primary) {
                Ok(value) => {
                    if redirects > 0 {
                        self.forwarded_writes.fetch_add(1, Ordering::Relaxed);
                        entry.node.primary.metrics().forwarded_submission();
                    }
                    return Ok(value);
                }
                Err(ServiceError::Rejected(RejectReason::WrongNode { owner: actual })) => {
                    redirects += 1;
                    if redirects > WRITE_REDIRECT_LIMIT {
                        return Err(ServiceError::Rejected(RejectReason::WrongNode {
                            owner: actual,
                        }));
                    }
                    self.wrong_node_redirects.fetch_add(1, Ordering::Relaxed);
                    self.learn(campaign, actual);
                    if redirects > 1 {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Whether a replica's refusal warrants retrying on its primary: the
    /// replica is gone, lagging (campaign not bootstrapped yet), or was
    /// promoted/demoted out from under the router.
    fn retry_on_primary(error: &ServiceError) -> bool {
        matches!(
            error,
            ServiceError::Disconnected
                | ServiceError::Busy { .. }
                | ServiceError::Rejected(RejectReason::UnknownCampaign(_))
        )
    }

    /// Runs one read on the owning node: next replica in round-robin
    /// order, primary fallback. An owner outside the router's node set
    /// falls back to the first node — a fenced ex-owner still serves
    /// reads as a consistent-but-stale replica, so any node beats an
    /// error for read traffic.
    fn read<T>(
        &self,
        campaign: CampaignId,
        op: impl Fn(&ServiceHandle) -> Result<T, ServiceError>,
    ) -> Result<T, ServiceError> {
        let owner = self.owner_of(campaign);
        let entry = self.entry_of(owner).unwrap_or(&self.nodes[0]);
        let replicas = &entry.node.replicas;
        if replicas.is_empty() {
            self.primary_reads.fetch_add(1, Ordering::Relaxed);
            return op(&entry.node.primary);
        }
        let pick = entry.next_replica.fetch_add(1, Ordering::Relaxed) % replicas.len();
        match op(&replicas[pick]) {
            Ok(value) => {
                self.replica_reads.fetch_add(1, Ordering::Relaxed);
                Ok(value)
            }
            Err(e) if Self::retry_on_primary(&e) => {
                self.fallbacks.fetch_add(1, Ordering::Relaxed);
                self.primary_reads.fetch_add(1, Ordering::Relaxed);
                op(&entry.node.primary)
            }
            Err(e) => Err(e),
        }
    }

    // ------------------------------------------------------------------
    // Reads: owning node, replica-first.
    // ------------------------------------------------------------------

    /// Campaign status, served replica-first on the owning node.
    pub fn status_in(&self, campaign: CampaignId) -> Result<CampaignStatus, ServiceError> {
        self.read(campaign, |h| h.status_in(campaign))
    }

    /// Inferred truths under the current state, served replica-first.
    pub fn peek_report_in(&self, campaign: CampaignId) -> Result<RequesterReport, ServiceError> {
        self.read(campaign, |h| h.peek_report_in(campaign))
    }

    /// Serialized campaign state, served replica-first.
    pub fn snapshot_state_in(&self, campaign: CampaignId) -> Result<Vec<u8>, ServiceError> {
        self.read(campaign, |h| h.snapshot_state_in(campaign))
    }

    // ------------------------------------------------------------------
    // Writes: owner-routed, redirect-retried.
    // ------------------------------------------------------------------

    /// "A worker comes and requests tasks" — owner's primary (assignment
    /// reads *and then consumes* budget as answers flow back).
    pub fn request_tasks_in(
        &self,
        campaign: CampaignId,
        worker: WorkerId,
    ) -> Result<WorkRequest, ServiceError> {
        self.write(campaign, |h| h.request_tasks_in(campaign, worker))
    }

    /// Pipelined assignment request against the current owner. Redirects
    /// surface through the ticket; callers that harvest them should
    /// [`note_redirect`](Self::note_redirect) and resubmit.
    pub fn request_tasks_ticket_in(
        &self,
        campaign: CampaignId,
        worker: WorkerId,
    ) -> Result<Ticket<WorkRequest>, ServiceError> {
        self.owner_primary(campaign)?
            .request_tasks_ticket_in(campaign, worker)
    }

    /// Assignment subscription (push/hybrid dispatch) — owner's primary.
    pub fn subscribe_assignments_ticket_in(
        &self,
        campaign: CampaignId,
        worker: WorkerId,
    ) -> Result<Ticket<WorkRequest>, ServiceError> {
        self.owner_primary(campaign)?
            .subscribe_assignments_ticket_in(campaign, worker)
    }

    /// Drops a parked assignment subscription — owner's primary.
    pub fn unsubscribe_in(
        &self,
        campaign: CampaignId,
        worker: WorkerId,
    ) -> Result<(), ServiceError> {
        self.write(campaign, |h| h.unsubscribe_in(campaign, worker))
    }

    /// Golden-HIT submission — owner's primary.
    pub fn submit_golden_in(
        &self,
        campaign: CampaignId,
        worker: WorkerId,
        answers: Vec<(TaskId, ChoiceIndex)>,
    ) -> Result<(), ServiceError> {
        self.write(campaign, |h| {
            h.submit_golden_in(campaign, worker, answers.clone())
        })
    }

    /// Pipelined golden-HIT submission against the current owner.
    pub fn submit_golden_ticket_in(
        &self,
        campaign: CampaignId,
        worker: WorkerId,
        answers: Vec<(TaskId, ChoiceIndex)>,
    ) -> Result<Ticket<()>, ServiceError> {
        self.owner_primary(campaign)?
            .submit_golden_ticket_in(campaign, worker, answers)
    }

    /// Single-answer submission — owner's primary.
    pub fn submit_answer_in(
        &self,
        campaign: CampaignId,
        answer: Answer,
    ) -> Result<(), ServiceError> {
        self.write(campaign, |h| h.submit_answer_in(campaign, answer))
    }

    /// Batched answer submission — owner's primary.
    pub fn submit_answer_batch_in(
        &self,
        campaign: CampaignId,
        answers: Vec<Answer>,
    ) -> Result<crate::message::BatchOutcome, ServiceError> {
        self.write(campaign, |h| {
            h.submit_answer_batch_in(campaign, answers.clone())
        })
    }

    /// Pipelined batched submission against the current owner.
    pub fn submit_answer_batch_ticket_in(
        &self,
        campaign: CampaignId,
        answers: Vec<Answer>,
    ) -> Result<Ticket<crate::message::BatchOutcome>, ServiceError> {
        self.owner_primary(campaign)?
            .submit_answer_batch_ticket_in(campaign, answers)
    }

    /// Finalization (runs inference, logs `Finished`) — owner's primary.
    pub fn finish_in(&self, campaign: CampaignId) -> Result<RequesterReport, ServiceError> {
        self.write(campaign, |h| h.finish_in(campaign))
    }
}

impl std::fmt::Debug for ClusterRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterRouter")
            .field("nodes", &self.nodes.len())
            .field("epoch", &self.map.lock().epoch())
            .field("stats", &self.stats())
            .finish()
    }
}

/// Where a [`ReadRouter`] sent reads so far (observability for tests,
/// examples, and capacity planning).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadRoutingStats {
    /// Reads served by a replica.
    pub replica_reads: u64,
    /// Reads served by the primary (no replicas, or fallback).
    pub primary_reads: u64,
    /// Reads that fell back to the primary after a replica refused or
    /// disconnected.
    pub fallbacks: u64,
}

impl std::fmt::Display for ReadRoutingStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "reads: {} replica / {} primary ({} fallbacks)",
            self.replica_reads, self.primary_reads, self.fallbacks
        )
    }
}

/// The routing client of a single primary + replicas deployment — a
/// one-node [`ClusterRouter`] with the pre-cluster API kept intact.
#[derive(Clone)]
pub struct ReadRouter {
    inner: ClusterRouter,
}

impl ReadRouter {
    /// Routes writes to `primary` and fans reads out across `replicas`
    /// (an empty list degrades to an all-primary router).
    pub fn new(primary: ServiceHandle, replicas: Vec<ServiceHandle>) -> Self {
        ReadRouter {
            inner: ClusterRouter::single(NodeId(0), primary, replicas),
        }
    }

    /// The write-side handle.
    pub fn primary(&self) -> &ServiceHandle {
        &self.inner.nodes[0].node.primary
    }

    /// The attached replica handles.
    pub fn replicas(&self) -> &[ServiceHandle] {
        &self.inner.nodes[0].node.replicas
    }

    /// Read-routing accounting so far.
    pub fn stats(&self) -> ReadRoutingStats {
        let stats = self.inner.stats();
        ReadRoutingStats {
            replica_reads: stats.replica_reads,
            primary_reads: stats.primary_reads,
            fallbacks: stats.fallbacks,
        }
    }

    /// Campaign status, served replica-first.
    pub fn status_in(&self, campaign: CampaignId) -> Result<CampaignStatus, ServiceError> {
        self.inner.status_in(campaign)
    }

    /// Inferred truths under the current state, served replica-first.
    pub fn peek_report_in(&self, campaign: CampaignId) -> Result<RequesterReport, ServiceError> {
        self.inner.peek_report_in(campaign)
    }

    /// Serialized campaign state, served replica-first.
    pub fn snapshot_state_in(&self, campaign: CampaignId) -> Result<Vec<u8>, ServiceError> {
        self.inner.snapshot_state_in(campaign)
    }

    /// "A worker comes and requests tasks" — primary only (assignment
    /// reads *and then consumes* budget as answers flow back; a follower
    /// refuses it).
    pub fn request_tasks_in(
        &self,
        campaign: CampaignId,
        worker: WorkerId,
    ) -> Result<WorkRequest, ServiceError> {
        self.inner.request_tasks_in(campaign, worker)
    }

    /// Assignment subscription (push/hybrid dispatch) — primary only:
    /// like polling, a pushed assignment leads to answers that consume the
    /// primary's budget, and a follower refuses the subscribe outright.
    pub fn subscribe_assignments_ticket_in(
        &self,
        campaign: CampaignId,
        worker: WorkerId,
    ) -> Result<Ticket<WorkRequest>, ServiceError> {
        self.inner.subscribe_assignments_ticket_in(campaign, worker)
    }

    /// Drops a parked assignment subscription — primary only.
    pub fn unsubscribe_in(
        &self,
        campaign: CampaignId,
        worker: WorkerId,
    ) -> Result<(), ServiceError> {
        self.inner.unsubscribe_in(campaign, worker)
    }

    /// Golden-HIT submission — primary only.
    pub fn submit_golden_in(
        &self,
        campaign: CampaignId,
        worker: WorkerId,
        answers: Vec<(TaskId, ChoiceIndex)>,
    ) -> Result<(), ServiceError> {
        self.inner.submit_golden_in(campaign, worker, answers)
    }

    /// Single-answer submission — primary only.
    pub fn submit_answer_in(
        &self,
        campaign: CampaignId,
        answer: Answer,
    ) -> Result<(), ServiceError> {
        self.inner.submit_answer_in(campaign, answer)
    }

    /// Batched answer submission — primary only.
    pub fn submit_answer_batch_in(
        &self,
        campaign: CampaignId,
        answers: Vec<Answer>,
    ) -> Result<crate::message::BatchOutcome, ServiceError> {
        self.inner.submit_answer_batch_in(campaign, answers)
    }

    /// Finalization (runs inference, logs `Finished`) — primary only.
    pub fn finish_in(&self, campaign: CampaignId) -> Result<RequesterReport, ServiceError> {
        self.inner.finish_in(campaign)
    }
}

impl std::fmt::Debug for ReadRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReadRouter")
            .field("replicas", &self.replicas().len())
            .field("stats", &self.stats())
            .finish()
    }
}
