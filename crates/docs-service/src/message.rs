//! The service wire protocol: the two worker-facing request kinds of
//! Figure 1 plus requester-side control operations.

use docs_system::{RequesterReport, WorkRequest};
use docs_types::{Answer, ChoiceIndex, TaskId, WorkerId};

/// A request to the DOCS service.
#[derive(Debug, Clone)]
pub enum Request {
    /// "A worker comes and requests tasks" (Figure 1, arrow ④).
    RequestTasks(WorkerId),
    /// A new worker submits her golden-HIT answers (Section 5.2).
    SubmitGolden {
        /// The submitting worker.
        worker: WorkerId,
        /// Her answers to the golden tasks.
        answers: Vec<(TaskId, ChoiceIndex)>,
    },
    /// "A worker accomplishes tasks and submits answers" (arrow ⑤).
    SubmitAnswer(Answer),
    /// Requester-side: finalize inference and produce the report.
    Finish,
}

/// A response from the DOCS service.
#[derive(Debug, Clone)]
pub enum Response {
    /// Reply to [`Request::RequestTasks`].
    Work(WorkRequest),
    /// Successful submission.
    Ack,
    /// Reply to [`Request::Finish`].
    Report(Box<RequesterReport>),
    /// The request failed inside the system (e.g. duplicate answer).
    Failed(String),
}
