//! The service wire protocol: campaign-scoped worker requests (Figure 1's
//! arrows ④/⑤ per campaign) plus requester-side control operations, carried
//! in correlation-id envelopes so a client can keep many requests in
//! flight per shard.
//!
//! Every data-plane request names the [`CampaignId`] it targets; the shard
//! pool routes it to the shard owning that campaign
//! ([`CampaignId::shard`]), where the campaign's `Docs` state machine
//! processes it without locks. Campaign ids are allocated centrally by the
//! service handle, so [`Request::CreateCampaign`] carries the pre-assigned
//! id to the owning shard.
//!
//! The submission/completion split: a client *submits* a
//! [`RequestEnvelope`] (a [`Request`] tagged with a client-chosen
//! correlation id) and later harvests the matching [`Completion`] from its
//! completion slot. The shard echoes the correlation id verbatim, so
//! pipelined clients can pair out-of-band completions with the operations
//! that caused them. Failures travel as data: [`Response::Rejected`]
//! carries a matchable [`RejectReason`] instead of the string blob the
//! pre-pipelining protocol used.

use docs_obs::TraceContext;
use docs_storage::FlushPolicy;
use docs_system::{CampaignStatus, Docs, RequesterReport, WorkRequest};
use docs_types::{
    Answer, CampaignEvent, CampaignId, ChoiceIndex, ClusterMap, NodeId, RejectReason, TaskId,
    WorkerId,
};

/// Client-assigned tag pairing a submission with its completion. Allocated
/// monotonically per handle; the shard never interprets it, only echoes it.
pub type CorrelationId = u64;

/// One submitted operation: the request plus the correlation id its
/// completion must carry.
#[derive(Debug)]
pub struct RequestEnvelope {
    /// Tag echoed verbatim in the matching [`Completion`].
    pub correlation: CorrelationId,
    /// The operation to run on the owning shard.
    pub request: Request,
    /// Sampled-request trace riding the envelope: `None` for the vast
    /// unsampled majority (one null check on the hot path), a live
    /// [`TraceContext`] for the sampled few. The shard closes queue-wait /
    /// apply / flush-wait / ship spans on it and lands the finished trace
    /// in the service's flight recorder when the completion is released.
    pub trace: Option<Box<TraceContext>>,
}

/// One completed operation, as delivered to the submitter's completion
/// slot.
#[derive(Debug)]
pub struct Completion {
    /// The correlation id of the [`RequestEnvelope`] this answers.
    pub correlation: CorrelationId,
    /// The shard's response.
    pub response: Response,
}

/// A request to the DOCS service.
#[derive(Debug)]
pub enum Request {
    /// Requester-side: register a freshly published system as a new
    /// campaign. The id was allocated by the service handle; the receiving
    /// shard is its owner by the shared hash mapping.
    CreateCampaign {
        /// Pre-allocated id of the new campaign.
        campaign: CampaignId,
        /// The published system to serve.
        docs: Box<Docs>,
        /// Per-campaign persistence override. `None` follows the published
        /// system's own `DocsConfig::durable_flush`; `Some(policy)` forces
        /// event-log persistence under `policy` regardless of the config.
        /// Either way persistence is a *per-campaign* choice carried on the
        /// wire — not a process-global switch.
        persistence: Option<FlushPolicy>,
    },
    /// "A worker comes and requests tasks" (Figure 1, arrow ④).
    RequestWork {
        /// Campaign the worker is participating in.
        campaign: CampaignId,
        /// The requesting worker.
        worker: WorkerId,
    },
    /// A new worker submits her golden-HIT answers (Section 5.2).
    SubmitGolden {
        /// Campaign the golden HIT belongs to.
        campaign: CampaignId,
        /// The submitting worker.
        worker: WorkerId,
        /// Her answers to the golden tasks.
        answers: Vec<(TaskId, ChoiceIndex)>,
    },
    /// "A worker accomplishes tasks and submits answers" (arrow ⑤).
    SubmitAnswer {
        /// Campaign the answered task belongs to.
        campaign: CampaignId,
        /// The submitted answer.
        answer: Answer,
    },
    /// A whole HIT's worth of answers in one round-trip: the batched
    /// ingestion path. The shard validates every answer up front, logs the
    /// accepted sub-batch as **one** write-ahead-log record (one group
    /// commit, one `fdatasync`), applies it with one benefit-index repair
    /// pass, and reports the per-answer outcome in
    /// [`Response::BatchAck`].
    SubmitAnswerBatch {
        /// Campaign the answered tasks belong to.
        campaign: CampaignId,
        /// The submitted answers, in submission order.
        answers: Vec<Answer>,
    },
    /// Push-dispatch plane: register a long-lived assignment subscription
    /// for `(campaign, worker)`. If the worker can be served right now the
    /// shard completes the subscription immediately with
    /// [`Response::Work`]; otherwise (worker at its in-flight cap) the
    /// completion sender is **parked** in the shard's subscription table
    /// and resolved when the campaign's dispatch epoch next advances — the
    /// benefit index is consulted once per state change instead of once
    /// per worker poll. Refused with `RejectReason::Invalid` on a
    /// [`DispatchMode::Pull`](crate::DispatchMode::Pull) service.
    Subscribe {
        /// Campaign the worker wants assignments from.
        campaign: CampaignId,
        /// The subscribing worker.
        worker: WorkerId,
    },
    /// Push-dispatch plane: drop `(campaign, worker)`'s parked subscription
    /// if one exists. The parked completion (the client's outstanding
    /// subscribe ticket) resolves with `Work(Done)` so an abandoning worker
    /// is told to stop rather than left waiting; the unsubscribe itself is
    /// acknowledged with [`Response::Ack`] whether or not a subscription
    /// was parked (idempotent).
    Unsubscribe {
        /// Campaign the subscription targeted.
        campaign: CampaignId,
        /// The unsubscribing worker.
        worker: WorkerId,
    },
    /// Requester-side: finalize one campaign's inference and produce its
    /// report. The campaign keeps serving afterwards (reports are
    /// repeatable), matching the single-campaign service's behavior.
    Finish {
        /// Campaign to finalize.
        campaign: CampaignId,
    },
    /// Pure read: the campaign's observable serving state (task/golden
    /// counts, answers collected, worker counts, budget). Served locally
    /// by follower replicas — status polling need not touch the primary.
    Status {
        /// Campaign to summarize.
        campaign: CampaignId,
    },
    /// Pure read: the requester report under the *current* state, without
    /// applying a `Finished` event (no full-inference run is forced, no
    /// event is logged). The inferred-truths read path of a follower.
    PeekReport {
        /// Campaign to report on.
        campaign: CampaignId,
    },
    /// Pure read: the campaign's full serialized `CampaignSnapshot` —
    /// the byte-identity probe (a follower at watermark `w` must return
    /// exactly the primary's bytes at `w`) and a seeding source for new
    /// followers.
    SnapshotState {
        /// Campaign to serialize.
        campaign: CampaignId,
    },
    /// Replication plane: install a campaign snapshot shipped from the
    /// primary (bootstrap for a campaign this follower has never seen, or
    /// fast-forward past a pruned prefix). Only a follower accepts this.
    InstallSnapshot {
        /// Campaign the snapshot belongs to.
        campaign: CampaignId,
        /// Per-campaign sequence number the snapshot covers.
        seq: u64,
        /// The serialized `CampaignSnapshot` (the primary's exact bytes).
        snapshot: Vec<u8>,
    },
    /// Replication plane: apply one replicated event at its primary-
    /// assigned sequence number through the same deterministic
    /// `validate_event`/`apply` transition the primary ran. Only a
    /// follower accepts this; the applier guarantees gap-free order.
    ApplyReplicated {
        /// Campaign the event belongs to.
        campaign: CampaignId,
        /// Per-campaign sequence number assigned by the primary's log.
        seq: u64,
        /// The event to apply.
        event: Box<CampaignEvent>,
    },
    /// Cluster control: fence a campaign away to `owner`. The owning shard
    /// hardens the campaign's log, records the hand-off, answers
    /// [`Response::Fenced`] with the hardened watermark, and refuses every
    /// later mutation of the campaign with [`RejectReason::WrongNode`].
    Fence {
        /// Campaign being handed off.
        campaign: CampaignId,
        /// The node that owns the campaign from now on.
        owner: NodeId,
    },
    /// Cluster control: begin migration intake — the campaign is being
    /// shipped here from `source`, which keeps the write path until
    /// [`Request::CompleteMigration`]. While in intake the shard admits the
    /// replication plane for this campaign (despite running as a primary)
    /// and redirects mutations back to the source.
    PrepareMigration {
        /// Campaign being shipped in.
        campaign: CampaignId,
        /// The node that still owns the write path.
        source: NodeId,
    },
    /// Cluster control: the migrated campaign's tail is fully applied —
    /// adopt its write path (end intake, clear any stale fence).
    CompleteMigration {
        /// Campaign being adopted.
        campaign: CampaignId,
    },
    /// Cluster control: install a routing directory on the shard. Fresher
    /// epochs win; stale installs are acknowledged and dropped. Unlike
    /// every other request this is *broadcast* — the handle sends one copy
    /// to each shard rather than routing by campaign.
    InstallMap {
        /// The directory to install.
        map: Box<ClusterMap>,
    },
}

impl Request {
    /// The campaign this request must be routed to.
    pub fn campaign(&self) -> CampaignId {
        match self {
            Request::CreateCampaign { campaign, .. }
            | Request::RequestWork { campaign, .. }
            | Request::SubmitGolden { campaign, .. }
            | Request::SubmitAnswer { campaign, .. }
            | Request::SubmitAnswerBatch { campaign, .. }
            | Request::Subscribe { campaign, .. }
            | Request::Unsubscribe { campaign, .. }
            | Request::Finish { campaign }
            | Request::Status { campaign }
            | Request::PeekReport { campaign }
            | Request::SnapshotState { campaign }
            | Request::InstallSnapshot { campaign, .. }
            | Request::ApplyReplicated { campaign, .. }
            | Request::Fence { campaign, .. }
            | Request::PrepareMigration { campaign, .. }
            | Request::CompleteMigration { campaign } => *campaign,
            // A directory install is broadcast by the handle (one copy per
            // shard); the nominal route only matters if a caller submits
            // it through the campaign-routed path anyway.
            Request::InstallMap { .. } => CampaignId(0),
        }
    }

    /// Whether the request mutates campaign state. Pure reads are the
    /// operations a read-only follower serves locally; everything else is
    /// refused there with [`RejectReason::ReadOnlyReplica`] (the
    /// replication-plane requests mutate too, but only a follower's
    /// applier may submit them).
    pub fn is_read(&self) -> bool {
        matches!(
            self,
            Request::Status { .. } | Request::PeekReport { .. } | Request::SnapshotState { .. }
        )
    }

    /// Whether the request belongs to the replication plane (snapshot
    /// install / replicated apply) — accepted only on a follower, fed only
    /// by its applier. A primary shard in migration intake admits it for
    /// the campaign being shipped in.
    pub fn is_replication(&self) -> bool {
        matches!(
            self,
            Request::InstallSnapshot { .. } | Request::ApplyReplicated { .. }
        )
    }

    /// Whether the request is cluster control (fencing, migration intake,
    /// directory install) — ownership bookkeeping that bypasses the
    /// campaign state machine and the ownership admission check itself.
    pub fn is_cluster_control(&self) -> bool {
        matches!(
            self,
            Request::Fence { .. }
                | Request::PrepareMigration { .. }
                | Request::CompleteMigration { .. }
                | Request::InstallMap { .. }
        )
    }
}

/// Per-answer outcome of a [`Request::SubmitAnswerBatch`]: a batch
/// round-trip *succeeds* even when some answers are rejected (duplicates
/// when the same worker raced on two HITs, say) — rejection is per answer,
/// exactly as if the answers had been submitted individually, and each
/// refusal carries its matchable [`RejectReason`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Answers accepted and applied, in submission order.
    pub accepted: usize,
    /// Rejected answers: position in the submitted batch and the reason.
    pub rejected: Vec<(usize, RejectReason)>,
}

/// A response from the DOCS service.
#[derive(Debug)]
pub enum Response {
    /// Reply to [`Request::CreateCampaign`].
    CampaignCreated(CampaignId),
    /// Reply to [`Request::RequestWork`].
    Work(WorkRequest),
    /// Successful submission.
    Ack,
    /// Reply to [`Request::SubmitAnswerBatch`].
    BatchAck(BatchOutcome),
    /// Reply to [`Request::Finish`] and [`Request::PeekReport`].
    Report(Box<RequesterReport>),
    /// Reply to [`Request::Status`].
    Status(Box<CampaignStatus>),
    /// Reply to [`Request::SnapshotState`]: the campaign's serialized
    /// `CampaignSnapshot`, byte-identical across primary and caught-up
    /// followers.
    State(Vec<u8>),
    /// Reply to [`Request::Fence`]: the campaign's log was hardened
    /// through this per-campaign sequence number before the fence took
    /// effect — the migration's linearization watermark.
    Fenced {
        /// Highest durable sequence at the moment of the fence.
        watermark: u64,
    },
    /// The system refused the request; the reason is matchable data, not
    /// prose (e.g. `RejectReason::DuplicateAnswer`,
    /// `RejectReason::UnknownCampaign`).
    Rejected(RejectReason),
}
