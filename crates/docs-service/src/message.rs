//! The service wire protocol: campaign-scoped worker requests (Figure 1's
//! arrows ④/⑤ per campaign) plus requester-side control operations, carried
//! in correlation-id envelopes so a client can keep many requests in
//! flight per shard.
//!
//! Every data-plane request names the [`CampaignId`] it targets; the shard
//! pool routes it to the shard owning that campaign
//! ([`CampaignId::shard`]), where the campaign's `Docs` state machine
//! processes it without locks. Campaign ids are allocated centrally by the
//! service handle, so [`Request::CreateCampaign`] carries the pre-assigned
//! id to the owning shard.
//!
//! The submission/completion split: a client *submits* a
//! [`RequestEnvelope`] (a [`Request`] tagged with a client-chosen
//! correlation id) and later harvests the matching [`Completion`] from its
//! completion slot. The shard echoes the correlation id verbatim, so
//! pipelined clients can pair out-of-band completions with the operations
//! that caused them. Failures travel as data: [`Response::Rejected`]
//! carries a matchable [`RejectReason`] instead of the string blob the
//! pre-pipelining protocol used.

use docs_storage::FlushPolicy;
use docs_system::{Docs, RequesterReport, WorkRequest};
use docs_types::{Answer, CampaignId, ChoiceIndex, RejectReason, TaskId, WorkerId};

/// Client-assigned tag pairing a submission with its completion. Allocated
/// monotonically per handle; the shard never interprets it, only echoes it.
pub type CorrelationId = u64;

/// One submitted operation: the request plus the correlation id its
/// completion must carry.
#[derive(Debug)]
pub struct RequestEnvelope {
    /// Tag echoed verbatim in the matching [`Completion`].
    pub correlation: CorrelationId,
    /// The operation to run on the owning shard.
    pub request: Request,
}

/// One completed operation, as delivered to the submitter's completion
/// slot.
#[derive(Debug)]
pub struct Completion {
    /// The correlation id of the [`RequestEnvelope`] this answers.
    pub correlation: CorrelationId,
    /// The shard's response.
    pub response: Response,
}

/// A request to the DOCS service.
#[derive(Debug)]
pub enum Request {
    /// Requester-side: register a freshly published system as a new
    /// campaign. The id was allocated by the service handle; the receiving
    /// shard is its owner by the shared hash mapping.
    CreateCampaign {
        /// Pre-allocated id of the new campaign.
        campaign: CampaignId,
        /// The published system to serve.
        docs: Box<Docs>,
        /// Per-campaign persistence override. `None` follows the published
        /// system's own `DocsConfig::durable_flush`; `Some(policy)` forces
        /// event-log persistence under `policy` regardless of the config.
        /// Either way persistence is a *per-campaign* choice carried on the
        /// wire — not a process-global switch.
        persistence: Option<FlushPolicy>,
    },
    /// "A worker comes and requests tasks" (Figure 1, arrow ④).
    RequestWork {
        /// Campaign the worker is participating in.
        campaign: CampaignId,
        /// The requesting worker.
        worker: WorkerId,
    },
    /// A new worker submits her golden-HIT answers (Section 5.2).
    SubmitGolden {
        /// Campaign the golden HIT belongs to.
        campaign: CampaignId,
        /// The submitting worker.
        worker: WorkerId,
        /// Her answers to the golden tasks.
        answers: Vec<(TaskId, ChoiceIndex)>,
    },
    /// "A worker accomplishes tasks and submits answers" (arrow ⑤).
    SubmitAnswer {
        /// Campaign the answered task belongs to.
        campaign: CampaignId,
        /// The submitted answer.
        answer: Answer,
    },
    /// A whole HIT's worth of answers in one round-trip: the batched
    /// ingestion path. The shard validates every answer up front, logs the
    /// accepted sub-batch as **one** write-ahead-log record (one group
    /// commit, one `fdatasync`), applies it with one benefit-index repair
    /// pass, and reports the per-answer outcome in
    /// [`Response::BatchAck`].
    SubmitAnswerBatch {
        /// Campaign the answered tasks belong to.
        campaign: CampaignId,
        /// The submitted answers, in submission order.
        answers: Vec<Answer>,
    },
    /// Requester-side: finalize one campaign's inference and produce its
    /// report. The campaign keeps serving afterwards (reports are
    /// repeatable), matching the single-campaign service's behavior.
    Finish {
        /// Campaign to finalize.
        campaign: CampaignId,
    },
}

impl Request {
    /// The campaign this request must be routed to.
    pub fn campaign(&self) -> CampaignId {
        match self {
            Request::CreateCampaign { campaign, .. }
            | Request::RequestWork { campaign, .. }
            | Request::SubmitGolden { campaign, .. }
            | Request::SubmitAnswer { campaign, .. }
            | Request::SubmitAnswerBatch { campaign, .. }
            | Request::Finish { campaign } => *campaign,
        }
    }
}

/// Per-answer outcome of a [`Request::SubmitAnswerBatch`]: a batch
/// round-trip *succeeds* even when some answers are rejected (duplicates
/// when the same worker raced on two HITs, say) — rejection is per answer,
/// exactly as if the answers had been submitted individually, and each
/// refusal carries its matchable [`RejectReason`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Answers accepted and applied, in submission order.
    pub accepted: usize,
    /// Rejected answers: position in the submitted batch and the reason.
    pub rejected: Vec<(usize, RejectReason)>,
}

/// A response from the DOCS service.
#[derive(Debug)]
pub enum Response {
    /// Reply to [`Request::CreateCampaign`].
    CampaignCreated(CampaignId),
    /// Reply to [`Request::RequestWork`].
    Work(WorkRequest),
    /// Successful submission.
    Ack,
    /// Reply to [`Request::SubmitAnswerBatch`].
    BatchAck(BatchOutcome),
    /// Reply to [`Request::Finish`].
    Report(Box<RequesterReport>),
    /// The system refused the request; the reason is matchable data, not
    /// prose (e.g. `RejectReason::DuplicateAnswer`,
    /// `RejectReason::UnknownCampaign`).
    Rejected(RejectReason),
}
