//! One-shot completion handles for the submission/completion service API.
//!
//! A [`Ticket`] is the client half of one in-flight operation: submitting a
//! request enqueues it on the owning shard and returns immediately with a
//! ticket; the shard's [`Completion`] lands in the ticket's slot whenever
//! the shard gets to it. A client that holds many tickets has that many
//! requests pipelined on the wire — the shard serves them strictly in
//! arrival order, so per-client ordering is exactly what a blocking caller
//! would have seen, minus the idle round-trip gaps.
//!
//! Tickets are consumed by value: [`Ticket::wait`] blocks until the
//! completion arrives, while [`Ticket::wait_timeout`] and
//! [`Ticket::try_take`] return a [`TicketWait`] that either carries the
//! decoded result or hands the still-pending ticket back. No method
//! panics, no completion can be taken twice, and dropping a pending ticket
//! is a clean fire-and-forget (the shard's completion send is simply
//! discarded).

use crate::message::{Completion, CorrelationId, Response};
use crate::metrics::ServiceMetrics;
use crate::server::ServiceError;
use crossbeam::channel::{Receiver, RecvTimeoutError, TryRecvError};
use std::cell::Cell;
use std::time::Duration;

/// Decrements the per-shard in-flight gauge exactly once, however the
/// ticket resolves (taken, timed out forever, or dropped unresolved).
///
/// Resolution is **idempotent**: the decode path resolves the gauge the
/// moment a completion is taken, and the drop is a backstop for tickets
/// that never see one. Without the `resolved` latch, a completion taken on
/// the `wait_timeout`/`try_take` path *and* the guard's drop would each
/// decrement — and because the gauge saturates at zero, the stray second
/// decrement would silently steal the slot of some *other* still-pending
/// ticket instead of underflowing visibly.
struct InFlightGuard {
    metrics: ServiceMetrics,
    shard: usize,
    resolved: Cell<bool>,
}

impl InFlightGuard {
    /// Resolves the gauge; every call after the first is a no-op.
    fn resolve(&self) {
        if !self.resolved.replace(true) {
            self.metrics.ticket_resolved(self.shard);
        }
    }
}

impl Drop for InFlightGuard {
    fn drop(&mut self) {
        self.resolve();
    }
}

/// A one-shot handle to one submitted operation's completion.
///
/// `T` is the operation's typed result (`WorkRequest` for an assignment,
/// `BatchOutcome` for a batch submission, …); the rejection side is always
/// [`ServiceError`], so `ticket.wait()` returns exactly what the blocking
/// method for the same operation returns.
pub struct Ticket<T> {
    slot: Receiver<Completion>,
    correlation: CorrelationId,
    shard: usize,
    decode: fn(Response) -> Result<T, ServiceError>,
    _gauge: InFlightGuard,
}

/// Outcome of a non-blocking completion poll: either the operation's
/// decoded result, or the still-pending ticket handed back to the caller.
pub enum TicketWait<T> {
    /// The completion arrived (or the shard is gone); the ticket is spent.
    Ready(Result<T, ServiceError>),
    /// Nothing yet — keep the ticket and poll or wait again.
    Pending(Ticket<T>),
}

impl<T> TicketWait<T> {
    /// The result, if the completion had arrived; `None` discards a
    /// pending ticket (fire-and-forget).
    pub fn ready(self) -> Option<Result<T, ServiceError>> {
        match self {
            TicketWait::Ready(result) => Some(result),
            TicketWait::Pending(_) => None,
        }
    }
}

impl<T> Ticket<T> {
    pub(crate) fn new(
        slot: Receiver<Completion>,
        correlation: CorrelationId,
        shard: usize,
        decode: fn(Response) -> Result<T, ServiceError>,
        metrics: ServiceMetrics,
    ) -> Self {
        Ticket {
            slot,
            correlation,
            shard,
            decode,
            _gauge: InFlightGuard {
                metrics,
                shard,
                resolved: Cell::new(false),
            },
        }
    }

    /// The correlation id the shard will echo in this ticket's completion.
    pub fn correlation(&self) -> CorrelationId {
        self.correlation
    }

    /// The shard the operation was submitted to.
    pub fn shard(&self) -> usize {
        self.shard
    }

    fn decode(&self, completion: Completion) -> Result<T, ServiceError> {
        debug_assert_eq!(
            completion.correlation, self.correlation,
            "completion correlation mismatch: per-ticket slots are one-shot"
        );
        // The operation left flight the moment its completion was taken;
        // the guard's drop is an idempotent backstop from here on.
        self._gauge.resolve();
        (self.decode)(completion.response)
    }

    /// Blocks until the completion arrives and returns the decoded result —
    /// the rendezvous the blocking API methods are thin wrappers over.
    pub fn wait(self) -> Result<T, ServiceError> {
        match self.slot.recv() {
            Ok(completion) => self.decode(completion),
            Err(_) => Err(ServiceError::Disconnected),
        }
    }

    /// Waits at most `timeout` for the completion. On timeout the ticket
    /// comes back untouched in [`TicketWait::Pending`] — the operation is
    /// still in flight and can be waited on again.
    pub fn wait_timeout(self, timeout: Duration) -> TicketWait<T> {
        match self.slot.recv_timeout(timeout) {
            Ok(completion) => TicketWait::Ready(self.decode(completion)),
            Err(RecvTimeoutError::Timeout) => TicketWait::Pending(self),
            Err(RecvTimeoutError::Disconnected) => {
                TicketWait::Ready(Err(ServiceError::Disconnected))
            }
        }
    }

    /// Non-blocking completion poll.
    pub fn try_take(self) -> TicketWait<T> {
        match self.slot.try_recv() {
            Ok(completion) => TicketWait::Ready(self.decode(completion)),
            Err(TryRecvError::Empty) => TicketWait::Pending(self),
            Err(TryRecvError::Disconnected) => TicketWait::Ready(Err(ServiceError::Disconnected)),
        }
    }
}

impl<T> std::fmt::Debug for Ticket<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket")
            .field("correlation", &self.correlation)
            .field("shard", &self.shard)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::{bounded, Sender};
    use docs_system::WorkRequest;

    fn decode_work(response: Response) -> Result<WorkRequest, ServiceError> {
        match response {
            Response::Work(w) => Ok(w),
            Response::Rejected(reason) => Err(ServiceError::Rejected(reason)),
            other => unreachable!("protocol violation: {other:?}"),
        }
    }

    fn issue(
        metrics: &ServiceMetrics,
        correlation: CorrelationId,
    ) -> (Ticket<WorkRequest>, Sender<Completion>) {
        let (tx, rx) = bounded(1);
        metrics.ticket_issued(0);
        let ticket = Ticket::new(rx, correlation, 0, decode_work, metrics.clone());
        (ticket, tx)
    }

    fn complete(tx: &Sender<Completion>, correlation: CorrelationId) {
        tx.send(Completion {
            correlation,
            response: Response::Work(WorkRequest::Done),
        })
        .unwrap();
    }

    /// Regression: a completion taken through `wait_timeout`/`try_take`
    /// resolves the gauge *and* the guard still drops afterwards — before
    /// gauge updates were idempotent, that pair of decrements silently
    /// stole the in-flight slot of another still-pending ticket (the
    /// saturating gauge hides the underflow).
    #[test]
    fn timeout_then_resolve_decrements_the_gauge_exactly_once() {
        let metrics = ServiceMetrics::new(1);
        let (a, tx_a) = issue(&metrics, 1);
        let (b, tx_b) = issue(&metrics, 2);
        assert_eq!(metrics.shard(0).in_flight, 2);

        // A timeout hands the pending ticket back without touching the
        // gauge; the completion then arrives and is taken via try_take.
        let a = match a.wait_timeout(Duration::from_millis(5)) {
            TicketWait::Pending(t) => t,
            TicketWait::Ready(r) => panic!("unserved ticket completed: {r:?}"),
        };
        assert_eq!(metrics.shard(0).in_flight, 2, "timeout resolves nothing");
        complete(&tx_a, 1);
        match a.try_take() {
            TicketWait::Ready(Ok(WorkRequest::Done)) => {}
            other => panic!("completion not taken: {:?}", other.ready()),
        }
        // Exactly one decrement for A: B's slot must survive.
        assert_eq!(
            metrics.shard(0).in_flight,
            1,
            "double decrement stole the other ticket's in-flight slot"
        );

        // The same invariant on the blocking rendezvous.
        complete(&tx_b, 2);
        assert_eq!(b.wait().unwrap(), WorkRequest::Done);
        assert_eq!(metrics.shard(0).in_flight, 0);

        // Dropping an unresolved ticket still resolves it (backstop path).
        let (c, tx_c) = issue(&metrics, 3);
        assert_eq!(metrics.shard(0).in_flight, 1);
        drop(c);
        drop(tx_c);
        assert_eq!(metrics.shard(0).in_flight, 0);
    }
}
