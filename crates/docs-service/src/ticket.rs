//! One-shot completion handles for the submission/completion service API.
//!
//! A [`Ticket`] is the client half of one in-flight operation: submitting a
//! request enqueues it on the owning shard and returns immediately with a
//! ticket; the shard's [`Completion`] lands in the ticket's slot whenever
//! the shard gets to it. A client that holds many tickets has that many
//! requests pipelined on the wire — the shard serves them strictly in
//! arrival order, so per-client ordering is exactly what a blocking caller
//! would have seen, minus the idle round-trip gaps.
//!
//! Tickets are consumed by value: [`Ticket::wait`] blocks until the
//! completion arrives, while [`Ticket::wait_timeout`] and
//! [`Ticket::try_take`] return a [`TicketWait`] that either carries the
//! decoded result or hands the still-pending ticket back. No method
//! panics, no completion can be taken twice, and dropping a pending ticket
//! is a clean fire-and-forget (the shard's completion send is simply
//! discarded).

use crate::message::{Completion, CorrelationId, Response};
use crate::metrics::ServiceMetrics;
use crate::server::ServiceError;
use crossbeam::channel::{Receiver, RecvTimeoutError, TryRecvError};
use std::time::Duration;

/// Decrements the per-shard in-flight gauge exactly once, however the
/// ticket resolves (taken, timed out forever, or dropped unresolved).
struct InFlightGuard {
    metrics: ServiceMetrics,
    shard: usize,
}

impl Drop for InFlightGuard {
    fn drop(&mut self) {
        self.metrics.ticket_resolved(self.shard);
    }
}

/// A one-shot handle to one submitted operation's completion.
///
/// `T` is the operation's typed result (`WorkRequest` for an assignment,
/// `BatchOutcome` for a batch submission, …); the rejection side is always
/// [`ServiceError`], so `ticket.wait()` returns exactly what the blocking
/// method for the same operation returns.
pub struct Ticket<T> {
    slot: Receiver<Completion>,
    correlation: CorrelationId,
    shard: usize,
    decode: fn(Response) -> Result<T, ServiceError>,
    _gauge: InFlightGuard,
}

/// Outcome of a non-blocking completion poll: either the operation's
/// decoded result, or the still-pending ticket handed back to the caller.
pub enum TicketWait<T> {
    /// The completion arrived (or the shard is gone); the ticket is spent.
    Ready(Result<T, ServiceError>),
    /// Nothing yet — keep the ticket and poll or wait again.
    Pending(Ticket<T>),
}

impl<T> TicketWait<T> {
    /// The result, if the completion had arrived; `None` discards a
    /// pending ticket (fire-and-forget).
    pub fn ready(self) -> Option<Result<T, ServiceError>> {
        match self {
            TicketWait::Ready(result) => Some(result),
            TicketWait::Pending(_) => None,
        }
    }
}

impl<T> Ticket<T> {
    pub(crate) fn new(
        slot: Receiver<Completion>,
        correlation: CorrelationId,
        shard: usize,
        decode: fn(Response) -> Result<T, ServiceError>,
        metrics: ServiceMetrics,
    ) -> Self {
        Ticket {
            slot,
            correlation,
            shard,
            decode,
            _gauge: InFlightGuard { metrics, shard },
        }
    }

    /// The correlation id the shard will echo in this ticket's completion.
    pub fn correlation(&self) -> CorrelationId {
        self.correlation
    }

    /// The shard the operation was submitted to.
    pub fn shard(&self) -> usize {
        self.shard
    }

    fn decode(&self, completion: Completion) -> Result<T, ServiceError> {
        debug_assert_eq!(
            completion.correlation, self.correlation,
            "completion correlation mismatch: per-ticket slots are one-shot"
        );
        (self.decode)(completion.response)
    }

    /// Blocks until the completion arrives and returns the decoded result —
    /// the rendezvous the blocking API methods are thin wrappers over.
    pub fn wait(self) -> Result<T, ServiceError> {
        match self.slot.recv() {
            Ok(completion) => self.decode(completion),
            Err(_) => Err(ServiceError::Disconnected),
        }
    }

    /// Waits at most `timeout` for the completion. On timeout the ticket
    /// comes back untouched in [`TicketWait::Pending`] — the operation is
    /// still in flight and can be waited on again.
    pub fn wait_timeout(self, timeout: Duration) -> TicketWait<T> {
        match self.slot.recv_timeout(timeout) {
            Ok(completion) => TicketWait::Ready(self.decode(completion)),
            Err(RecvTimeoutError::Timeout) => TicketWait::Pending(self),
            Err(RecvTimeoutError::Disconnected) => {
                TicketWait::Ready(Err(ServiceError::Disconnected))
            }
        }
    }

    /// Non-blocking completion poll.
    pub fn try_take(self) -> TicketWait<T> {
        match self.slot.try_recv() {
            Ok(completion) => TicketWait::Ready(self.decode(completion)),
            Err(TryRecvError::Empty) => TicketWait::Pending(self),
            Err(TryRecvError::Disconnected) => TicketWait::Ready(Err(ServiceError::Disconnected)),
        }
    }
}

impl<T> std::fmt::Debug for Ticket<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket")
            .field("correlation", &self.correlation)
            .field("shard", &self.shard)
            .finish()
    }
}
