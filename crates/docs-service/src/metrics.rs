//! Per-operation and per-shard service accounting, plus the service's
//! observability surface: latency distributions, request traces, the
//! control-plane journal, and one-call exposition of all of it.
//!
//! Figure 8(b) reports the *worst-case* assignment time; a deployed service
//! must measure it while other requests contend for the inference state.
//! [`ServiceMetrics`] is shared (via `Arc`) between every shard thread and
//! every client handle:
//!
//! * per-operation latency as **lock-free log-bucketed histograms**
//!   ([`docs_obs::AtomicHistogram`]), one per `OpKind` × shard — recording
//!   is a handful of relaxed `fetch_add`s (≈ 10–20 ns), and any quantile
//!   (p50/p99/p999) is available per kind, per shard, or merged,
//! * per-shard queue depth (current + high-water mark) and service-time
//!   counters on atomics, updated on the enqueue/dequeue hot path,
//! * pipeline-stage histograms: group-commit batch size and fdatasync
//!   duration, replication ship→applied lag, dispatch park-to-assign
//!   wait, router hop time, and migration fence windows,
//! * a sampled-request [`FlightRecorder`] and a [`ControlJournal`] of
//!   promotions / fences / migrations / failures,
//! * [`ServiceMetrics::render_prometheus`] and
//!   [`ServiceMetrics::snapshot_json`]: every counter, gauge, and
//!   histogram above in one coherent exposition.

use docs_obs::{
    AtomicHistogram, ControlJournal, Exposition, FlightRecorder, LatencyHistogram, MetricKind,
    TraceContext,
};
use docs_types::TraceId;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Decrements a gauge without wrapping below zero; returns the value seen
/// before a successful decrement (`None` when the gauge was already zero).
fn saturating_dec(counter: &AtomicUsize) -> Option<usize> {
    counter
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| d.checked_sub(1))
        .ok()
}

/// The operation kinds the service distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// OTA assignment (`RequestWork`).
    Assign,
    /// Golden-HIT submission.
    Golden,
    /// Answer submission (incremental TI).
    Submit,
    /// Batched answer submission (one round-trip, one log record).
    SubmitBatch,
    /// Final inference + report.
    Finish,
    /// Campaign registration (control plane).
    Create,
    /// Pure read (status, peeked report, serialized state) — the
    /// operations a follower replica serves locally.
    Read,
    /// Replication plane: snapshot install or replicated event apply on a
    /// follower.
    Replicate,
    /// Push-dispatch plane: subscription registration/cancellation, plus
    /// the park-to-dispatch wait of every parked subscription (recorded
    /// when the shard resolves it) — so the push plane's time-to-assignment
    /// is visible next to `Assign`'s pull latency.
    Subscribe,
    /// Cluster control plane: fencing, migration intake, directory
    /// installs — ownership bookkeeping, not campaign work.
    Cluster,
}

impl OpKind {
    /// Every kind, in declaration order. The histogram table, exposition,
    /// and [`OpKind::index`] are all derived from this array, so adding a
    /// variant means adding it here (and the cross-check test fails if the
    /// orders drift).
    pub const ALL: [OpKind; 10] = [
        OpKind::Assign,
        OpKind::Golden,
        OpKind::Submit,
        OpKind::SubmitBatch,
        OpKind::Finish,
        OpKind::Create,
        OpKind::Read,
        OpKind::Replicate,
        OpKind::Subscribe,
        OpKind::Cluster,
    ];

    #[inline]
    fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case label used by the exposition.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Assign => "assign",
            OpKind::Golden => "golden",
            OpKind::Submit => "submit",
            OpKind::SubmitBatch => "submit_batch",
            OpKind::Finish => "finish",
            OpKind::Create => "create",
            OpKind::Read => "read",
            OpKind::Replicate => "replicate",
            OpKind::Subscribe => "subscribe",
            OpKind::Cluster => "cluster",
        }
    }
}

/// Derived from the enum's own [`OpKind::ALL`] — no hand-maintained count
/// to fall out of sync when a kind is added.
const NUM_KINDS: usize = OpKind::ALL.len();

/// Aggregated statistics for one operation kind, derived from its
/// latency histogram (count and sum are exact; quantiles live on
/// [`ServiceMetrics::op_histogram`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OpStats {
    /// Number of completed operations.
    pub count: u64,
    /// Total service time across them.
    pub total: Duration,
    /// Worst single-operation service time (Figure 8(b)'s metric).
    pub max: Duration,
}

impl OpStats {
    /// Mean service time, or zero when nothing was recorded.
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            self.total / self.count as u32
        }
    }
}

/// Lock-free per-shard counters (the shard thread and all handles touch
/// these on every request).
#[derive(Debug, Default)]
struct ShardCounters {
    /// Requests currently enqueued for (or being processed by) the shard,
    /// *plus* blocking submitters parked on its bounded ingress queue —
    /// the increment happens at admission-attempt time, so the gauge
    /// measures total demand on the shard and can exceed the configured
    /// queue capacity while backpressure is engaged.
    depth: AtomicUsize,
    /// High-water mark of `depth`.
    max_depth: AtomicUsize,
    /// Tickets issued against this shard and not yet resolved (gauge):
    /// completions the shard still owes, or that clients have not yet
    /// harvested/dropped.
    in_flight: AtomicUsize,
    /// Fail-fast submissions refused because the shard's bounded ingress
    /// queue was full (counter).
    busy_rejections: AtomicU64,
    /// Requests the shard has finished processing.
    processed: AtomicU64,
    /// Total busy time, in nanoseconds.
    busy_nanos: AtomicU64,
    /// Worst single-request service time, in nanoseconds.
    max_nanos: AtomicU64,
    /// Events appended to this shard's campaign log (gauge).
    events_logged: AtomicU64,
    /// Group-commit flushes this shard's log has performed (gauge).
    log_flushes: AtomicU64,
    /// Wall time of the most recent flush, in nanoseconds (gauge).
    last_flush_nanos: AtomicU64,
    /// Worst single flush, in nanoseconds.
    max_flush_nanos: AtomicU64,
    /// Bytes across this shard's on-disk log segments (gauge).
    log_bytes: AtomicU64,
    /// Assignment subscriptions currently parked in this shard's
    /// subscription table (gauge).
    subscriptions: AtomicUsize,
    /// Tasks pushed to subscribed workers by the dispatch plane (counter).
    dispatched_tasks: AtomicU64,
    /// Pushed HITs whose worker lease expired before an answer came back —
    /// their cap slot was released and the tasks became re-dispatchable
    /// (counter).
    dispatch_timeouts: AtomicU64,
}

/// Snapshot of one shard's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Requests currently queued on (or executing at) the shard, plus
    /// blocking submitters parked on its bounded ingress queue — total
    /// demand, which can exceed `ServiceConfig::queue_capacity` while
    /// backpressure is engaged.
    pub queued: usize,
    /// Deepest `queued` has ever been (demand high-water mark; same
    /// parked-submitter caveat as `queued`).
    pub max_queued: usize,
    /// Tickets issued against the shard and not yet resolved.
    pub in_flight: usize,
    /// Fail-fast submissions refused with `Busy` because the shard's
    /// bounded ingress queue was full.
    pub busy_rejections: u64,
    /// Requests processed by the shard.
    pub processed: u64,
    /// Cumulative busy time.
    pub busy: Duration,
    /// Worst single-request service time on this shard.
    pub max_latency: Duration,
    /// Events appended to this shard's campaign log.
    pub events_logged: u64,
    /// Group-commit flushes performed by this shard's log.
    pub log_flushes: u64,
    /// Wall time of the shard's most recent log flush.
    pub last_flush: Duration,
    /// Worst single log flush on this shard.
    pub max_flush: Duration,
    /// Bytes across the shard's on-disk log segments.
    pub log_bytes: u64,
    /// Assignment subscriptions currently parked on the shard.
    pub subscriptions: usize,
    /// Tasks pushed to subscribed workers by the dispatch plane.
    pub dispatched_tasks: u64,
    /// Pushed HITs whose worker lease timed out (cap slot released, tasks
    /// re-dispatchable).
    pub dispatch_timeouts: u64,
}

/// Service-wide durability counters (replay happens before the pool runs,
/// snapshots on shard threads; both are low-frequency).
#[derive(Debug, Default)]
struct DurabilityCounters {
    events_replayed: AtomicU64,
    replay_rejected: AtomicU64,
    snapshots_loaded: AtomicU64,
    snapshots_written: AtomicU64,
    torn_tail_recoveries: AtomicU64,
}

/// Service-wide replication counters: the shipping side on a primary, the
/// applying side on a follower (a service plays one role at a time, so the
/// other side's counters simply stay zero).
#[derive(Debug, Default)]
struct ReplicationCounters {
    frames_shipped: AtomicU64,
    events_shipped: AtomicU64,
    events_applied: AtomicU64,
    snapshots_installed: AtomicU64,
    read_only_rejections: AtomicU64,
}

/// Service-wide cluster-routing counters: what the ownership admission
/// check decided, and what the migration machinery did to this node.
#[derive(Debug, Default)]
struct RoutingCounters {
    wrong_node_rejections: AtomicU64,
    maps_installed: AtomicU64,
    campaigns_fenced: AtomicU64,
    migrations_adopted: AtomicU64,
    forwarded_submissions: AtomicU64,
}

/// Pipeline-stage histograms: where a durable replicated request's time
/// goes *between* the per-operation service times — group commit, the
/// replication stream, the push plane, routing, and migrations.
#[derive(Debug, Default)]
struct PipelineHistograms {
    /// Events per group-commit flush (a size distribution, recorded
    /// through the nanosecond histogram machinery — buckets are unitless).
    flush_batch_events: AtomicHistogram,
    /// Wall time of one WAL flush (write + fdatasync), ns.
    flush_sync_ns: AtomicHistogram,
    /// Ship→applied lag of replicated events as observed by the follower
    /// applier, ns.
    replication_lag_ns: AtomicHistogram,
    /// Park→assignment wait of push-dispatch subscriptions, ns.
    dispatch_park_ns: AtomicHistogram,
    /// One routing hop (map consult / redirect absorb + retry), ns.
    router_hop_ns: AtomicHistogram,
    /// Write-unavailability window of one campaign migration, ns.
    fence_window_ns: AtomicHistogram,
}

/// Trace sampling state: `every == 0` disables tracing; `every == n`
/// samples every `n`-th submission (round-robin over a shared counter).
#[derive(Debug, Default)]
struct TraceSampling {
    every: AtomicU64,
    counter: AtomicU64,
}

/// Replication-hub health as published into the metrics surface, so the
/// exposition can cover replication without callers reaching for the
/// hub's bespoke stats methods. The shape mirrors the hub's `HubStats` +
/// `FollowerLag` (docs-replication publishes it; docs-service only
/// renders it — the dependency points this way because docs-replication
/// already depends on docs-service).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HubHealth {
    /// Frames fanned out (event and snapshot frames alike).
    pub frames_shipped: u64,
    /// Events carried inside event frames.
    pub events_shipped: u64,
    /// Encoded wire bytes of event frames fanned out.
    pub bytes_shipped: u64,
    /// Encoded wire bytes of snapshot frames fanned out.
    pub snapshot_bytes_shipped: u64,
    /// Currently subscribed followers.
    pub followers: usize,
    /// Followers cut off for trailing the pump beyond their stream bound.
    pub followers_dropped: u64,
    /// Per-follower lag, one entry per subscribed follower.
    pub follower_lags: Vec<FollowerLagSample>,
}

/// One follower's lag as published into the exposition.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FollowerLagSample {
    /// The name the follower subscribed under.
    pub name: String,
    /// Shipped-but-unacked events, summed across campaigns.
    pub lag_events: u64,
    /// Highest acked per-campaign watermark (coarse progress indicator).
    pub acked_max: u64,
}

/// Aggregate cluster-routing view across the whole service — surfaced by
/// [`ServiceMetrics::routing`] next to the replication counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoutingStats {
    /// Mutations refused with `RejectReason::WrongNode` (fenced, in
    /// intake, or directory-placed elsewhere).
    pub wrong_node_rejections: u64,
    /// Cluster maps installed (counted once per shard per accepted
    /// install).
    pub maps_installed: u64,
    /// Campaigns fenced away from this node.
    pub campaigns_fenced: u64,
    /// Campaigns adopted through a completed migration intake.
    pub migrations_adopted: u64,
    /// Submissions that reached this node after a `WrongNode` redirect
    /// elsewhere — the forwarded tail of a migration's fence window
    /// (counted by the router on successful retry).
    pub forwarded_submissions: u64,
}

impl std::fmt::Display for RoutingStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "routing: {} wrong-node rejections, {} maps installed, \
             {} campaigns fenced, {} migrations adopted, {} forwarded submissions",
            self.wrong_node_rejections,
            self.maps_installed,
            self.campaigns_fenced,
            self.migrations_adopted,
            self.forwarded_submissions
        )
    }
}

/// Aggregate replication view across the whole service.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicationStats {
    /// Frames handed to the replication sink (primary side).
    pub frames_shipped: u64,
    /// Durable events shipped inside those frames (primary side).
    pub events_shipped: u64,
    /// Replicated events applied through the state machine (follower side).
    pub events_applied: u64,
    /// Snapshots installed from the stream (follower side).
    pub snapshots_installed: u64,
    /// Mutations refused with `RejectReason::ReadOnlyReplica` (follower
    /// side).
    pub read_only_rejections: u64,
}

/// Aggregate durability/recovery view across the whole service.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurabilityStats {
    /// Events appended across every shard's campaign log.
    pub events_logged: u64,
    /// Group-commit flushes across every shard.
    pub log_flushes: u64,
    /// Most recent flush among the shards (max of the per-shard gauges).
    pub last_flush: Duration,
    /// Worst flush across all shards.
    pub max_flush: Duration,
    /// Total on-disk log bytes across shards.
    pub log_bytes: u64,
    /// Events replayed during [`recovery`](crate::DocsService::recover).
    pub events_replayed: u64,
    /// Replayed events whose application was (deterministically) rejected.
    pub replay_rejected: u64,
    /// Campaign snapshots loaded during recovery.
    pub snapshots_loaded: u64,
    /// Campaign snapshots written while serving (creation, cadence,
    /// recovery re-baseline).
    pub snapshots_written: u64,
    /// Log segments whose recovery scan ended in a torn record — the
    /// expected artifact of a crash mid-append, tolerated and counted
    /// (previously classified by `Wal::replay_all` but silently dropped
    /// after recovery).
    pub torn_tail_recoveries: u64,
}

impl ShardStats {
    /// Mean per-request service time on this shard.
    pub fn mean_latency(&self) -> Duration {
        if self.processed == 0 {
            Duration::ZERO
        } else {
            // u128 math: `processed` can exceed u32::MAX on a long-lived
            // shard, where a `Duration / u32` division would truncate.
            Duration::from_nanos((self.busy.as_nanos() / self.processed as u128) as u64)
        }
    }
}

/// One shard's per-kind latency histograms.
type KindHistograms = [AtomicHistogram; NUM_KINDS];

fn new_kind_histograms() -> KindHistograms {
    std::array::from_fn(|_| AtomicHistogram::new())
}

/// Thread-safe recorder shared by the shard pool and all handles.
#[derive(Debug, Clone)]
pub struct ServiceMetrics {
    /// Per-shard × per-kind latency histograms (lock-free recording).
    ops: Arc<Vec<KindHistograms>>,
    shards: Arc<Vec<ShardCounters>>,
    durability: Arc<DurabilityCounters>,
    replication: Arc<ReplicationCounters>,
    routing: Arc<RoutingCounters>,
    pipeline: Arc<PipelineHistograms>,
    hub: Arc<Mutex<Option<HubHealth>>>,
    journal: Arc<ControlJournal>,
    flight: Arc<FlightRecorder>,
    trace: Arc<TraceSampling>,
}

impl Default for ServiceMetrics {
    fn default() -> Self {
        Self::new(1)
    }
}

impl ServiceMetrics {
    /// Creates an empty recorder for a pool of `shards` shards.
    pub fn new(shards: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        ServiceMetrics {
            ops: Arc::new((0..shards).map(|_| new_kind_histograms()).collect()),
            shards: Arc::new((0..shards).map(|_| ShardCounters::default()).collect()),
            durability: Arc::new(DurabilityCounters::default()),
            replication: Arc::new(ReplicationCounters::default()),
            routing: Arc::new(RoutingCounters::default()),
            pipeline: Arc::new(PipelineHistograms::default()),
            hub: Arc::new(Mutex::new(None)),
            journal: Arc::new(ControlJournal::new()),
            flight: Arc::new(FlightRecorder::new()),
            trace: Arc::new(TraceSampling::default()),
        }
    }

    /// Number of shards being tracked.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Records one completed operation with no shard attribution (client
    /// side wrappers; shard threads use [`ServiceMetrics::record_on`]).
    /// Lands in shard 0's histogram table.
    pub fn record(&self, kind: OpKind, elapsed: Duration) {
        self.record_on(0, kind, elapsed);
    }

    /// Records one completed operation against the shard that served it.
    /// Lock-free: a few relaxed `fetch_add`s on the shard's histogram.
    pub fn record_on(&self, shard: usize, kind: OpKind, elapsed: Duration) {
        self.ops[shard][kind.index()].record(elapsed);
    }

    /// Snapshot of one operation kind's aggregate statistics across all
    /// shards (count and total are exact; quantiles via
    /// [`ServiceMetrics::op_histogram`]).
    pub fn stats(&self, kind: OpKind) -> OpStats {
        let mut out = OpStats::default();
        for shard in self.ops.iter() {
            let h = &shard[kind.index()];
            out.count += h.count();
            out.total += Duration::from_nanos(h.sum_ns());
            out.max = out.max.max(Duration::from_nanos(h.max_ns()));
        }
        out
    }

    /// One kind's full latency distribution, merged across shards.
    pub fn op_histogram(&self, kind: OpKind) -> LatencyHistogram {
        let mut merged = LatencyHistogram::new();
        for shard in self.ops.iter() {
            merged.merge(&shard[kind.index()].snapshot());
        }
        merged
    }

    /// One kind's latency distribution on one shard.
    pub fn op_histogram_on(&self, shard: usize, kind: OpKind) -> LatencyHistogram {
        self.ops[shard][kind.index()].snapshot()
    }

    /// Total operations recorded across all kinds.
    pub fn total_ops(&self) -> u64 {
        self.ops
            .iter()
            .flat_map(|shard| shard.iter())
            .map(|h| h.count())
            .sum()
    }

    /// Notes a request entering a shard's queue (called by handles before
    /// sending); returns the queue depth including it.
    ///
    /// The depth is *provisional* until the send outcome is known: publish
    /// it as the high-water mark with [`ServiceMetrics::shard_send_recorded`]
    /// once the request actually reached the queue, or roll it back with
    /// [`ServiceMetrics::shard_enqueue_failed`]. Recording the mark eagerly
    /// here was the read-after-add race: a failed send left a phantom
    /// `max_depth` no real request ever reached.
    pub fn shard_enqueued(&self, shard: usize) -> usize {
        self.shards[shard].depth.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Publishes the high-water mark for a request that was successfully
    /// enqueued at `depth` (the value [`ServiceMetrics::shard_enqueued`]
    /// returned).
    pub fn shard_send_recorded(&self, shard: usize, depth: usize) {
        self.shards[shard]
            .max_depth
            .fetch_max(depth, Ordering::Relaxed);
    }

    /// Rolls back [`ServiceMetrics::shard_enqueued`] when the send failed:
    /// the request never entered the queue, so neither the depth nor the
    /// high-water mark may keep counting it.
    pub fn shard_enqueue_failed(&self, shard: usize) {
        // Saturating: a stray rollback on an empty gauge must not wrap to
        // usize::MAX (a wrapped depth would also poison every later
        // high-water mark).
        saturating_dec(&self.shards[shard].depth);
    }

    /// Notes a ticket issued against `shard` (one operation entering
    /// flight). Paired with [`ServiceMetrics::ticket_resolved`] when the
    /// ticket resolves or is dropped.
    pub fn ticket_issued(&self, shard: usize) {
        self.shards[shard].in_flight.fetch_add(1, Ordering::Relaxed);
    }

    /// Notes a ticket resolved (completion taken, ticket dropped, or the
    /// submission rolled back). Saturating for the same reason as the
    /// queue-depth gauge: a stray decrement must degrade to "slightly
    /// wrong", never wrap to `usize::MAX` in-flight tickets.
    pub fn ticket_resolved(&self, shard: usize) {
        saturating_dec(&self.shards[shard].in_flight);
    }

    /// Counts one fail-fast submission refused because `shard`'s bounded
    /// ingress queue was full.
    pub fn busy_rejection(&self, shard: usize) {
        self.shards[shard]
            .busy_rejections
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Notes a request fully processed by its shard thread.
    pub fn shard_processed(&self, shard: usize, elapsed: Duration) {
        let c = &self.shards[shard];
        // Saturating for the same reason as in `shard_enqueue_failed`: the
        // gauge must degrade to "slightly wrong", never to a wrapped
        // usize::MAX queue depth.
        saturating_dec(&c.depth);
        c.processed.fetch_add(1, Ordering::Relaxed);
        let nanos = elapsed.as_nanos().min(u64::MAX as u128) as u64;
        c.busy_nanos.fetch_add(nanos, Ordering::Relaxed);
        c.max_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Notes an assignment subscription parked in `shard`'s subscription
    /// table. Paired with [`ServiceMetrics::subscription_resolved`] when
    /// the shard dispatches, replaces, or cancels it.
    pub fn subscription_parked(&self, shard: usize) {
        self.shards[shard]
            .subscriptions
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Notes a parked subscription leaving `shard`'s table (dispatched,
    /// replaced, or cancelled). Saturating like the other gauges: a stray
    /// decrement degrades to "slightly wrong", never wraps.
    pub fn subscription_resolved(&self, shard: usize) {
        saturating_dec(&self.shards[shard].subscriptions);
    }

    /// Counts `tasks` pushed to a subscribed worker by `shard`'s dispatch
    /// plane.
    pub fn tasks_dispatched(&self, shard: usize, tasks: u64) {
        self.shards[shard]
            .dispatched_tasks
            .fetch_add(tasks, Ordering::Relaxed);
    }

    /// Counts one pushed HIT whose worker lease expired before its answers
    /// arrived: the cap slot is released and the tasks are re-dispatchable.
    pub fn dispatch_timeout(&self, shard: usize) {
        self.shards[shard]
            .dispatch_timeouts
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Publishes a shard's campaign-log gauges (called by the shard thread
    /// on flush boundaries and at shutdown).
    pub fn shard_log_observed(
        &self,
        shard: usize,
        events_logged: u64,
        flushes: u64,
        last_flush: Duration,
        max_flush: Duration,
        log_bytes: u64,
    ) {
        let c = &self.shards[shard];
        c.events_logged.store(events_logged, Ordering::Relaxed);
        c.log_flushes.store(flushes, Ordering::Relaxed);
        c.last_flush_nanos.store(
            last_flush.as_nanos().min(u64::MAX as u128) as u64,
            Ordering::Relaxed,
        );
        c.max_flush_nanos.fetch_max(
            max_flush.as_nanos().min(u64::MAX as u128) as u64,
            Ordering::Relaxed,
        );
        c.log_bytes.store(log_bytes, Ordering::Relaxed);
    }

    /// Records events (and deterministic rejections) replayed during
    /// recovery.
    pub fn replay_recorded(&self, applied: u64, rejected: u64) {
        self.durability
            .events_replayed
            .fetch_add(applied, Ordering::Relaxed);
        self.durability
            .replay_rejected
            .fetch_add(rejected, Ordering::Relaxed);
    }

    /// Records one campaign snapshot loaded during recovery.
    pub fn snapshot_loaded(&self) {
        self.durability
            .snapshots_loaded
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records one campaign snapshot written while serving.
    pub fn snapshot_written(&self) {
        self.durability
            .snapshots_written
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records log segments whose recovery scan ended in a torn record
    /// (tolerated crash artifacts, surfaced instead of dropped).
    pub fn torn_tail_recovered(&self, segments: u64) {
        self.durability
            .torn_tail_recoveries
            .fetch_add(segments, Ordering::Relaxed);
    }

    /// Records one replication frame (carrying `events` durable events)
    /// handed to the replication sink.
    pub fn frame_shipped(&self, events: u64) {
        self.replication
            .frames_shipped
            .fetch_add(1, Ordering::Relaxed);
        self.replication
            .events_shipped
            .fetch_add(events, Ordering::Relaxed);
    }

    /// Records one replicated event applied on a follower.
    pub fn replicated_applied(&self) {
        self.replication
            .events_applied
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records one snapshot installed from the replication stream.
    pub fn snapshot_installed(&self) {
        self.replication
            .snapshots_installed
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one mutation refused because this service is a read-only
    /// follower.
    pub fn read_only_rejection(&self) {
        self.replication
            .read_only_rejections
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one mutation refused with `RejectReason::WrongNode`.
    pub fn wrong_node_rejection(&self) {
        self.routing
            .wrong_node_rejections
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one accepted cluster-map install (per shard).
    pub fn map_installed(&self) {
        self.routing.maps_installed.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one campaign fenced away from this node.
    pub fn campaign_fenced(&self) {
        self.routing
            .campaigns_fenced
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one campaign adopted through migration intake.
    pub fn migration_adopted(&self) {
        self.routing
            .migrations_adopted
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one submission that landed here after a `WrongNode`
    /// redirect elsewhere (recorded by the routing client on successful
    /// retry against this node).
    pub fn forwarded_submission(&self) {
        self.routing
            .forwarded_submissions
            .fetch_add(1, Ordering::Relaxed);
    }

    // ---- pipeline-stage histograms -------------------------------------

    /// Records one group-commit flush: `events` in the batch, `sync` wall
    /// time for the write + fdatasync (published by the storage layer's
    /// flush observer).
    pub fn flush_recorded(&self, events: u64, sync: Duration) {
        self.pipeline.flush_batch_events.record_ns(events);
        self.pipeline.flush_sync_ns.record(sync);
    }

    /// Records one replicated event's ship→applied lag as observed by the
    /// follower applier.
    pub fn replication_lag_recorded(&self, lag: Duration) {
        self.pipeline.replication_lag_ns.record(lag);
    }

    /// Records one push-dispatch subscription's park→assignment wait.
    pub fn dispatch_park_recorded(&self, wait: Duration) {
        self.pipeline.dispatch_park_ns.record(wait);
    }

    /// Records one routing hop (map consult, or redirect absorb + retry).
    pub fn router_hop_recorded(&self, hop: Duration) {
        self.pipeline.router_hop_ns.record(hop);
    }

    /// Records one campaign migration's write-fence window.
    pub fn fence_window_recorded(&self, window: Duration) {
        self.pipeline.fence_window_ns.record(window);
    }

    /// Distribution of events per group-commit flush (bucket values are
    /// counts, not nanoseconds).
    pub fn flush_batch_histogram(&self) -> LatencyHistogram {
        self.pipeline.flush_batch_events.snapshot()
    }

    /// Distribution of WAL flush (write + fdatasync) wall times.
    pub fn flush_sync_histogram(&self) -> LatencyHistogram {
        self.pipeline.flush_sync_ns.snapshot()
    }

    /// Distribution of replication ship→applied lag.
    pub fn replication_lag_histogram(&self) -> LatencyHistogram {
        self.pipeline.replication_lag_ns.snapshot()
    }

    /// Distribution of push-dispatch park→assignment waits.
    pub fn dispatch_park_histogram(&self) -> LatencyHistogram {
        self.pipeline.dispatch_park_ns.snapshot()
    }

    /// Distribution of routing hop times.
    pub fn router_hop_histogram(&self) -> LatencyHistogram {
        self.pipeline.router_hop_ns.snapshot()
    }

    /// Distribution of migration fence windows.
    pub fn fence_window_histogram(&self) -> LatencyHistogram {
        self.pipeline.fence_window_ns.snapshot()
    }

    // ---- hub health ----------------------------------------------------

    /// Publishes the replication hub's health (called by the hub pump, so
    /// the exposition always has a fresh copy without polling the hub).
    pub fn hub_observed(&self, health: HubHealth) {
        *self.hub.lock() = Some(health);
    }

    /// The most recently published hub health, if a hub is attached.
    pub fn hub_health(&self) -> Option<HubHealth> {
        self.hub.lock().clone()
    }

    // ---- tracing and the control journal -------------------------------

    /// Enables trace sampling: every `every`-th submission carries a
    /// [`TraceContext`] (0 disables tracing; 1 traces everything).
    pub fn set_trace_sampling(&self, every: u64) {
        self.trace.every.store(every, Ordering::Relaxed);
    }

    /// Current sampling interval (0 = tracing disabled).
    pub fn trace_sampling(&self) -> u64 {
        self.trace.every.load(Ordering::Relaxed)
    }

    /// Starts a trace for this submission if the sampler selects it. The
    /// unsampled path is one relaxed load.
    pub fn maybe_trace(&self, correlation: u64) -> Option<TraceContext> {
        let every = self.trace.every.load(Ordering::Relaxed);
        if every == 0 {
            return None;
        }
        let n = self.trace.counter.fetch_add(1, Ordering::Relaxed);
        if n.is_multiple_of(every) {
            Some(TraceContext::start(TraceId(correlation)))
        } else {
            None
        }
    }

    /// The flight recorder holding recent sampled traces.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// The control-plane journal.
    pub fn journal(&self) -> &ControlJournal {
        &self.journal
    }

    // ---- aggregate views ----------------------------------------------

    /// Aggregate cluster-routing view.
    pub fn routing(&self) -> RoutingStats {
        RoutingStats {
            wrong_node_rejections: self.routing.wrong_node_rejections.load(Ordering::Relaxed),
            maps_installed: self.routing.maps_installed.load(Ordering::Relaxed),
            campaigns_fenced: self.routing.campaigns_fenced.load(Ordering::Relaxed),
            migrations_adopted: self.routing.migrations_adopted.load(Ordering::Relaxed),
            forwarded_submissions: self.routing.forwarded_submissions.load(Ordering::Relaxed),
        }
    }

    /// Aggregate replication view (shipping side on a primary, applying
    /// side on a follower).
    pub fn replication(&self) -> ReplicationStats {
        ReplicationStats {
            frames_shipped: self.replication.frames_shipped.load(Ordering::Relaxed),
            events_shipped: self.replication.events_shipped.load(Ordering::Relaxed),
            events_applied: self.replication.events_applied.load(Ordering::Relaxed),
            snapshots_installed: self.replication.snapshots_installed.load(Ordering::Relaxed),
            read_only_rejections: self
                .replication
                .read_only_rejections
                .load(Ordering::Relaxed),
        }
    }

    /// Aggregate durability view: per-shard log gauges summed (last-flush
    /// reported as the max across shards) plus the recovery counters.
    pub fn durability(&self) -> DurabilityStats {
        let mut stats = DurabilityStats {
            events_replayed: self.durability.events_replayed.load(Ordering::Relaxed),
            replay_rejected: self.durability.replay_rejected.load(Ordering::Relaxed),
            snapshots_loaded: self.durability.snapshots_loaded.load(Ordering::Relaxed),
            snapshots_written: self.durability.snapshots_written.load(Ordering::Relaxed),
            torn_tail_recoveries: self.durability.torn_tail_recoveries.load(Ordering::Relaxed),
            ..Default::default()
        };
        for shard in self.all_shards() {
            stats.events_logged += shard.events_logged;
            stats.log_flushes += shard.log_flushes;
            stats.log_bytes += shard.log_bytes;
            stats.last_flush = stats.last_flush.max(shard.last_flush);
            stats.max_flush = stats.max_flush.max(shard.max_flush);
        }
        stats
    }

    /// Snapshot of one shard's counters.
    pub fn shard(&self, shard: usize) -> ShardStats {
        let c = &self.shards[shard];
        ShardStats {
            queued: c.depth.load(Ordering::Relaxed),
            max_queued: c.max_depth.load(Ordering::Relaxed),
            in_flight: c.in_flight.load(Ordering::Relaxed),
            busy_rejections: c.busy_rejections.load(Ordering::Relaxed),
            processed: c.processed.load(Ordering::Relaxed),
            busy: Duration::from_nanos(c.busy_nanos.load(Ordering::Relaxed)),
            max_latency: Duration::from_nanos(c.max_nanos.load(Ordering::Relaxed)),
            events_logged: c.events_logged.load(Ordering::Relaxed),
            log_flushes: c.log_flushes.load(Ordering::Relaxed),
            last_flush: Duration::from_nanos(c.last_flush_nanos.load(Ordering::Relaxed)),
            max_flush: Duration::from_nanos(c.max_flush_nanos.load(Ordering::Relaxed)),
            log_bytes: c.log_bytes.load(Ordering::Relaxed),
            subscriptions: c.subscriptions.load(Ordering::Relaxed),
            dispatched_tasks: c.dispatched_tasks.load(Ordering::Relaxed),
            dispatch_timeouts: c.dispatch_timeouts.load(Ordering::Relaxed),
        }
    }

    /// Snapshots of every shard, in shard order.
    pub fn all_shards(&self) -> Vec<ShardStats> {
        (0..self.shards.len()).map(|s| self.shard(s)).collect()
    }

    // ---- exposition ----------------------------------------------------

    /// Builds one coherent exposition of every counter, gauge, and
    /// histogram the service tracks: per-kind × per-shard op latencies,
    /// shard queues, durability/replication/routing counters, pipeline
    /// histograms, hub health with per-follower lag, and the journal's
    /// per-kind event counts.
    pub fn exposition(&self) -> Exposition {
        let mut expo = Exposition::new();
        let shard_label = |s: usize| s.to_string();

        // Per-kind × per-shard latency summaries (non-empty pairs only).
        {
            let mut counts = expo.family(
                "docs_ops_total",
                "Completed operations by kind and shard.",
                MetricKind::Counter,
            );
            for (s, kinds) in self.ops.iter().enumerate() {
                let shard = shard_label(s);
                for kind in OpKind::ALL {
                    let n = kinds[kind.index()].count();
                    if n > 0 {
                        counts.sample(&[("kind", kind.name()), ("shard", &shard)], n as f64);
                    }
                }
            }
        }
        {
            let mut lat = expo.family(
                "docs_op_latency_ns",
                "Operation service time quantiles by kind and shard.",
                MetricKind::Summary,
            );
            for (s, kinds) in self.ops.iter().enumerate() {
                let shard = shard_label(s);
                for kind in OpKind::ALL {
                    let h = kinds[kind.index()].snapshot();
                    if h.count() == 0 {
                        continue;
                    }
                    for (q, label) in [(0.5, "0.5"), (0.99, "0.99"), (0.999, "0.999")] {
                        lat.sample(
                            &[
                                ("kind", kind.name()),
                                ("shard", &shard),
                                ("quantile", label),
                            ],
                            h.quantile(q) as f64,
                        );
                    }
                    lat.sample(
                        &[("kind", kind.name()), ("shard", &shard), ("quantile", "1")],
                        h.max_ns() as f64,
                    );
                }
            }
        }

        // Per-shard gauges and counters.
        macro_rules! shard_family {
            ($name:expr, $help:expr, $kind:expr, $field:ident) => {{
                let mut fam = expo.family($name, $help, $kind);
                for (s, stats) in self.all_shards().iter().enumerate() {
                    fam.sample(&[("shard", &shard_label(s))], stats.$field as f64);
                }
            }};
        }
        shard_family!(
            "docs_shard_queue_depth",
            "Requests queued on or executing at the shard (plus parked submitters).",
            MetricKind::Gauge,
            queued
        );
        shard_family!(
            "docs_shard_queue_depth_max",
            "High-water mark of the shard's queue depth.",
            MetricKind::Gauge,
            max_queued
        );
        shard_family!(
            "docs_shard_in_flight",
            "Tickets issued against the shard and not yet resolved.",
            MetricKind::Gauge,
            in_flight
        );
        shard_family!(
            "docs_shard_busy_rejections_total",
            "Fail-fast submissions refused because the ingress queue was full.",
            MetricKind::Counter,
            busy_rejections
        );
        shard_family!(
            "docs_shard_processed_total",
            "Requests processed by the shard.",
            MetricKind::Counter,
            processed
        );
        shard_family!(
            "docs_shard_events_logged",
            "Events appended to the shard's campaign log.",
            MetricKind::Gauge,
            events_logged
        );
        shard_family!(
            "docs_shard_log_flushes",
            "Group-commit flushes performed by the shard's log.",
            MetricKind::Gauge,
            log_flushes
        );
        shard_family!(
            "docs_shard_log_bytes",
            "Bytes across the shard's on-disk log segments.",
            MetricKind::Gauge,
            log_bytes
        );
        shard_family!(
            "docs_shard_subscriptions",
            "Assignment subscriptions parked on the shard.",
            MetricKind::Gauge,
            subscriptions
        );
        shard_family!(
            "docs_shard_dispatched_tasks_total",
            "Tasks pushed to subscribed workers by the dispatch plane.",
            MetricKind::Counter,
            dispatched_tasks
        );
        shard_family!(
            "docs_shard_dispatch_timeouts_total",
            "Pushed HITs whose worker lease expired (tasks re-dispatchable).",
            MetricKind::Counter,
            dispatch_timeouts
        );

        // Durability / replication / routing counters.
        let d = self.durability();
        expo.scalar(
            "docs_replay_events_total",
            "Events replayed during recovery.",
            MetricKind::Counter,
            d.events_replayed as f64,
        );
        expo.scalar(
            "docs_replay_rejected_total",
            "Replayed events deterministically rejected.",
            MetricKind::Counter,
            d.replay_rejected as f64,
        );
        expo.scalar(
            "docs_snapshots_loaded_total",
            "Campaign snapshots loaded during recovery.",
            MetricKind::Counter,
            d.snapshots_loaded as f64,
        );
        expo.scalar(
            "docs_snapshots_written_total",
            "Campaign snapshots written while serving.",
            MetricKind::Counter,
            d.snapshots_written as f64,
        );
        expo.scalar(
            "docs_torn_tail_recoveries_total",
            "Log segments whose recovery scan ended in a torn record.",
            MetricKind::Counter,
            d.torn_tail_recoveries as f64,
        );
        let r = self.replication();
        expo.scalar(
            "docs_replication_frames_shipped_total",
            "Frames handed to the replication sink (primary side).",
            MetricKind::Counter,
            r.frames_shipped as f64,
        );
        expo.scalar(
            "docs_replication_events_shipped_total",
            "Durable events shipped inside frames (primary side).",
            MetricKind::Counter,
            r.events_shipped as f64,
        );
        expo.scalar(
            "docs_replication_events_applied_total",
            "Replicated events applied (follower side).",
            MetricKind::Counter,
            r.events_applied as f64,
        );
        expo.scalar(
            "docs_replication_snapshots_installed_total",
            "Snapshots installed from the stream (follower side).",
            MetricKind::Counter,
            r.snapshots_installed as f64,
        );
        expo.scalar(
            "docs_replication_read_only_rejections_total",
            "Mutations refused on a read-only follower.",
            MetricKind::Counter,
            r.read_only_rejections as f64,
        );
        let rt = self.routing();
        expo.scalar(
            "docs_routing_wrong_node_rejections_total",
            "Mutations refused with WrongNode (fenced, intake, or placed elsewhere).",
            MetricKind::Counter,
            rt.wrong_node_rejections as f64,
        );
        expo.scalar(
            "docs_routing_maps_installed_total",
            "Cluster maps installed (per shard per accepted install).",
            MetricKind::Counter,
            rt.maps_installed as f64,
        );
        expo.scalar(
            "docs_routing_campaigns_fenced_total",
            "Campaigns fenced away from this node.",
            MetricKind::Counter,
            rt.campaigns_fenced as f64,
        );
        expo.scalar(
            "docs_routing_migrations_adopted_total",
            "Campaigns adopted through migration intake.",
            MetricKind::Counter,
            rt.migrations_adopted as f64,
        );
        expo.scalar(
            "docs_routing_forwarded_submissions_total",
            "Submissions that landed here after a WrongNode redirect elsewhere.",
            MetricKind::Counter,
            rt.forwarded_submissions as f64,
        );

        // Pipeline-stage histograms.
        let summaries: [(&str, &str, LatencyHistogram); 6] = [
            (
                "docs_flush_batch_events",
                "Events per group-commit flush (unitless).",
                self.flush_batch_histogram(),
            ),
            (
                "docs_flush_sync_ns",
                "WAL flush (write + fdatasync) wall time.",
                self.flush_sync_histogram(),
            ),
            (
                "docs_replication_lag_ns",
                "Replicated event ship-to-applied lag.",
                self.replication_lag_histogram(),
            ),
            (
                "docs_dispatch_park_ns",
                "Push-dispatch subscription park-to-assignment wait.",
                self.dispatch_park_histogram(),
            ),
            (
                "docs_router_hop_ns",
                "Routing hop time (map consult or redirect absorb).",
                self.router_hop_histogram(),
            ),
            (
                "docs_migration_fence_window_ns",
                "Write-unavailability window of campaign migrations.",
                self.fence_window_histogram(),
            ),
        ];
        for (name, help, hist) in &summaries {
            {
                let mut fam = expo.family(*name, *help, MetricKind::Summary);
                for (q, label) in [(0.5, "0.5"), (0.99, "0.99"), (0.999, "0.999")] {
                    fam.sample(&[("quantile", label)], hist.quantile(q) as f64);
                }
                fam.sample(&[("quantile", "1")], hist.max_ns() as f64);
            }
            expo.scalar(
                &format!("{name}_count"),
                "Samples in the summary above.",
                MetricKind::Counter,
                hist.count() as f64,
            );
        }

        // Replication hub health (present once a hub published it).
        if let Some(hub) = self.hub_health() {
            expo.scalar(
                "docs_hub_frames_shipped_total",
                "Frames fanned out by the replication hub.",
                MetricKind::Counter,
                hub.frames_shipped as f64,
            );
            expo.scalar(
                "docs_hub_events_shipped_total",
                "Events fanned out inside event frames.",
                MetricKind::Counter,
                hub.events_shipped as f64,
            );
            expo.scalar(
                "docs_hub_bytes_shipped_total",
                "Encoded wire bytes of event frames fanned out.",
                MetricKind::Counter,
                hub.bytes_shipped as f64,
            );
            expo.scalar(
                "docs_hub_snapshot_bytes_shipped_total",
                "Encoded wire bytes of snapshot frames fanned out.",
                MetricKind::Counter,
                hub.snapshot_bytes_shipped as f64,
            );
            expo.scalar(
                "docs_hub_followers",
                "Currently subscribed followers.",
                MetricKind::Gauge,
                hub.followers as f64,
            );
            expo.scalar(
                "docs_hub_followers_dropped_total",
                "Followers cut off for trailing beyond their stream bound.",
                MetricKind::Counter,
                hub.followers_dropped as f64,
            );
            {
                let mut lag = expo.family(
                    "docs_follower_lag_events",
                    "Shipped-but-unacked events per follower.",
                    MetricKind::Gauge,
                );
                for f in &hub.follower_lags {
                    lag.sample(&[("follower", &f.name)], f.lag_events as f64);
                }
            }
            {
                let mut acked = expo.family(
                    "docs_follower_acked_watermark",
                    "Highest acked per-campaign watermark per follower.",
                    MetricKind::Gauge,
                );
                for f in &hub.follower_lags {
                    acked.sample(&[("follower", &f.name)], f.acked_max as f64);
                }
            }
        }

        // Control-plane journal: per-kind counts over the held window.
        {
            let mut fam = expo.family(
                "docs_journal_events",
                "Control-plane journal entries in the held window, by kind.",
                MetricKind::Gauge,
            );
            for (kind, count) in self.journal.counts_by_kind() {
                fam.sample(&[("kind", kind.name())], count as f64);
            }
        }
        expo.scalar(
            "docs_journal_logged_total",
            "Control-plane journal entries ever logged.",
            MetricKind::Counter,
            self.journal.total_logged() as f64,
        );
        expo.scalar(
            "docs_flight_traces",
            "Sampled request traces held by the flight recorder.",
            MetricKind::Gauge,
            self.flight.len() as f64,
        );
        expo
    }

    /// Prometheus text exposition of [`ServiceMetrics::exposition`].
    pub fn render_prometheus(&self) -> String {
        self.exposition().render_prometheus()
    }

    /// One JSON document with the full metric snapshot, the control-plane
    /// journal, and the flight recorder's held traces.
    pub fn snapshot_json(&self) -> String {
        format!(
            "{{\"metrics\":{},\"journal\":{},\"traces\":{}}}",
            self.exposition().to_json(),
            self.journal.to_json(),
            self.flight.to_json()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_kind_index_matches_declaration_order() {
        // `index()` is the enum discriminant; ALL must list the variants in
        // that same order or per-kind histograms would transpose.
        for (i, kind) in OpKind::ALL.iter().enumerate() {
            assert_eq!(kind.index(), i, "{kind:?}");
        }
        assert_eq!(NUM_KINDS, OpKind::ALL.len());
    }

    #[test]
    fn records_count_total_and_max() {
        let m = ServiceMetrics::new(1);
        m.record(OpKind::Assign, Duration::from_micros(10));
        m.record(OpKind::Assign, Duration::from_micros(30));
        m.record(OpKind::Submit, Duration::from_micros(5));
        let a = m.stats(OpKind::Assign);
        assert_eq!(a.count, 2);
        assert_eq!(a.total, Duration::from_micros(40));
        assert_eq!(a.max, Duration::from_micros(30));
        assert_eq!(a.mean(), Duration::from_micros(20));
        assert_eq!(m.stats(OpKind::Submit).count, 1);
        assert_eq!(m.stats(OpKind::Finish), OpStats::default());
        assert_eq!(m.total_ops(), 3);
    }

    #[test]
    fn per_shard_op_histograms_expose_quantiles() {
        let m = ServiceMetrics::new(2);
        for i in 1..=100u64 {
            m.record_on(0, OpKind::Assign, Duration::from_micros(i));
        }
        m.record_on(1, OpKind::Assign, Duration::from_millis(5));
        // Per-shard: shard 1 has exactly the one slow sample.
        let s1 = m.op_histogram_on(1, OpKind::Assign);
        assert_eq!(s1.count(), 1);
        assert_eq!(s1.max_ns(), 5_000_000);
        assert_eq!(m.op_histogram_on(0, OpKind::Assign).count(), 100);
        // Merged: quantiles within the histogram's 1/16 relative bound.
        let merged = m.op_histogram(OpKind::Assign);
        assert_eq!(merged.count(), 101);
        let p50 = merged.quantile(0.5);
        assert!((47_000..=51_000).contains(&p50), "p50 = {p50}");
        assert_eq!(merged.quantile(1.0), 5_000_000, "max is exact");
        // Aggregate stats stay exact.
        assert_eq!(m.stats(OpKind::Assign).max, Duration::from_millis(5));
    }

    #[test]
    fn empty_stats_have_zero_mean() {
        assert_eq!(OpStats::default().mean(), Duration::ZERO);
        assert_eq!(ShardStats::default().mean_latency(), Duration::ZERO);
    }

    #[test]
    fn clones_share_the_recorder() {
        let m = ServiceMetrics::new(2);
        let m2 = m.clone();
        m2.record(OpKind::Golden, Duration::from_micros(1));
        m2.shard_enqueued(1);
        assert_eq!(m.stats(OpKind::Golden).count, 1);
        assert_eq!(m.shard(1).queued, 1);
    }

    /// Successful enqueue: provisional depth, then recorded mark.
    fn enqueue_ok(m: &ServiceMetrics, shard: usize) {
        let depth = m.shard_enqueued(shard);
        m.shard_send_recorded(shard, depth);
    }

    #[test]
    fn shard_queue_depth_tracks_enqueue_dequeue() {
        let m = ServiceMetrics::new(2);
        enqueue_ok(&m, 0);
        enqueue_ok(&m, 0);
        enqueue_ok(&m, 1);
        assert_eq!(m.shard(0).queued, 2);
        assert_eq!(m.shard(0).max_queued, 2);
        assert_eq!(m.shard(1).queued, 1);
        m.shard_processed(0, Duration::from_micros(7));
        let s0 = m.shard(0);
        assert_eq!(s0.queued, 1);
        assert_eq!(s0.max_queued, 2, "high-water mark survives dequeue");
        assert_eq!(s0.processed, 1);
        assert_eq!(s0.busy, Duration::from_micros(7));
        assert_eq!(s0.max_latency, Duration::from_micros(7));
        m.shard_enqueue_failed(1);
        assert_eq!(m.shard(1).queued, 0);
        assert_eq!(m.all_shards().len(), 2);

        // The error path end to end: a failed enqueue rolls back the depth
        // and records no phantom high-water mark.
        let m = ServiceMetrics::new(1);
        let _provisional = m.shard_enqueued(0);
        m.shard_enqueue_failed(0);
        let s = m.shard(0);
        assert_eq!(s.queued, 0, "failed send rolled back");
        assert_eq!(s.max_queued, 0, "no phantom high-water mark");
        // A real high-water mark earned earlier survives later failures.
        enqueue_ok(&m, 0);
        m.shard_processed(0, Duration::ZERO);
        let _provisional = m.shard_enqueued(0);
        m.shard_enqueue_failed(0);
        assert_eq!(m.shard(0).max_queued, 1);

        // Saturating decrements: stray rollbacks on an empty gauge must not
        // wrap to usize::MAX (a wrapped depth would also poison the next
        // enqueue's high-water mark).
        let m = ServiceMetrics::new(1);
        m.shard_enqueue_failed(0);
        m.shard_processed(0, Duration::from_micros(1));
        assert_eq!(m.shard(0).queued, 0, "no underflow wrap");
        assert_eq!(m.shard(0).processed, 1, "processing still counted");
        enqueue_ok(&m, 0);
        let s = m.shard(0);
        assert_eq!(s.queued, 1);
        assert_eq!(s.max_queued, 1, "max not poisoned by a wrapped depth");
    }

    #[test]
    fn in_flight_gauge_and_busy_counter_track_tickets() {
        let m = ServiceMetrics::new(2);
        m.ticket_issued(0);
        m.ticket_issued(0);
        m.ticket_issued(1);
        assert_eq!(m.shard(0).in_flight, 2);
        assert_eq!(m.shard(1).in_flight, 1);
        m.ticket_resolved(0);
        assert_eq!(m.shard(0).in_flight, 1);
        // Saturating: a stray resolve on an empty gauge must not wrap.
        m.ticket_resolved(1);
        m.ticket_resolved(1);
        assert_eq!(m.shard(1).in_flight, 0, "no underflow wrap");
        // Busy rejections are a monotone per-shard counter.
        m.busy_rejection(0);
        m.busy_rejection(0);
        assert_eq!(m.shard(0).busy_rejections, 2);
        assert_eq!(m.shard(1).busy_rejections, 0);
    }

    #[test]
    fn gauges_saturate_under_concurrent_increment_and_decrement() {
        // The wrap the saturating decrement exists to prevent is only
        // reachable under interleaving: one thread's stray resolve racing
        // another's issue. Hammer the gauge with more resolves than
        // issues from both sides and require it to end in the valid
        // range — a single wrap would leave it near usize::MAX.
        let m = std::sync::Arc::new(ServiceMetrics::new(1));
        let issues_per_thread = 10_000usize;
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let m = std::sync::Arc::clone(&m);
                std::thread::spawn(move || {
                    for i in 0..issues_per_thread {
                        if t % 2 == 0 {
                            m.ticket_issued(0);
                        }
                        m.ticket_resolved(0);
                        if i % 3 == 0 {
                            m.ticket_resolved(0); // stray extra resolve
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let in_flight = m.shard(0).in_flight;
        assert!(
            in_flight <= 4 * issues_per_thread,
            "gauge wrapped under concurrency: {in_flight}"
        );
        // Draining whatever survived must bottom out at exactly zero.
        for _ in 0..in_flight + 5 {
            m.ticket_resolved(0);
        }
        assert_eq!(m.shard(0).in_flight, 0, "drain must saturate at zero");
    }

    #[test]
    fn subscription_gauge_and_dispatch_counters_track_the_push_plane() {
        let m = ServiceMetrics::new(2);
        m.subscription_parked(0);
        m.subscription_parked(0);
        m.subscription_parked(1);
        assert_eq!(m.shard(0).subscriptions, 2);
        assert_eq!(m.shard(1).subscriptions, 1);
        m.subscription_resolved(0);
        assert_eq!(m.shard(0).subscriptions, 1);
        // Saturating: a stray resolve must not wrap the gauge.
        m.subscription_resolved(1);
        m.subscription_resolved(1);
        assert_eq!(m.shard(1).subscriptions, 0, "no underflow wrap");
        m.tasks_dispatched(0, 3);
        m.tasks_dispatched(0, 2);
        m.dispatch_timeout(0);
        let s = m.shard(0);
        assert_eq!(s.dispatched_tasks, 5);
        assert_eq!(s.dispatch_timeouts, 1);
        assert_eq!(m.shard(1).dispatched_tasks, 0);
        // Subscribe latency shares the histogram machinery.
        m.record(OpKind::Subscribe, Duration::from_micros(12));
        assert_eq!(m.stats(OpKind::Subscribe).count, 1);
        // The park-to-assignment wait also lands in its own histogram.
        m.dispatch_park_recorded(Duration::from_micros(250));
        assert_eq!(m.dispatch_park_histogram().count(), 1);
    }

    #[test]
    fn durability_gauges_aggregate_across_shards() {
        let m = ServiceMetrics::new(2);
        m.shard_log_observed(
            0,
            10,
            3,
            Duration::from_micros(40),
            Duration::from_micros(90),
            1024,
        );
        m.shard_log_observed(
            1,
            5,
            5,
            Duration::from_micros(70),
            Duration::from_micros(70),
            512,
        );
        m.replay_recorded(7, 1);
        m.snapshot_loaded();
        m.snapshot_written();
        m.snapshot_written();
        let d = m.durability();
        assert_eq!(d.events_logged, 15);
        assert_eq!(d.log_flushes, 8);
        assert_eq!(d.log_bytes, 1536);
        assert_eq!(d.last_flush, Duration::from_micros(70));
        assert_eq!(d.max_flush, Duration::from_micros(90));
        assert_eq!(d.events_replayed, 7);
        assert_eq!(d.replay_rejected, 1);
        assert_eq!(d.snapshots_loaded, 1);
        assert_eq!(d.snapshots_written, 2);
        assert_eq!(m.shard(0).log_bytes, 1024);
    }

    #[test]
    fn replication_and_torn_tail_counters_accumulate() {
        let m = ServiceMetrics::new(1);
        assert_eq!(m.replication(), ReplicationStats::default());
        m.frame_shipped(3);
        m.frame_shipped(0); // a snapshot frame carries no events
        m.replicated_applied();
        m.replicated_applied();
        m.snapshot_installed();
        m.read_only_rejection();
        let r = m.replication();
        assert_eq!(r.frames_shipped, 2);
        assert_eq!(r.events_shipped, 3);
        assert_eq!(r.events_applied, 2);
        assert_eq!(r.snapshots_installed, 1);
        assert_eq!(r.read_only_rejections, 1);
        // Torn tails surface in the durability view instead of vanishing.
        assert_eq!(m.durability().torn_tail_recoveries, 0);
        m.torn_tail_recovered(2);
        assert_eq!(m.durability().torn_tail_recoveries, 2);
    }

    #[test]
    fn routing_counters_accumulate_and_display() {
        let m = ServiceMetrics::new(2);
        assert_eq!(m.routing(), RoutingStats::default());
        m.wrong_node_rejection();
        m.wrong_node_rejection();
        m.map_installed();
        m.campaign_fenced();
        m.migration_adopted();
        m.forwarded_submission();
        let r = m.routing();
        assert_eq!(r.wrong_node_rejections, 2);
        assert_eq!(r.maps_installed, 1);
        assert_eq!(r.campaigns_fenced, 1);
        assert_eq!(r.migrations_adopted, 1);
        assert_eq!(r.forwarded_submissions, 1);
        assert_eq!(
            r.to_string(),
            "routing: 2 wrong-node rejections, 1 maps installed, \
             1 campaigns fenced, 1 migrations adopted, 1 forwarded submissions"
        );
    }

    #[test]
    fn concurrent_recording_is_consistent() {
        let m = ServiceMetrics::new(4);
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        m.record(OpKind::Submit, Duration::from_nanos(100));
                        m.shard_enqueued(t % 4);
                        m.shard_processed(t % 4, Duration::from_nanos(50));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(m.stats(OpKind::Submit).count, 8000);
        let total: u64 = m.all_shards().iter().map(|s| s.processed).sum();
        assert_eq!(total, 8000);
        assert!(m.all_shards().iter().all(|s| s.queued == 0));
    }

    #[test]
    fn trace_sampling_selects_every_nth_submission() {
        let m = ServiceMetrics::new(1);
        assert!(m.maybe_trace(1).is_none(), "tracing starts disabled");
        m.set_trace_sampling(3);
        let sampled = (0..9).filter(|&c| m.maybe_trace(c).is_some()).count();
        assert_eq!(sampled, 3, "every 3rd submission sampled");
        m.set_trace_sampling(0);
        assert!(m.maybe_trace(99).is_none());
    }

    #[test]
    fn exposition_covers_every_surface_and_parses() {
        let m = ServiceMetrics::new(2);
        m.record_on(1, OpKind::Assign, Duration::from_micros(15));
        m.shard_enqueued(0);
        m.busy_rejection(0);
        m.frame_shipped(4);
        m.wrong_node_rejection();
        m.replay_recorded(2, 0);
        m.flush_recorded(16, Duration::from_micros(120));
        m.replication_lag_recorded(Duration::from_micros(80));
        m.fence_window_recorded(Duration::from_micros(300));
        m.hub_observed(HubHealth {
            frames_shipped: 9,
            events_shipped: 40,
            bytes_shipped: 1800,
            snapshot_bytes_shipped: 0,
            followers: 1,
            followers_dropped: 0,
            follower_lags: vec![FollowerLagSample {
                name: "replica-a".into(),
                lag_events: 2,
                acked_max: 38,
            }],
        });
        m.journal()
            .info(docs_obs::JournalKind::Fence, "campaign c1 fenced");

        let text = m.render_prometheus();
        let samples = docs_obs::validate_prometheus(&text).expect("valid exposition");
        assert!(samples > 30, "expected a rich exposition, got {samples}");
        for needle in [
            "docs_ops_total{kind=\"assign\",shard=\"1\"} 1",
            "docs_op_latency_ns{kind=\"assign\",shard=\"1\",quantile=\"0.99\"}",
            "docs_shard_busy_rejections_total{shard=\"0\"} 1",
            "docs_replication_events_shipped_total 4",
            "docs_routing_wrong_node_rejections_total 1",
            "docs_replay_events_total 2",
            "docs_flush_batch_events{quantile=\"1\"} 16",
            "docs_flush_sync_ns_count 1",
            "docs_replication_lag_ns{quantile=\"0.5\"}",
            "docs_migration_fence_window_ns_count 1",
            "docs_hub_followers 1",
            "docs_follower_lag_events{follower=\"replica-a\"} 2",
            "docs_journal_events{kind=\"fence\"} 1",
        ] {
            assert!(
                text.contains(needle),
                "exposition missing {needle:?}\n{text}"
            );
        }

        let json = m.snapshot_json();
        assert!(json.starts_with("{\"metrics\":{"));
        assert!(json.contains("\"journal\":[{\"seq\":0"));
        assert!(json.contains("\"traces\":[]"));
    }
}
