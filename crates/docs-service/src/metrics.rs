//! Per-operation and per-shard service accounting.
//!
//! Figure 8(b) reports the *worst-case* assignment time; a deployed service
//! must measure it while other requests contend for the inference state.
//! [`ServiceMetrics`] is shared (via `Arc`) between every shard thread and
//! every client handle:
//!
//! * per-operation latency (count/mean/max) under a `parking_lot` mutex —
//!   uncontended locks are a handful of nanoseconds, negligible next to the
//!   microsecond-scale operations measured,
//! * per-shard queue depth (current + high-water mark) and service-time
//!   counters on atomics, updated on the enqueue/dequeue hot path without
//!   taking the mutex.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Decrements a gauge without wrapping below zero; returns the value seen
/// before a successful decrement (`None` when the gauge was already zero).
fn saturating_dec(counter: &AtomicUsize) -> Option<usize> {
    counter
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| d.checked_sub(1))
        .ok()
}

/// The operation kinds the service distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// OTA assignment (`RequestWork`).
    Assign,
    /// Golden-HIT submission.
    Golden,
    /// Answer submission (incremental TI).
    Submit,
    /// Batched answer submission (one round-trip, one log record).
    SubmitBatch,
    /// Final inference + report.
    Finish,
    /// Campaign registration (control plane).
    Create,
    /// Pure read (status, peeked report, serialized state) — the
    /// operations a follower replica serves locally.
    Read,
    /// Replication plane: snapshot install or replicated event apply on a
    /// follower.
    Replicate,
    /// Push-dispatch plane: subscription registration/cancellation, plus
    /// the park-to-dispatch wait of every parked subscription (recorded
    /// when the shard resolves it) — so the push plane's time-to-assignment
    /// is visible next to `Assign`'s pull latency.
    Subscribe,
    /// Cluster control plane: fencing, migration intake, directory
    /// installs — ownership bookkeeping, not campaign work.
    Cluster,
}

const NUM_KINDS: usize = 10;

impl OpKind {
    #[inline]
    fn index(self) -> usize {
        match self {
            OpKind::Assign => 0,
            OpKind::Golden => 1,
            OpKind::Submit => 2,
            OpKind::SubmitBatch => 3,
            OpKind::Finish => 4,
            OpKind::Create => 5,
            OpKind::Read => 6,
            OpKind::Replicate => 7,
            OpKind::Subscribe => 8,
            OpKind::Cluster => 9,
        }
    }
}

/// Aggregated statistics for one operation kind.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OpStats {
    /// Number of completed operations.
    pub count: u64,
    /// Total service time across them.
    pub total: Duration,
    /// Worst single-operation service time (Figure 8(b)'s metric).
    pub max: Duration,
}

impl OpStats {
    /// Mean service time, or zero when nothing was recorded.
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            self.total / self.count as u32
        }
    }
}

/// Lock-free per-shard counters (the shard thread and all handles touch
/// these on every request).
#[derive(Debug, Default)]
struct ShardCounters {
    /// Requests currently enqueued for (or being processed by) the shard,
    /// *plus* blocking submitters parked on its bounded ingress queue —
    /// the increment happens at admission-attempt time, so the gauge
    /// measures total demand on the shard and can exceed the configured
    /// queue capacity while backpressure is engaged.
    depth: AtomicUsize,
    /// High-water mark of `depth`.
    max_depth: AtomicUsize,
    /// Tickets issued against this shard and not yet resolved (gauge):
    /// completions the shard still owes, or that clients have not yet
    /// harvested/dropped.
    in_flight: AtomicUsize,
    /// Fail-fast submissions refused because the shard's bounded ingress
    /// queue was full (counter).
    busy_rejections: AtomicU64,
    /// Requests the shard has finished processing.
    processed: AtomicU64,
    /// Total busy time, in nanoseconds.
    busy_nanos: AtomicU64,
    /// Worst single-request service time, in nanoseconds.
    max_nanos: AtomicU64,
    /// Events appended to this shard's campaign log (gauge).
    events_logged: AtomicU64,
    /// Group-commit flushes this shard's log has performed (gauge).
    log_flushes: AtomicU64,
    /// Wall time of the most recent flush, in nanoseconds (gauge).
    last_flush_nanos: AtomicU64,
    /// Worst single flush, in nanoseconds.
    max_flush_nanos: AtomicU64,
    /// Bytes across this shard's on-disk log segments (gauge).
    log_bytes: AtomicU64,
    /// Assignment subscriptions currently parked in this shard's
    /// subscription table (gauge).
    subscriptions: AtomicUsize,
    /// Tasks pushed to subscribed workers by the dispatch plane (counter).
    dispatched_tasks: AtomicU64,
    /// Pushed HITs whose worker lease expired before an answer came back —
    /// their cap slot was released and the tasks became re-dispatchable
    /// (counter).
    dispatch_timeouts: AtomicU64,
}

/// Snapshot of one shard's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Requests currently queued on (or executing at) the shard, plus
    /// blocking submitters parked on its bounded ingress queue — total
    /// demand, which can exceed `ServiceConfig::queue_capacity` while
    /// backpressure is engaged.
    pub queued: usize,
    /// Deepest `queued` has ever been (demand high-water mark; same
    /// parked-submitter caveat as `queued`).
    pub max_queued: usize,
    /// Tickets issued against the shard and not yet resolved.
    pub in_flight: usize,
    /// Fail-fast submissions refused with `Busy` because the shard's
    /// bounded ingress queue was full.
    pub busy_rejections: u64,
    /// Requests processed by the shard.
    pub processed: u64,
    /// Cumulative busy time.
    pub busy: Duration,
    /// Worst single-request service time on this shard.
    pub max_latency: Duration,
    /// Events appended to this shard's campaign log.
    pub events_logged: u64,
    /// Group-commit flushes performed by this shard's log.
    pub log_flushes: u64,
    /// Wall time of the shard's most recent log flush.
    pub last_flush: Duration,
    /// Worst single log flush on this shard.
    pub max_flush: Duration,
    /// Bytes across the shard's on-disk log segments.
    pub log_bytes: u64,
    /// Assignment subscriptions currently parked on the shard.
    pub subscriptions: usize,
    /// Tasks pushed to subscribed workers by the dispatch plane.
    pub dispatched_tasks: u64,
    /// Pushed HITs whose worker lease timed out (cap slot released, tasks
    /// re-dispatchable).
    pub dispatch_timeouts: u64,
}

/// Service-wide durability counters (replay happens before the pool runs,
/// snapshots on shard threads; both are low-frequency).
#[derive(Debug, Default)]
struct DurabilityCounters {
    events_replayed: AtomicU64,
    replay_rejected: AtomicU64,
    snapshots_loaded: AtomicU64,
    snapshots_written: AtomicU64,
    torn_tail_recoveries: AtomicU64,
}

/// Service-wide replication counters: the shipping side on a primary, the
/// applying side on a follower (a service plays one role at a time, so the
/// other side's counters simply stay zero).
#[derive(Debug, Default)]
struct ReplicationCounters {
    frames_shipped: AtomicU64,
    events_shipped: AtomicU64,
    events_applied: AtomicU64,
    snapshots_installed: AtomicU64,
    read_only_rejections: AtomicU64,
}

/// Service-wide cluster-routing counters: what the ownership admission
/// check decided, and what the migration machinery did to this node.
#[derive(Debug, Default)]
struct RoutingCounters {
    wrong_node_rejections: AtomicU64,
    maps_installed: AtomicU64,
    campaigns_fenced: AtomicU64,
    migrations_adopted: AtomicU64,
    forwarded_submissions: AtomicU64,
}

/// Aggregate cluster-routing view across the whole service — surfaced by
/// [`ServiceMetrics::routing`] next to the replication counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoutingStats {
    /// Mutations refused with `RejectReason::WrongNode` (fenced, in
    /// intake, or directory-placed elsewhere).
    pub wrong_node_rejections: u64,
    /// Cluster maps installed (counted once per shard per accepted
    /// install).
    pub maps_installed: u64,
    /// Campaigns fenced away from this node.
    pub campaigns_fenced: u64,
    /// Campaigns adopted through a completed migration intake.
    pub migrations_adopted: u64,
    /// Submissions that reached this node after a `WrongNode` redirect
    /// elsewhere — the forwarded tail of a migration's fence window
    /// (counted by the router on successful retry).
    pub forwarded_submissions: u64,
}

impl std::fmt::Display for RoutingStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "routing: {} wrong-node rejections, {} maps installed, \
             {} campaigns fenced, {} migrations adopted, {} forwarded submissions",
            self.wrong_node_rejections,
            self.maps_installed,
            self.campaigns_fenced,
            self.migrations_adopted,
            self.forwarded_submissions
        )
    }
}

/// Aggregate replication view across the whole service.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicationStats {
    /// Frames handed to the replication sink (primary side).
    pub frames_shipped: u64,
    /// Durable events shipped inside those frames (primary side).
    pub events_shipped: u64,
    /// Replicated events applied through the state machine (follower side).
    pub events_applied: u64,
    /// Snapshots installed from the stream (follower side).
    pub snapshots_installed: u64,
    /// Mutations refused with `RejectReason::ReadOnlyReplica` (follower
    /// side).
    pub read_only_rejections: u64,
}

/// Aggregate durability/recovery view across the whole service.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurabilityStats {
    /// Events appended across every shard's campaign log.
    pub events_logged: u64,
    /// Group-commit flushes across every shard.
    pub log_flushes: u64,
    /// Most recent flush among the shards (max of the per-shard gauges).
    pub last_flush: Duration,
    /// Worst flush across all shards.
    pub max_flush: Duration,
    /// Total on-disk log bytes across shards.
    pub log_bytes: u64,
    /// Events replayed during [`recovery`](crate::DocsService::recover).
    pub events_replayed: u64,
    /// Replayed events whose application was (deterministically) rejected.
    pub replay_rejected: u64,
    /// Campaign snapshots loaded during recovery.
    pub snapshots_loaded: u64,
    /// Campaign snapshots written while serving (creation, cadence,
    /// recovery re-baseline).
    pub snapshots_written: u64,
    /// Log segments whose recovery scan ended in a torn record — the
    /// expected artifact of a crash mid-append, tolerated and counted
    /// (previously classified by `Wal::replay_all` but silently dropped
    /// after recovery).
    pub torn_tail_recoveries: u64,
}

impl ShardStats {
    /// Mean per-request service time on this shard.
    pub fn mean_latency(&self) -> Duration {
        if self.processed == 0 {
            Duration::ZERO
        } else {
            // u128 math: `processed` can exceed u32::MAX on a long-lived
            // shard, where a `Duration / u32` division would truncate.
            Duration::from_nanos((self.busy.as_nanos() / self.processed as u128) as u64)
        }
    }
}

/// Thread-safe recorder shared by the shard pool and all handles.
#[derive(Debug, Clone)]
pub struct ServiceMetrics {
    ops: Arc<Mutex<[OpStats; NUM_KINDS]>>,
    shards: Arc<Vec<ShardCounters>>,
    durability: Arc<DurabilityCounters>,
    replication: Arc<ReplicationCounters>,
    routing: Arc<RoutingCounters>,
}

impl Default for ServiceMetrics {
    fn default() -> Self {
        Self::new(1)
    }
}

impl ServiceMetrics {
    /// Creates an empty recorder for a pool of `shards` shards.
    pub fn new(shards: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        ServiceMetrics {
            ops: Arc::new(Mutex::new([OpStats::default(); NUM_KINDS])),
            shards: Arc::new((0..shards).map(|_| ShardCounters::default()).collect()),
            durability: Arc::new(DurabilityCounters::default()),
            replication: Arc::new(ReplicationCounters::default()),
            routing: Arc::new(RoutingCounters::default()),
        }
    }

    /// Number of shards being tracked.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Records one completed operation.
    pub fn record(&self, kind: OpKind, elapsed: Duration) {
        let mut stats = self.ops.lock();
        let s = &mut stats[kind.index()];
        s.count += 1;
        s.total += elapsed;
        s.max = s.max.max(elapsed);
    }

    /// Snapshot of one operation kind's statistics.
    pub fn stats(&self, kind: OpKind) -> OpStats {
        self.ops.lock()[kind.index()]
    }

    /// Total operations recorded across all kinds.
    pub fn total_ops(&self) -> u64 {
        self.ops.lock().iter().map(|s| s.count).sum()
    }

    /// Notes a request entering a shard's queue (called by handles before
    /// sending); returns the queue depth including it.
    ///
    /// The depth is *provisional* until the send outcome is known: publish
    /// it as the high-water mark with [`ServiceMetrics::shard_send_recorded`]
    /// once the request actually reached the queue, or roll it back with
    /// [`ServiceMetrics::shard_enqueue_failed`]. Recording the mark eagerly
    /// here was the read-after-add race: a failed send left a phantom
    /// `max_depth` no real request ever reached.
    pub fn shard_enqueued(&self, shard: usize) -> usize {
        self.shards[shard].depth.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Publishes the high-water mark for a request that was successfully
    /// enqueued at `depth` (the value [`ServiceMetrics::shard_enqueued`]
    /// returned).
    pub fn shard_send_recorded(&self, shard: usize, depth: usize) {
        self.shards[shard]
            .max_depth
            .fetch_max(depth, Ordering::Relaxed);
    }

    /// Rolls back [`ServiceMetrics::shard_enqueued`] when the send failed:
    /// the request never entered the queue, so neither the depth nor the
    /// high-water mark may keep counting it.
    pub fn shard_enqueue_failed(&self, shard: usize) {
        // Saturating: a stray rollback on an empty gauge must not wrap to
        // usize::MAX (a wrapped depth would also poison every later
        // high-water mark).
        saturating_dec(&self.shards[shard].depth);
    }

    /// Notes a ticket issued against `shard` (one operation entering
    /// flight). Paired with [`ServiceMetrics::ticket_resolved`] when the
    /// ticket resolves or is dropped.
    pub fn ticket_issued(&self, shard: usize) {
        self.shards[shard].in_flight.fetch_add(1, Ordering::Relaxed);
    }

    /// Notes a ticket resolved (completion taken, ticket dropped, or the
    /// submission rolled back). Saturating for the same reason as the
    /// queue-depth gauge: a stray decrement must degrade to "slightly
    /// wrong", never wrap to `usize::MAX` in-flight tickets.
    pub fn ticket_resolved(&self, shard: usize) {
        saturating_dec(&self.shards[shard].in_flight);
    }

    /// Counts one fail-fast submission refused because `shard`'s bounded
    /// ingress queue was full.
    pub fn busy_rejection(&self, shard: usize) {
        self.shards[shard]
            .busy_rejections
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Notes a request fully processed by its shard thread.
    pub fn shard_processed(&self, shard: usize, elapsed: Duration) {
        let c = &self.shards[shard];
        // Saturating for the same reason as in `shard_enqueue_failed`: the
        // gauge must degrade to "slightly wrong", never to a wrapped
        // usize::MAX queue depth.
        saturating_dec(&c.depth);
        c.processed.fetch_add(1, Ordering::Relaxed);
        let nanos = elapsed.as_nanos().min(u64::MAX as u128) as u64;
        c.busy_nanos.fetch_add(nanos, Ordering::Relaxed);
        c.max_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Notes an assignment subscription parked in `shard`'s subscription
    /// table. Paired with [`ServiceMetrics::subscription_resolved`] when
    /// the shard dispatches, replaces, or cancels it.
    pub fn subscription_parked(&self, shard: usize) {
        self.shards[shard]
            .subscriptions
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Notes a parked subscription leaving `shard`'s table (dispatched,
    /// replaced, or cancelled). Saturating like the other gauges: a stray
    /// decrement degrades to "slightly wrong", never wraps.
    pub fn subscription_resolved(&self, shard: usize) {
        saturating_dec(&self.shards[shard].subscriptions);
    }

    /// Counts `tasks` pushed to a subscribed worker by `shard`'s dispatch
    /// plane.
    pub fn tasks_dispatched(&self, shard: usize, tasks: u64) {
        self.shards[shard]
            .dispatched_tasks
            .fetch_add(tasks, Ordering::Relaxed);
    }

    /// Counts one pushed HIT whose worker lease expired before its answers
    /// arrived: the cap slot is released and the tasks are re-dispatchable.
    pub fn dispatch_timeout(&self, shard: usize) {
        self.shards[shard]
            .dispatch_timeouts
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Publishes a shard's campaign-log gauges (called by the shard thread
    /// on flush boundaries and at shutdown).
    pub fn shard_log_observed(
        &self,
        shard: usize,
        events_logged: u64,
        flushes: u64,
        last_flush: Duration,
        max_flush: Duration,
        log_bytes: u64,
    ) {
        let c = &self.shards[shard];
        c.events_logged.store(events_logged, Ordering::Relaxed);
        c.log_flushes.store(flushes, Ordering::Relaxed);
        c.last_flush_nanos.store(
            last_flush.as_nanos().min(u64::MAX as u128) as u64,
            Ordering::Relaxed,
        );
        c.max_flush_nanos.fetch_max(
            max_flush.as_nanos().min(u64::MAX as u128) as u64,
            Ordering::Relaxed,
        );
        c.log_bytes.store(log_bytes, Ordering::Relaxed);
    }

    /// Records events (and deterministic rejections) replayed during
    /// recovery.
    pub fn replay_recorded(&self, applied: u64, rejected: u64) {
        self.durability
            .events_replayed
            .fetch_add(applied, Ordering::Relaxed);
        self.durability
            .replay_rejected
            .fetch_add(rejected, Ordering::Relaxed);
    }

    /// Records one campaign snapshot loaded during recovery.
    pub fn snapshot_loaded(&self) {
        self.durability
            .snapshots_loaded
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records one campaign snapshot written while serving.
    pub fn snapshot_written(&self) {
        self.durability
            .snapshots_written
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records log segments whose recovery scan ended in a torn record
    /// (tolerated crash artifacts, surfaced instead of dropped).
    pub fn torn_tail_recovered(&self, segments: u64) {
        self.durability
            .torn_tail_recoveries
            .fetch_add(segments, Ordering::Relaxed);
    }

    /// Records one replication frame (carrying `events` durable events)
    /// handed to the replication sink.
    pub fn frame_shipped(&self, events: u64) {
        self.replication
            .frames_shipped
            .fetch_add(1, Ordering::Relaxed);
        self.replication
            .events_shipped
            .fetch_add(events, Ordering::Relaxed);
    }

    /// Records one replicated event applied on a follower.
    pub fn replicated_applied(&self) {
        self.replication
            .events_applied
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records one snapshot installed from the replication stream.
    pub fn snapshot_installed(&self) {
        self.replication
            .snapshots_installed
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one mutation refused because this service is a read-only
    /// follower.
    pub fn read_only_rejection(&self) {
        self.replication
            .read_only_rejections
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one mutation refused with `RejectReason::WrongNode`.
    pub fn wrong_node_rejection(&self) {
        self.routing
            .wrong_node_rejections
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one accepted cluster-map install (per shard).
    pub fn map_installed(&self) {
        self.routing.maps_installed.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one campaign fenced away from this node.
    pub fn campaign_fenced(&self) {
        self.routing
            .campaigns_fenced
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one campaign adopted through migration intake.
    pub fn migration_adopted(&self) {
        self.routing
            .migrations_adopted
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one submission that landed here after a `WrongNode`
    /// redirect elsewhere (recorded by the routing client on successful
    /// retry against this node).
    pub fn forwarded_submission(&self) {
        self.routing
            .forwarded_submissions
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Aggregate cluster-routing view.
    pub fn routing(&self) -> RoutingStats {
        RoutingStats {
            wrong_node_rejections: self.routing.wrong_node_rejections.load(Ordering::Relaxed),
            maps_installed: self.routing.maps_installed.load(Ordering::Relaxed),
            campaigns_fenced: self.routing.campaigns_fenced.load(Ordering::Relaxed),
            migrations_adopted: self.routing.migrations_adopted.load(Ordering::Relaxed),
            forwarded_submissions: self.routing.forwarded_submissions.load(Ordering::Relaxed),
        }
    }

    /// Aggregate replication view (shipping side on a primary, applying
    /// side on a follower).
    pub fn replication(&self) -> ReplicationStats {
        ReplicationStats {
            frames_shipped: self.replication.frames_shipped.load(Ordering::Relaxed),
            events_shipped: self.replication.events_shipped.load(Ordering::Relaxed),
            events_applied: self.replication.events_applied.load(Ordering::Relaxed),
            snapshots_installed: self.replication.snapshots_installed.load(Ordering::Relaxed),
            read_only_rejections: self
                .replication
                .read_only_rejections
                .load(Ordering::Relaxed),
        }
    }

    /// Aggregate durability view: per-shard log gauges summed (last-flush
    /// reported as the max across shards) plus the recovery counters.
    pub fn durability(&self) -> DurabilityStats {
        let mut stats = DurabilityStats {
            events_replayed: self.durability.events_replayed.load(Ordering::Relaxed),
            replay_rejected: self.durability.replay_rejected.load(Ordering::Relaxed),
            snapshots_loaded: self.durability.snapshots_loaded.load(Ordering::Relaxed),
            snapshots_written: self.durability.snapshots_written.load(Ordering::Relaxed),
            torn_tail_recoveries: self.durability.torn_tail_recoveries.load(Ordering::Relaxed),
            ..Default::default()
        };
        for shard in self.all_shards() {
            stats.events_logged += shard.events_logged;
            stats.log_flushes += shard.log_flushes;
            stats.log_bytes += shard.log_bytes;
            stats.last_flush = stats.last_flush.max(shard.last_flush);
            stats.max_flush = stats.max_flush.max(shard.max_flush);
        }
        stats
    }

    /// Snapshot of one shard's counters.
    pub fn shard(&self, shard: usize) -> ShardStats {
        let c = &self.shards[shard];
        ShardStats {
            queued: c.depth.load(Ordering::Relaxed),
            max_queued: c.max_depth.load(Ordering::Relaxed),
            in_flight: c.in_flight.load(Ordering::Relaxed),
            busy_rejections: c.busy_rejections.load(Ordering::Relaxed),
            processed: c.processed.load(Ordering::Relaxed),
            busy: Duration::from_nanos(c.busy_nanos.load(Ordering::Relaxed)),
            max_latency: Duration::from_nanos(c.max_nanos.load(Ordering::Relaxed)),
            events_logged: c.events_logged.load(Ordering::Relaxed),
            log_flushes: c.log_flushes.load(Ordering::Relaxed),
            last_flush: Duration::from_nanos(c.last_flush_nanos.load(Ordering::Relaxed)),
            max_flush: Duration::from_nanos(c.max_flush_nanos.load(Ordering::Relaxed)),
            log_bytes: c.log_bytes.load(Ordering::Relaxed),
            subscriptions: c.subscriptions.load(Ordering::Relaxed),
            dispatched_tasks: c.dispatched_tasks.load(Ordering::Relaxed),
            dispatch_timeouts: c.dispatch_timeouts.load(Ordering::Relaxed),
        }
    }

    /// Snapshots of every shard, in shard order.
    pub fn all_shards(&self) -> Vec<ShardStats> {
        (0..self.shards.len()).map(|s| self.shard(s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_count_total_and_max() {
        let m = ServiceMetrics::new(1);
        m.record(OpKind::Assign, Duration::from_micros(10));
        m.record(OpKind::Assign, Duration::from_micros(30));
        m.record(OpKind::Submit, Duration::from_micros(5));
        let a = m.stats(OpKind::Assign);
        assert_eq!(a.count, 2);
        assert_eq!(a.total, Duration::from_micros(40));
        assert_eq!(a.max, Duration::from_micros(30));
        assert_eq!(a.mean(), Duration::from_micros(20));
        assert_eq!(m.stats(OpKind::Submit).count, 1);
        assert_eq!(m.stats(OpKind::Finish), OpStats::default());
        assert_eq!(m.total_ops(), 3);
    }

    #[test]
    fn empty_stats_have_zero_mean() {
        assert_eq!(OpStats::default().mean(), Duration::ZERO);
        assert_eq!(ShardStats::default().mean_latency(), Duration::ZERO);
    }

    #[test]
    fn clones_share_the_recorder() {
        let m = ServiceMetrics::new(2);
        let m2 = m.clone();
        m2.record(OpKind::Golden, Duration::from_micros(1));
        m2.shard_enqueued(1);
        assert_eq!(m.stats(OpKind::Golden).count, 1);
        assert_eq!(m.shard(1).queued, 1);
    }

    /// Successful enqueue: provisional depth, then recorded mark.
    fn enqueue_ok(m: &ServiceMetrics, shard: usize) {
        let depth = m.shard_enqueued(shard);
        m.shard_send_recorded(shard, depth);
    }

    #[test]
    fn shard_queue_depth_tracks_enqueue_dequeue() {
        let m = ServiceMetrics::new(2);
        enqueue_ok(&m, 0);
        enqueue_ok(&m, 0);
        enqueue_ok(&m, 1);
        assert_eq!(m.shard(0).queued, 2);
        assert_eq!(m.shard(0).max_queued, 2);
        assert_eq!(m.shard(1).queued, 1);
        m.shard_processed(0, Duration::from_micros(7));
        let s0 = m.shard(0);
        assert_eq!(s0.queued, 1);
        assert_eq!(s0.max_queued, 2, "high-water mark survives dequeue");
        assert_eq!(s0.processed, 1);
        assert_eq!(s0.busy, Duration::from_micros(7));
        assert_eq!(s0.max_latency, Duration::from_micros(7));
        m.shard_enqueue_failed(1);
        assert_eq!(m.shard(1).queued, 0);
        assert_eq!(m.all_shards().len(), 2);

        // The error path end to end: a failed enqueue rolls back the depth
        // and records no phantom high-water mark.
        let m = ServiceMetrics::new(1);
        let _provisional = m.shard_enqueued(0);
        m.shard_enqueue_failed(0);
        let s = m.shard(0);
        assert_eq!(s.queued, 0, "failed send rolled back");
        assert_eq!(s.max_queued, 0, "no phantom high-water mark");
        // A real high-water mark earned earlier survives later failures.
        enqueue_ok(&m, 0);
        m.shard_processed(0, Duration::ZERO);
        let _provisional = m.shard_enqueued(0);
        m.shard_enqueue_failed(0);
        assert_eq!(m.shard(0).max_queued, 1);

        // Saturating decrements: stray rollbacks on an empty gauge must not
        // wrap to usize::MAX (a wrapped depth would also poison the next
        // enqueue's high-water mark).
        let m = ServiceMetrics::new(1);
        m.shard_enqueue_failed(0);
        m.shard_processed(0, Duration::from_micros(1));
        assert_eq!(m.shard(0).queued, 0, "no underflow wrap");
        assert_eq!(m.shard(0).processed, 1, "processing still counted");
        enqueue_ok(&m, 0);
        let s = m.shard(0);
        assert_eq!(s.queued, 1);
        assert_eq!(s.max_queued, 1, "max not poisoned by a wrapped depth");
    }

    #[test]
    fn in_flight_gauge_and_busy_counter_track_tickets() {
        let m = ServiceMetrics::new(2);
        m.ticket_issued(0);
        m.ticket_issued(0);
        m.ticket_issued(1);
        assert_eq!(m.shard(0).in_flight, 2);
        assert_eq!(m.shard(1).in_flight, 1);
        m.ticket_resolved(0);
        assert_eq!(m.shard(0).in_flight, 1);
        // Saturating: a stray resolve on an empty gauge must not wrap.
        m.ticket_resolved(1);
        m.ticket_resolved(1);
        assert_eq!(m.shard(1).in_flight, 0, "no underflow wrap");
        // Busy rejections are a monotone per-shard counter.
        m.busy_rejection(0);
        m.busy_rejection(0);
        assert_eq!(m.shard(0).busy_rejections, 2);
        assert_eq!(m.shard(1).busy_rejections, 0);
    }

    #[test]
    fn subscription_gauge_and_dispatch_counters_track_the_push_plane() {
        let m = ServiceMetrics::new(2);
        m.subscription_parked(0);
        m.subscription_parked(0);
        m.subscription_parked(1);
        assert_eq!(m.shard(0).subscriptions, 2);
        assert_eq!(m.shard(1).subscriptions, 1);
        m.subscription_resolved(0);
        assert_eq!(m.shard(0).subscriptions, 1);
        // Saturating: a stray resolve must not wrap the gauge.
        m.subscription_resolved(1);
        m.subscription_resolved(1);
        assert_eq!(m.shard(1).subscriptions, 0, "no underflow wrap");
        m.tasks_dispatched(0, 3);
        m.tasks_dispatched(0, 2);
        m.dispatch_timeout(0);
        let s = m.shard(0);
        assert_eq!(s.dispatched_tasks, 5);
        assert_eq!(s.dispatch_timeouts, 1);
        assert_eq!(m.shard(1).dispatched_tasks, 0);
        // Subscribe latency shares the OpStats machinery.
        m.record(OpKind::Subscribe, Duration::from_micros(12));
        assert_eq!(m.stats(OpKind::Subscribe).count, 1);
    }

    #[test]
    fn durability_gauges_aggregate_across_shards() {
        let m = ServiceMetrics::new(2);
        m.shard_log_observed(
            0,
            10,
            3,
            Duration::from_micros(40),
            Duration::from_micros(90),
            1024,
        );
        m.shard_log_observed(
            1,
            5,
            5,
            Duration::from_micros(70),
            Duration::from_micros(70),
            512,
        );
        m.replay_recorded(7, 1);
        m.snapshot_loaded();
        m.snapshot_written();
        m.snapshot_written();
        let d = m.durability();
        assert_eq!(d.events_logged, 15);
        assert_eq!(d.log_flushes, 8);
        assert_eq!(d.log_bytes, 1536);
        assert_eq!(d.last_flush, Duration::from_micros(70));
        assert_eq!(d.max_flush, Duration::from_micros(90));
        assert_eq!(d.events_replayed, 7);
        assert_eq!(d.replay_rejected, 1);
        assert_eq!(d.snapshots_loaded, 1);
        assert_eq!(d.snapshots_written, 2);
        assert_eq!(m.shard(0).log_bytes, 1024);
    }

    #[test]
    fn replication_and_torn_tail_counters_accumulate() {
        let m = ServiceMetrics::new(1);
        assert_eq!(m.replication(), ReplicationStats::default());
        m.frame_shipped(3);
        m.frame_shipped(0); // a snapshot frame carries no events
        m.replicated_applied();
        m.replicated_applied();
        m.snapshot_installed();
        m.read_only_rejection();
        let r = m.replication();
        assert_eq!(r.frames_shipped, 2);
        assert_eq!(r.events_shipped, 3);
        assert_eq!(r.events_applied, 2);
        assert_eq!(r.snapshots_installed, 1);
        assert_eq!(r.read_only_rejections, 1);
        // Torn tails surface in the durability view instead of vanishing.
        assert_eq!(m.durability().torn_tail_recoveries, 0);
        m.torn_tail_recovered(2);
        assert_eq!(m.durability().torn_tail_recoveries, 2);
    }

    #[test]
    fn routing_counters_accumulate_and_display() {
        let m = ServiceMetrics::new(2);
        assert_eq!(m.routing(), RoutingStats::default());
        m.wrong_node_rejection();
        m.wrong_node_rejection();
        m.map_installed();
        m.campaign_fenced();
        m.migration_adopted();
        m.forwarded_submission();
        let r = m.routing();
        assert_eq!(r.wrong_node_rejections, 2);
        assert_eq!(r.maps_installed, 1);
        assert_eq!(r.campaigns_fenced, 1);
        assert_eq!(r.migrations_adopted, 1);
        assert_eq!(r.forwarded_submissions, 1);
        assert_eq!(
            r.to_string(),
            "routing: 2 wrong-node rejections, 1 maps installed, \
             1 campaigns fenced, 1 migrations adopted, 1 forwarded submissions"
        );
    }

    #[test]
    fn concurrent_recording_is_consistent() {
        let m = ServiceMetrics::new(4);
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        m.record(OpKind::Submit, Duration::from_nanos(100));
                        m.shard_enqueued(t % 4);
                        m.shard_processed(t % 4, Duration::from_nanos(50));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(m.stats(OpKind::Submit).count, 8000);
        let total: u64 = m.all_shards().iter().map(|s| s.processed).sum();
        assert_eq!(total, 8000);
        assert!(m.all_shards().iter().all(|s| s.queued == 0));
    }
}
