//! Per-operation latency accounting.
//!
//! Figure 8(b) reports the *worst-case* assignment time; a deployed service
//! must measure it while other requests contend for the inference state.
//! [`ServiceMetrics`] is shared (via `Arc`) between the server thread and
//! every client handle, guarded by a `parking_lot` mutex (uncontended locks
//! are a handful of nanoseconds — negligible next to the microsecond-scale
//! operations being measured).

use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// The operation kinds the service distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// OTA assignment (`RequestTasks`).
    Assign,
    /// Golden-HIT submission.
    Golden,
    /// Answer submission (incremental TI).
    Submit,
    /// Final inference + report.
    Finish,
}

const NUM_KINDS: usize = 4;

impl OpKind {
    #[inline]
    fn index(self) -> usize {
        match self {
            OpKind::Assign => 0,
            OpKind::Golden => 1,
            OpKind::Submit => 2,
            OpKind::Finish => 3,
        }
    }
}

/// Aggregated statistics for one operation kind.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OpStats {
    /// Number of completed operations.
    pub count: u64,
    /// Total service time across them.
    pub total: Duration,
    /// Worst single-operation service time (Figure 8(b)'s metric).
    pub max: Duration,
}

impl OpStats {
    /// Mean service time, or zero when nothing was recorded.
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            self.total / self.count as u32
        }
    }
}

/// Thread-safe latency recorder shared by the server and all handles.
#[derive(Debug, Clone, Default)]
pub struct ServiceMetrics {
    inner: Arc<Mutex<[OpStats; NUM_KINDS]>>,
}

impl ServiceMetrics {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed operation.
    pub fn record(&self, kind: OpKind, elapsed: Duration) {
        let mut stats = self.inner.lock();
        let s = &mut stats[kind.index()];
        s.count += 1;
        s.total += elapsed;
        s.max = s.max.max(elapsed);
    }

    /// Snapshot of one operation kind's statistics.
    pub fn stats(&self, kind: OpKind) -> OpStats {
        self.inner.lock()[kind.index()]
    }

    /// Total operations recorded across all kinds.
    pub fn total_ops(&self) -> u64 {
        self.inner.lock().iter().map(|s| s.count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_count_total_and_max() {
        let m = ServiceMetrics::new();
        m.record(OpKind::Assign, Duration::from_micros(10));
        m.record(OpKind::Assign, Duration::from_micros(30));
        m.record(OpKind::Submit, Duration::from_micros(5));
        let a = m.stats(OpKind::Assign);
        assert_eq!(a.count, 2);
        assert_eq!(a.total, Duration::from_micros(40));
        assert_eq!(a.max, Duration::from_micros(30));
        assert_eq!(a.mean(), Duration::from_micros(20));
        assert_eq!(m.stats(OpKind::Submit).count, 1);
        assert_eq!(m.stats(OpKind::Finish), OpStats::default());
        assert_eq!(m.total_ops(), 3);
    }

    #[test]
    fn empty_stats_have_zero_mean() {
        assert_eq!(OpStats::default().mean(), Duration::ZERO);
    }

    #[test]
    fn clones_share_the_recorder() {
        let m = ServiceMetrics::new();
        let m2 = m.clone();
        m2.record(OpKind::Golden, Duration::from_micros(1));
        assert_eq!(m.stats(OpKind::Golden).count, 1);
    }

    #[test]
    fn concurrent_recording_is_consistent() {
        let m = ServiceMetrics::new();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        m.record(OpKind::Submit, Duration::from_nanos(100));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(m.stats(OpKind::Submit).count, 8000);
    }
}
