//! Per-operation and per-shard service accounting.
//!
//! Figure 8(b) reports the *worst-case* assignment time; a deployed service
//! must measure it while other requests contend for the inference state.
//! [`ServiceMetrics`] is shared (via `Arc`) between every shard thread and
//! every client handle:
//!
//! * per-operation latency (count/mean/max) under a `parking_lot` mutex —
//!   uncontended locks are a handful of nanoseconds, negligible next to the
//!   microsecond-scale operations measured,
//! * per-shard queue depth (current + high-water mark) and service-time
//!   counters on atomics, updated on the enqueue/dequeue hot path without
//!   taking the mutex.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The operation kinds the service distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// OTA assignment (`RequestWork`).
    Assign,
    /// Golden-HIT submission.
    Golden,
    /// Answer submission (incremental TI).
    Submit,
    /// Final inference + report.
    Finish,
    /// Campaign registration (control plane).
    Create,
}

const NUM_KINDS: usize = 5;

impl OpKind {
    #[inline]
    fn index(self) -> usize {
        match self {
            OpKind::Assign => 0,
            OpKind::Golden => 1,
            OpKind::Submit => 2,
            OpKind::Finish => 3,
            OpKind::Create => 4,
        }
    }
}

/// Aggregated statistics for one operation kind.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OpStats {
    /// Number of completed operations.
    pub count: u64,
    /// Total service time across them.
    pub total: Duration,
    /// Worst single-operation service time (Figure 8(b)'s metric).
    pub max: Duration,
}

impl OpStats {
    /// Mean service time, or zero when nothing was recorded.
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            self.total / self.count as u32
        }
    }
}

/// Lock-free per-shard counters (the shard thread and all handles touch
/// these on every request).
#[derive(Debug, Default)]
struct ShardCounters {
    /// Requests currently enqueued for (or being processed by) the shard.
    depth: AtomicUsize,
    /// High-water mark of `depth`.
    max_depth: AtomicUsize,
    /// Requests the shard has finished processing.
    processed: AtomicU64,
    /// Total busy time, in nanoseconds.
    busy_nanos: AtomicU64,
    /// Worst single-request service time, in nanoseconds.
    max_nanos: AtomicU64,
}

/// Snapshot of one shard's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Requests currently queued on (or executing at) the shard.
    pub queued: usize,
    /// Deepest the shard's queue has ever been.
    pub max_queued: usize,
    /// Requests processed by the shard.
    pub processed: u64,
    /// Cumulative busy time.
    pub busy: Duration,
    /// Worst single-request service time on this shard.
    pub max_latency: Duration,
}

impl ShardStats {
    /// Mean per-request service time on this shard.
    pub fn mean_latency(&self) -> Duration {
        if self.processed == 0 {
            Duration::ZERO
        } else {
            // u128 math: `processed` can exceed u32::MAX on a long-lived
            // shard, where a `Duration / u32` division would truncate.
            Duration::from_nanos((self.busy.as_nanos() / self.processed as u128) as u64)
        }
    }
}

/// Thread-safe recorder shared by the shard pool and all handles.
#[derive(Debug, Clone)]
pub struct ServiceMetrics {
    ops: Arc<Mutex<[OpStats; NUM_KINDS]>>,
    shards: Arc<Vec<ShardCounters>>,
}

impl Default for ServiceMetrics {
    fn default() -> Self {
        Self::new(1)
    }
}

impl ServiceMetrics {
    /// Creates an empty recorder for a pool of `shards` shards.
    pub fn new(shards: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        ServiceMetrics {
            ops: Arc::new(Mutex::new([OpStats::default(); NUM_KINDS])),
            shards: Arc::new((0..shards).map(|_| ShardCounters::default()).collect()),
        }
    }

    /// Number of shards being tracked.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Records one completed operation.
    pub fn record(&self, kind: OpKind, elapsed: Duration) {
        let mut stats = self.ops.lock();
        let s = &mut stats[kind.index()];
        s.count += 1;
        s.total += elapsed;
        s.max = s.max.max(elapsed);
    }

    /// Snapshot of one operation kind's statistics.
    pub fn stats(&self, kind: OpKind) -> OpStats {
        self.ops.lock()[kind.index()]
    }

    /// Total operations recorded across all kinds.
    pub fn total_ops(&self) -> u64 {
        self.ops.lock().iter().map(|s| s.count).sum()
    }

    /// Notes a request entering a shard's queue (called by handles before
    /// sending).
    pub fn shard_enqueued(&self, shard: usize) {
        let c = &self.shards[shard];
        let depth = c.depth.fetch_add(1, Ordering::Relaxed) + 1;
        c.max_depth.fetch_max(depth, Ordering::Relaxed);
    }

    /// Rolls back [`ServiceMetrics::shard_enqueued`] when the send failed.
    pub fn shard_enqueue_failed(&self, shard: usize) {
        self.shards[shard].depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Notes a request fully processed by its shard thread.
    pub fn shard_processed(&self, shard: usize, elapsed: Duration) {
        let c = &self.shards[shard];
        c.depth.fetch_sub(1, Ordering::Relaxed);
        c.processed.fetch_add(1, Ordering::Relaxed);
        let nanos = elapsed.as_nanos().min(u64::MAX as u128) as u64;
        c.busy_nanos.fetch_add(nanos, Ordering::Relaxed);
        c.max_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Snapshot of one shard's counters.
    pub fn shard(&self, shard: usize) -> ShardStats {
        let c = &self.shards[shard];
        ShardStats {
            queued: c.depth.load(Ordering::Relaxed),
            max_queued: c.max_depth.load(Ordering::Relaxed),
            processed: c.processed.load(Ordering::Relaxed),
            busy: Duration::from_nanos(c.busy_nanos.load(Ordering::Relaxed)),
            max_latency: Duration::from_nanos(c.max_nanos.load(Ordering::Relaxed)),
        }
    }

    /// Snapshots of every shard, in shard order.
    pub fn all_shards(&self) -> Vec<ShardStats> {
        (0..self.shards.len()).map(|s| self.shard(s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_count_total_and_max() {
        let m = ServiceMetrics::new(1);
        m.record(OpKind::Assign, Duration::from_micros(10));
        m.record(OpKind::Assign, Duration::from_micros(30));
        m.record(OpKind::Submit, Duration::from_micros(5));
        let a = m.stats(OpKind::Assign);
        assert_eq!(a.count, 2);
        assert_eq!(a.total, Duration::from_micros(40));
        assert_eq!(a.max, Duration::from_micros(30));
        assert_eq!(a.mean(), Duration::from_micros(20));
        assert_eq!(m.stats(OpKind::Submit).count, 1);
        assert_eq!(m.stats(OpKind::Finish), OpStats::default());
        assert_eq!(m.total_ops(), 3);
    }

    #[test]
    fn empty_stats_have_zero_mean() {
        assert_eq!(OpStats::default().mean(), Duration::ZERO);
        assert_eq!(ShardStats::default().mean_latency(), Duration::ZERO);
    }

    #[test]
    fn clones_share_the_recorder() {
        let m = ServiceMetrics::new(2);
        let m2 = m.clone();
        m2.record(OpKind::Golden, Duration::from_micros(1));
        m2.shard_enqueued(1);
        assert_eq!(m.stats(OpKind::Golden).count, 1);
        assert_eq!(m.shard(1).queued, 1);
    }

    #[test]
    fn shard_queue_depth_tracks_enqueue_dequeue() {
        let m = ServiceMetrics::new(2);
        m.shard_enqueued(0);
        m.shard_enqueued(0);
        m.shard_enqueued(1);
        assert_eq!(m.shard(0).queued, 2);
        assert_eq!(m.shard(0).max_queued, 2);
        assert_eq!(m.shard(1).queued, 1);
        m.shard_processed(0, Duration::from_micros(7));
        let s0 = m.shard(0);
        assert_eq!(s0.queued, 1);
        assert_eq!(s0.max_queued, 2, "high-water mark survives dequeue");
        assert_eq!(s0.processed, 1);
        assert_eq!(s0.busy, Duration::from_micros(7));
        assert_eq!(s0.max_latency, Duration::from_micros(7));
        m.shard_enqueue_failed(1);
        assert_eq!(m.shard(1).queued, 0);
        assert_eq!(m.all_shards().len(), 2);
    }

    #[test]
    fn concurrent_recording_is_consistent() {
        let m = ServiceMetrics::new(4);
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        m.record(OpKind::Submit, Duration::from_nanos(100));
                        m.shard_enqueued(t % 4);
                        m.shard_processed(t % 4, Duration::from_nanos(50));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(m.stats(OpKind::Submit).count, 8000);
        let total: u64 = m.all_shards().iter().map(|s| s.processed).sum();
        assert_eq!(total, 8000);
        assert!(m.all_shards().iter().all(|s| s.queued == 0));
    }
}
