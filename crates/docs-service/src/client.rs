//! Concurrent crowd driver: runs a simulated worker population against a
//! live [`crate::DocsService`] from many client threads at once.
//!
//! On AMT the workers are independent humans hitting the web server in
//! parallel; the single-threaded campaign loop in `docs-system` cannot
//! exercise that. [`drive_workers`] shards the population across `threads`
//! OS threads, each of which repeatedly: picks one of its workers, requests
//! work, answers the golden HIT on first contact, answers and submits
//! assigned tasks, and stops once the service reports the budget consumed.

use crate::server::{ServiceError, ServiceHandle};
use docs_crowd::{AnswerModel, WorkerPopulation};
use docs_system::WorkRequest;
use docs_types::{Answer, CampaignId, Task, WorkerId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Per-thread outcome of a drive run.
#[derive(Debug, Clone, Default)]
pub struct DriveOutcome {
    /// Task-request round-trips made.
    pub arrivals: usize,
    /// Golden HITs submitted (one per first-time worker).
    pub golden_hits: usize,
    /// Ordinary answers successfully submitted.
    pub answers: usize,
    /// Submissions the service rejected (e.g. duplicate answers when the
    /// same worker raced on two HITs).
    pub rejected: usize,
}

/// Aggregate report of a drive run.
#[derive(Debug, Clone, Default)]
pub struct DriveReport {
    /// Per-thread outcomes, indexed by thread.
    pub per_thread: Vec<DriveOutcome>,
}

impl DriveReport {
    /// Total answers submitted across threads.
    pub fn total_answers(&self) -> usize {
        self.per_thread.iter().map(|o| o.answers).sum()
    }

    /// Total golden HITs submitted across threads.
    pub fn total_golden(&self) -> usize {
        self.per_thread.iter().map(|o| o.golden_hits).sum()
    }

    /// Total rejected submissions across threads.
    pub fn total_rejected(&self) -> usize {
        self.per_thread.iter().map(|o| o.rejected).sum()
    }
}

/// Drives `population` against the service from `threads` parallel client
/// threads until every thread observes [`WorkRequest::Done`].
///
/// Workers are sharded round-robin across threads (worker `w` lives on
/// thread `w % threads`), so a given worker identity never races with
/// itself; different workers still interleave arbitrarily at the service,
/// which is the concurrency the deployment sees.
///
/// `tasks` must be the service's published task list (ids align by index);
/// the simulated workers need the ground truth and true domain it carries.
///
/// # Panics
/// Panics if `threads` is zero, the population is empty, or a service
/// round-trip fails with [`ServiceError::Disconnected`].
pub fn drive_workers(
    handle: &ServiceHandle,
    tasks: Arc<Vec<Task>>,
    population: &WorkerPopulation,
    model: AnswerModel,
    threads: usize,
    seed: u64,
) -> DriveReport {
    drive_workers_on(
        handle,
        handle.default_campaign(),
        tasks,
        population,
        model,
        threads,
        seed,
    )
}

/// [`drive_workers`] against one specific campaign of a multi-campaign
/// service. Several campaigns can be driven concurrently from independent
/// thread pools; each campaign's request stream stays deterministic for a
/// given `seed` because campaigns share no state.
pub fn drive_workers_on(
    handle: &ServiceHandle,
    campaign: CampaignId,
    tasks: Arc<Vec<Task>>,
    population: &WorkerPopulation,
    model: AnswerModel,
    threads: usize,
    seed: u64,
) -> DriveReport {
    assert!(threads >= 1, "need at least one client thread");
    assert!(!population.is_empty(), "need at least one worker");
    let population = Arc::new(population.clone());

    let joins: Vec<_> = (0..threads)
        .map(|shard| {
            let handle = handle.clone();
            let tasks = Arc::clone(&tasks);
            let population = Arc::clone(&population);
            std::thread::Builder::new()
                .name(format!("crowd-client-{campaign}-{shard}"))
                .spawn(move || {
                    drive_shard(
                        &handle,
                        campaign,
                        &tasks,
                        &population,
                        model,
                        shard,
                        threads,
                        seed,
                    )
                })
                .expect("spawn crowd client thread")
        })
        .collect();

    DriveReport {
        per_thread: joins
            .into_iter()
            .map(|j| j.join().expect("crowd client thread panicked"))
            .collect(),
    }
}

#[allow(clippy::too_many_arguments)]
fn drive_shard(
    handle: &ServiceHandle,
    campaign: CampaignId,
    tasks: &[Task],
    population: &WorkerPopulation,
    model: AnswerModel,
    shard: usize,
    threads: usize,
    seed: u64,
) -> DriveOutcome {
    let mut rng = SmallRng::seed_from_u64(seed ^ (shard as u64).wrapping_mul(0x9E37_79B9));
    let my_workers: Vec<WorkerId> = (0..population.len())
        .filter(|w| w % threads == shard)
        .map(WorkerId::from)
        .collect();
    let mut outcome = DriveOutcome::default();
    if my_workers.is_empty() {
        return outcome;
    }
    // A generous guard so a logic bug cannot spin forever.
    let max_arrivals = tasks.len() * 400 / threads + 200;

    while outcome.arrivals < max_arrivals {
        outcome.arrivals += 1;
        let w = my_workers[rng.gen_range(0..my_workers.len())];
        match handle.request_tasks_in(campaign, w) {
            Ok(WorkRequest::Golden(golden)) => {
                let worker = population.worker(w);
                let answers: Vec<_> = golden
                    .iter()
                    .map(|&gid| (gid, worker.answer(&tasks[gid.index()], model, &mut rng)))
                    .collect();
                match handle.submit_golden_in(campaign, w, answers) {
                    Ok(()) => outcome.golden_hits += 1,
                    Err(ServiceError::Rejected(_)) => outcome.rejected += 1,
                    Err(e) => panic!("service failed: {e}"),
                }
            }
            Ok(WorkRequest::Tasks(hit)) => {
                // The whole HIT goes back in one batched round-trip — the
                // deployment's submit path. Per-answer acceptance matches
                // individual submissions exactly (same validation, same
                // order), so the drive's accounting is unchanged.
                let worker = population.worker(w);
                let answers: Vec<Answer> = hit
                    .iter()
                    .map(|&tid| {
                        let choice = worker.answer(&tasks[tid.index()], model, &mut rng);
                        Answer::new(w, tid, choice)
                    })
                    .collect();
                match handle.submit_answer_batch_in(campaign, answers) {
                    Ok(batch) => {
                        outcome.answers += batch.accepted;
                        outcome.rejected += batch.rejected.len();
                    }
                    Err(ServiceError::Rejected(_)) => outcome.rejected += hit.len(),
                    Err(e) => panic!("service failed: {e}"),
                }
            }
            Ok(WorkRequest::Done) => break,
            Err(e) => panic!("service failed: {e}"),
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DocsService;
    use docs_crowd::PopulationConfig;
    use docs_kb::table2_example_kb;
    use docs_system::{Docs, DocsConfig};
    use docs_types::TaskBuilder;

    fn publish(n: usize, answers_per_task: usize) -> (DocsService, ServiceHandle, Arc<Vec<Task>>) {
        let kb = table2_example_kb();
        let subjects = ["Michael Jordan", "Kobe Bryant", "NBA"];
        let tasks: Vec<_> = (0..n)
            .map(|i| {
                TaskBuilder::new(i, format!("Is {} great?", subjects[i % 3]))
                    .yes_no()
                    .with_ground_truth(i % 2)
                    .with_true_domain(1)
                    .build()
                    .unwrap()
            })
            .collect();
        let config = DocsConfig {
            num_golden: 3,
            k_per_hit: 4,
            answers_per_task,
            z: 25,
            ..Default::default()
        };
        let docs = Docs::publish(&kb, tasks, config).unwrap();
        let published = Arc::new(docs.tasks().to_vec());
        let (service, handle) = DocsService::spawn(docs);
        (service, handle, published)
    }

    fn population(workers: usize) -> WorkerPopulation {
        WorkerPopulation::generate(&PopulationConfig {
            m: 3,
            size: workers,
            seed: 42,
            ..Default::default()
        })
    }

    #[test]
    fn concurrent_drive_consumes_the_budget() {
        let (service, handle, tasks) = publish(24, 4);
        let pop = population(12);
        let report = drive_workers(&handle, tasks, &pop, AnswerModel::DomainUniform, 4, 7);
        // Budget is answers_per_task × n; the drive must reach it (golden
        // answers are accounted separately).
        assert!(
            report.total_answers() >= 24 * 4,
            "collected {} answers",
            report.total_answers()
        );
        assert!(report.total_golden() >= 1);
        let final_report = handle.finish().unwrap();
        assert_eq!(final_report.truths.len(), 24);
        assert!(final_report.answers_collected >= 24 * 4);
        drop(handle);
        service.join();
    }

    #[test]
    fn single_thread_drive_matches_protocol() {
        let (service, handle, tasks) = publish(12, 2);
        let pop = population(6);
        let report = drive_workers(&handle, tasks, &pop, AnswerModel::DomainUniform, 1, 9);
        assert_eq!(report.per_thread.len(), 1);
        assert!(report.total_answers() >= 12 * 2);
        // Every first-time worker passed through the golden HIT.
        assert_eq!(report.total_golden(), report.total_golden().min(6));
        drop(handle);
        service.join();
    }

    #[test]
    fn more_threads_than_workers_is_fine() {
        let (service, handle, tasks) = publish(8, 2);
        let pop = population(2);
        let report = drive_workers(&handle, tasks, &pop, AnswerModel::DomainUniform, 6, 11);
        assert!(report.total_answers() >= 8 * 2 || report.total_rejected() > 0);
        drop(handle);
        service.join();
    }
}
