//! Concurrent crowd driver: runs a simulated worker population against a
//! live [`crate::DocsService`] from many client threads at once.
//!
//! On AMT the workers are independent humans hitting the web server in
//! parallel; the single-threaded campaign loop in `docs-system` cannot
//! exercise that. [`drive_workers`] shards the population across `threads`
//! OS threads, each of which repeatedly: picks one of its workers, requests
//! work, answers the golden HIT on first contact, answers and submits
//! assigned tasks, and stops once the service reports the budget consumed.
//!
//! The driver **pipelines**: each client thread submits a HIT's answers as
//! a ticket and immediately puts the *next* work request on the wire,
//! harvesting the submission ack only after the next assignment arrives.
//! The owning shard serves one client's operations strictly in submission
//! order, so the request stream (and therefore every truth) is
//! byte-identical to the blocking driver's — only the idle client-side
//! round-trip gaps disappear. [`drive_workers_blocking_on`] keeps the
//! strict request/response loop as the seed-architecture reference; the
//! `service_pipeline` bench measures the two against each other.

use crate::message::BatchOutcome;
use crate::routing::ClusterRouter;
use crate::server::{ServiceError, ServiceHandle};
use crate::ticket::Ticket;
use docs_crowd::{AnswerModel, WorkerPopulation};
use docs_system::{CampaignStatus, RequesterReport, WorkRequest};
use docs_types::{Answer, CampaignId, ChoiceIndex, NodeId, RejectReason, Task, TaskId, WorkerId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

/// Redirect budget of one drive-side operation; mirrors the router's
/// blocking write path (~10 s of 1 ms parks across a fence window).
const DRIVE_REDIRECT_LIMIT: usize = 10_000;

/// Anything a crowd drive can aim at: a single service pool
/// ([`ServiceHandle`]) or a whole multi-primary cluster
/// ([`ClusterRouter`]). The drive only needs the three pipelined
/// submission entry points plus redirect bookkeeping — a stale-map
/// [`RejectReason::WrongNode`] answer is a *retry* signal, not a
/// submission failure, so the drive resubmits against the owner the
/// service named instead of counting a rejection.
pub trait DriveTarget: Clone + Send + Sync + 'static {
    /// The campaign the target serves when the caller names none.
    fn default_campaign(&self) -> CampaignId;

    /// Pipelined assignment request.
    fn request_tasks_ticket_in(
        &self,
        campaign: CampaignId,
        worker: WorkerId,
    ) -> Result<Ticket<WorkRequest>, ServiceError>;

    /// Pipelined golden-HIT submission.
    fn submit_golden_ticket_in(
        &self,
        campaign: CampaignId,
        worker: WorkerId,
        answers: Vec<(TaskId, ChoiceIndex)>,
    ) -> Result<Ticket<()>, ServiceError>;

    /// Pipelined batched answer submission.
    fn submit_answer_batch_ticket_in(
        &self,
        campaign: CampaignId,
        answers: Vec<Answer>,
    ) -> Result<Ticket<BatchOutcome>, ServiceError>;

    /// A `WrongNode` answer was harvested: learn the placement so the
    /// retry aims right. A single pool has nothing to learn.
    fn note_redirect(&self, _campaign: CampaignId, _owner: NodeId) {}

    /// An operation succeeded after at least one redirect (forwarding
    /// accounting). A single pool keeps no such ledger.
    fn note_forwarded(&self, _campaign: CampaignId) {}

    /// Blocking finish: run full inference and return the requester
    /// report. Harness entry point — the scenario driver scores whatever
    /// topology it drove through the same call.
    fn finish_in(&self, campaign: CampaignId) -> Result<RequesterReport, ServiceError>;

    /// Blocking read of the campaign's serving status.
    fn status_in(&self, campaign: CampaignId) -> Result<CampaignStatus, ServiceError>;
}

impl DriveTarget for ServiceHandle {
    fn default_campaign(&self) -> CampaignId {
        ServiceHandle::default_campaign(self)
    }

    fn request_tasks_ticket_in(
        &self,
        campaign: CampaignId,
        worker: WorkerId,
    ) -> Result<Ticket<WorkRequest>, ServiceError> {
        ServiceHandle::request_tasks_ticket_in(self, campaign, worker)
    }

    fn submit_golden_ticket_in(
        &self,
        campaign: CampaignId,
        worker: WorkerId,
        answers: Vec<(TaskId, ChoiceIndex)>,
    ) -> Result<Ticket<()>, ServiceError> {
        ServiceHandle::submit_golden_ticket_in(self, campaign, worker, answers)
    }

    fn submit_answer_batch_ticket_in(
        &self,
        campaign: CampaignId,
        answers: Vec<Answer>,
    ) -> Result<Ticket<BatchOutcome>, ServiceError> {
        ServiceHandle::submit_answer_batch_ticket_in(self, campaign, answers)
    }

    fn finish_in(&self, campaign: CampaignId) -> Result<RequesterReport, ServiceError> {
        ServiceHandle::finish_in(self, campaign)
    }

    fn status_in(&self, campaign: CampaignId) -> Result<CampaignStatus, ServiceError> {
        ServiceHandle::status_in(self, campaign)
    }
}

impl DriveTarget for ClusterRouter {
    fn default_campaign(&self) -> CampaignId {
        self.nodes()[0].primary.default_campaign()
    }

    fn request_tasks_ticket_in(
        &self,
        campaign: CampaignId,
        worker: WorkerId,
    ) -> Result<Ticket<WorkRequest>, ServiceError> {
        ClusterRouter::request_tasks_ticket_in(self, campaign, worker)
    }

    fn submit_golden_ticket_in(
        &self,
        campaign: CampaignId,
        worker: WorkerId,
        answers: Vec<(TaskId, ChoiceIndex)>,
    ) -> Result<Ticket<()>, ServiceError> {
        ClusterRouter::submit_golden_ticket_in(self, campaign, worker, answers)
    }

    fn submit_answer_batch_ticket_in(
        &self,
        campaign: CampaignId,
        answers: Vec<Answer>,
    ) -> Result<Ticket<BatchOutcome>, ServiceError> {
        ClusterRouter::submit_answer_batch_ticket_in(self, campaign, answers)
    }

    fn note_redirect(&self, campaign: CampaignId, owner: NodeId) {
        ClusterRouter::note_redirect(self, campaign, owner)
    }

    fn note_forwarded(&self, campaign: CampaignId) {
        ClusterRouter::note_forwarded(self, campaign)
    }

    fn finish_in(&self, campaign: CampaignId) -> Result<RequesterReport, ServiceError> {
        ClusterRouter::finish_in(self, campaign)
    }

    fn status_in(&self, campaign: CampaignId) -> Result<CampaignStatus, ServiceError> {
        ClusterRouter::status_in(self, campaign)
    }
}

/// Per-thread outcome of a drive run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DriveOutcome {
    /// Task-request round-trips made.
    pub arrivals: usize,
    /// Golden HITs submitted (one per first-time worker).
    pub golden_hits: usize,
    /// Ordinary answers successfully submitted.
    pub answers: usize,
    /// Submissions the service rejected (e.g. duplicate answers when the
    /// same worker raced on two HITs).
    pub rejected: usize,
}

/// Aggregate report of a drive run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DriveReport {
    /// Per-thread outcomes, indexed by thread.
    pub per_thread: Vec<DriveOutcome>,
}

impl DriveReport {
    /// Total answers submitted across threads.
    pub fn total_answers(&self) -> usize {
        self.per_thread.iter().map(|o| o.answers).sum()
    }

    /// Total golden HITs submitted across threads.
    pub fn total_golden(&self) -> usize {
        self.per_thread.iter().map(|o| o.golden_hits).sum()
    }

    /// Total rejected submissions across threads.
    pub fn total_rejected(&self) -> usize {
        self.per_thread.iter().map(|o| o.rejected).sum()
    }
}

/// How a drive's client threads interact with the service.
#[derive(Clone, Copy)]
enum DriveMode {
    /// Submit a HIT's answers, then put the next work request on the wire
    /// before harvesting the ack — two operations in flight per client.
    Pipelined,
    /// One synchronous round-trip at a time (the seed architecture).
    Blocking,
}

/// Drives `population` against the service from `threads` parallel client
/// threads until every thread observes [`WorkRequest::Done`], pipelining
/// each client's next request behind its in-flight submission.
///
/// Workers are sharded round-robin across threads (worker `w` lives on
/// thread `w % threads`), so a given worker identity never races with
/// itself; different workers still interleave arbitrarily at the service,
/// which is the concurrency the deployment sees.
///
/// `tasks` must be the service's published task list (ids align by index);
/// the simulated workers need the ground truth and true domain it carries.
///
/// Returns the first [`ServiceError`] a client thread could not absorb
/// (rejections are absorbed into the report; disconnects are not).
///
/// # Panics
/// Panics if `threads` is zero or the population is empty.
pub fn drive_workers<T: DriveTarget>(
    handle: &T,
    tasks: Arc<Vec<Task>>,
    population: &WorkerPopulation,
    model: AnswerModel,
    threads: usize,
    seed: u64,
) -> Result<DriveReport, ServiceError> {
    drive_workers_on(
        handle,
        handle.default_campaign(),
        tasks,
        population,
        model,
        threads,
        seed,
    )
}

/// [`drive_workers`] against one specific campaign of a multi-campaign
/// service. Several campaigns can be driven concurrently from independent
/// thread pools; each campaign's request stream stays deterministic for a
/// given `seed` because campaigns share no state.
pub fn drive_workers_on<T: DriveTarget>(
    handle: &T,
    campaign: CampaignId,
    tasks: Arc<Vec<Task>>,
    population: &WorkerPopulation,
    model: AnswerModel,
    threads: usize,
    seed: u64,
) -> Result<DriveReport, ServiceError> {
    run_drive(
        handle,
        campaign,
        tasks,
        population,
        model,
        threads,
        seed,
        DriveMode::Pipelined,
    )
}

/// The strict request/response driver (default campaign): every operation
/// is one synchronous round-trip, exactly like the paper's HTTP clients.
/// Kept as the reference the pipelined driver is measured — and pinned
/// byte-identical — against.
pub fn drive_workers_blocking<T: DriveTarget>(
    handle: &T,
    tasks: Arc<Vec<Task>>,
    population: &WorkerPopulation,
    model: AnswerModel,
    threads: usize,
    seed: u64,
) -> Result<DriveReport, ServiceError> {
    drive_workers_blocking_on(
        handle,
        handle.default_campaign(),
        tasks,
        population,
        model,
        threads,
        seed,
    )
}

/// [`drive_workers_blocking`] against one specific campaign.
pub fn drive_workers_blocking_on<T: DriveTarget>(
    handle: &T,
    campaign: CampaignId,
    tasks: Arc<Vec<Task>>,
    population: &WorkerPopulation,
    model: AnswerModel,
    threads: usize,
    seed: u64,
) -> Result<DriveReport, ServiceError> {
    run_drive(
        handle,
        campaign,
        tasks,
        population,
        model,
        threads,
        seed,
        DriveMode::Blocking,
    )
}

#[allow(clippy::too_many_arguments)]
fn run_drive<T: DriveTarget>(
    handle: &T,
    campaign: CampaignId,
    tasks: Arc<Vec<Task>>,
    population: &WorkerPopulation,
    model: AnswerModel,
    threads: usize,
    seed: u64,
    mode: DriveMode,
) -> Result<DriveReport, ServiceError> {
    assert!(threads >= 1, "need at least one client thread");
    assert!(!population.is_empty(), "need at least one worker");
    let population = Arc::new(population.clone());

    let joins: Vec<_> = (0..threads)
        .map(|shard| {
            let handle = handle.clone();
            let tasks = Arc::clone(&tasks);
            let population = Arc::clone(&population);
            std::thread::Builder::new()
                .name(format!("crowd-client-{campaign}-{shard}"))
                .spawn(move || {
                    drive_shard(
                        &handle,
                        campaign,
                        &tasks,
                        &population,
                        model,
                        shard,
                        threads,
                        seed,
                        mode,
                    )
                })
                .expect("spawn crowd client thread")
        })
        .collect();

    let mut report = DriveReport::default();
    let mut first_error = None;
    for join in joins {
        match join.join().expect("crowd client thread panicked") {
            Ok(outcome) => report.per_thread.push(outcome),
            Err(e) => first_error = first_error.or(Some(e)),
        }
    }
    match first_error {
        Some(e) => Err(e),
        None => Ok(report),
    }
}

/// A submission whose ack is still in flight, with what its settlement
/// contributes to the drive accounting. The original payload rides along
/// so a stale-map redirect can resubmit against the owner the service
/// named (a `WrongNode` answer guarantees the submission was *not*
/// applied, so the retry cannot double-count).
enum PendingAck {
    /// A golden HIT; counts one golden submission when acked.
    Golden {
        worker: WorkerId,
        answers: Vec<(TaskId, ChoiceIndex)>,
        ticket: Ticket<()>,
    },
    /// An answer batch; counts per-answer outcomes.
    Batch {
        answers: Vec<Answer>,
        ticket: Ticket<BatchOutcome>,
    },
}

/// Waits on a pipelined ack, absorbing stale-map redirects: every
/// `WrongNode` answer teaches the target the named owner and resubmits
/// there. The inner result carries ordinary rejections for the caller to
/// account; the outer one aborts the drive (disconnects, full queues on
/// resubmission).
fn wait_absorbing_redirects<T: DriveTarget, R>(
    target: &T,
    campaign: CampaignId,
    mut ticket: Ticket<R>,
    resubmit: impl Fn(&T) -> Result<Ticket<R>, ServiceError>,
) -> Result<Result<R, ServiceError>, ServiceError> {
    let mut redirects = 0usize;
    loop {
        match ticket.wait() {
            Ok(value) => {
                if redirects > 0 {
                    target.note_forwarded(campaign);
                }
                return Ok(Ok(value));
            }
            Err(ServiceError::Rejected(RejectReason::WrongNode { owner })) => {
                redirects += 1;
                if redirects > DRIVE_REDIRECT_LIMIT {
                    return Ok(Err(ServiceError::Rejected(RejectReason::WrongNode {
                        owner,
                    })));
                }
                target.note_redirect(campaign, owner);
                if redirects > 1 {
                    // Fence window: source and destination both redirect
                    // until the tail is adopted; park instead of spinning.
                    std::thread::sleep(Duration::from_millis(1));
                }
                ticket = match resubmit(target) {
                    Ok(t) => t,
                    // The named owner is outside the target's node set;
                    // nothing to retry against — surface the rejection.
                    Err(e @ ServiceError::Rejected(RejectReason::WrongNode { .. })) => {
                        return Ok(Err(e))
                    }
                    Err(e) => return Err(e),
                };
            }
            Err(e) => return Ok(Err(e)),
        }
    }
}

/// Harvests a pending ack into the outcome. Stale-map redirects are
/// *retried* (see [`wait_absorbing_redirects`]); ordinary rejections are
/// absorbed (they are per-worker races, exactly what the deployment
/// sees); anything else aborts the drive.
fn settle<T: DriveTarget>(
    target: &T,
    campaign: CampaignId,
    pending: &mut Option<PendingAck>,
    outcome: &mut DriveOutcome,
) -> Result<(), ServiceError> {
    match pending.take() {
        None => Ok(()),
        Some(PendingAck::Golden {
            worker,
            answers,
            ticket,
        }) => {
            let settled = wait_absorbing_redirects(target, campaign, ticket, |t| {
                t.submit_golden_ticket_in(campaign, worker, answers.clone())
            })?;
            match settled {
                Ok(()) => {
                    outcome.golden_hits += 1;
                    Ok(())
                }
                Err(ServiceError::Rejected(_)) => {
                    outcome.rejected += 1;
                    Ok(())
                }
                Err(e) => Err(e),
            }
        }
        Some(PendingAck::Batch { answers, ticket }) => {
            let len = answers.len();
            let settled = wait_absorbing_redirects(target, campaign, ticket, |t| {
                t.submit_answer_batch_ticket_in(campaign, answers.clone())
            })?;
            match settled {
                Ok(batch) => {
                    outcome.answers += batch.accepted;
                    outcome.rejected += batch.rejected.len();
                    Ok(())
                }
                Err(ServiceError::Rejected(_)) => {
                    outcome.rejected += len;
                    Ok(())
                }
                Err(e) => Err(e),
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn drive_shard<T: DriveTarget>(
    handle: &T,
    campaign: CampaignId,
    tasks: &[Task],
    population: &WorkerPopulation,
    model: AnswerModel,
    shard: usize,
    threads: usize,
    seed: u64,
    mode: DriveMode,
) -> Result<DriveOutcome, ServiceError> {
    let mut rng = SmallRng::seed_from_u64(seed ^ (shard as u64).wrapping_mul(0x9E37_79B9));
    let my_workers: Vec<WorkerId> = (0..population.len())
        .filter(|w| w % threads == shard)
        .map(WorkerId::from)
        .collect();
    let mut outcome = DriveOutcome::default();
    if my_workers.is_empty() {
        return Ok(outcome);
    }
    // A generous guard so a logic bug cannot spin forever.
    let max_arrivals = tasks.len() * 400 / threads + 200;

    // The pipeline state: at most one submission ack in flight. The next
    // work request is enqueued *behind* the submission on the owning
    // shard's FIFO queue, so by the time its assignment arrives, the ack
    // is guaranteed to be sitting in its completion slot — harvesting it
    // then costs nothing and the request stream the shard sees is
    // byte-identical to the blocking driver's.
    let mut pending: Option<PendingAck> = None;
    while outcome.arrivals < max_arrivals {
        outcome.arrivals += 1;
        let w = my_workers[rng.gen_range(0..my_workers.len())];
        let work = wait_absorbing_redirects(
            handle,
            campaign,
            handle.request_tasks_ticket_in(campaign, w)?,
            |t| t.request_tasks_ticket_in(campaign, w),
        )??;
        settle(handle, campaign, &mut pending, &mut outcome)?;
        match work {
            WorkRequest::Golden(golden) => {
                let worker = population.worker(w);
                let answers: Vec<_> = golden
                    .iter()
                    .map(|&gid| (gid, worker.answer(&tasks[gid.index()], model, &mut rng)))
                    .collect();
                let ticket = handle.submit_golden_ticket_in(campaign, w, answers.clone())?;
                pending = Some(PendingAck::Golden {
                    worker: w,
                    answers,
                    ticket,
                });
            }
            WorkRequest::Tasks(hit) => {
                // The whole HIT goes back in one batched round-trip — the
                // deployment's submit path. Per-answer acceptance matches
                // individual submissions exactly (same validation, same
                // order), so the drive's accounting is unchanged.
                let worker = population.worker(w);
                let answers: Vec<Answer> = hit
                    .iter()
                    .map(|&tid| {
                        let choice = worker.answer(&tasks[tid.index()], model, &mut rng);
                        Answer::new(w, tid, choice)
                    })
                    .collect();
                let ticket = handle.submit_answer_batch_ticket_in(campaign, answers.clone())?;
                pending = Some(PendingAck::Batch { answers, ticket });
            }
            WorkRequest::Done => break,
        }
        if matches!(mode, DriveMode::Blocking) {
            // Strict request/response: the ack rendezvous happens before
            // the next arrival, like the paper's HTTP clients.
            settle(handle, campaign, &mut pending, &mut outcome)?;
        }
    }
    settle(handle, campaign, &mut pending, &mut outcome)?;
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DocsService;
    use docs_crowd::PopulationConfig;
    use docs_kb::table2_example_kb;
    use docs_system::{Docs, DocsConfig};
    use docs_types::TaskBuilder;

    fn publish(n: usize, answers_per_task: usize) -> (DocsService, ServiceHandle, Arc<Vec<Task>>) {
        let kb = table2_example_kb();
        let subjects = ["Michael Jordan", "Kobe Bryant", "NBA"];
        let tasks: Vec<_> = (0..n)
            .map(|i| {
                TaskBuilder::new(i, format!("Is {} great?", subjects[i % 3]))
                    .yes_no()
                    .with_ground_truth(i % 2)
                    .with_true_domain(1)
                    .build()
                    .unwrap()
            })
            .collect();
        let config = DocsConfig {
            num_golden: 3,
            k_per_hit: 4,
            answers_per_task,
            z: 25,
            ..Default::default()
        };
        let docs = Docs::publish(&kb, tasks, config).unwrap();
        let published = Arc::new(docs.tasks().to_vec());
        let (service, handle) = DocsService::spawn(docs);
        (service, handle, published)
    }

    fn population(workers: usize) -> WorkerPopulation {
        WorkerPopulation::generate(&PopulationConfig {
            m: 3,
            size: workers,
            seed: 42,
            ..Default::default()
        })
    }

    #[test]
    fn concurrent_drive_consumes_the_budget() {
        let (service, handle, tasks) = publish(24, 4);
        let pop = population(12);
        let report = drive_workers(&handle, tasks, &pop, AnswerModel::DomainUniform, 4, 7).unwrap();
        // Budget is answers_per_task × n; the drive must reach it (golden
        // answers are accounted separately).
        assert!(
            report.total_answers() >= 24 * 4,
            "collected {} answers",
            report.total_answers()
        );
        assert!(report.total_golden() >= 1);
        let final_report = handle.finish().unwrap();
        assert_eq!(final_report.truths.len(), 24);
        assert!(final_report.answers_collected >= 24 * 4);
        drop(handle);
        service.join();
    }

    #[test]
    fn single_thread_drive_matches_protocol() {
        let workers = 6;
        let (service, handle, tasks) = publish(12, 2);
        let pop = population(workers);
        let report = drive_workers(&handle, tasks, &pop, AnswerModel::DomainUniform, 1, 9).unwrap();
        assert_eq!(report.per_thread.len(), 1);
        assert!(report.total_answers() >= 12 * 2);
        // One golden HIT per *first-time* worker: at least one worker
        // participated, and no worker can pass the golden gate twice, so
        // the count is bounded by the population size.
        assert!(
            report.total_golden() >= 1,
            "somebody passed the golden gate"
        );
        assert!(
            report.total_golden() <= workers,
            "{} golden HITs from a population of {workers}",
            report.total_golden()
        );
        drop(handle);
        service.join();
    }

    #[test]
    fn more_threads_than_workers_is_fine() {
        let (service, handle, tasks) = publish(8, 2);
        let pop = population(2);
        let report =
            drive_workers(&handle, tasks, &pop, AnswerModel::DomainUniform, 6, 11).unwrap();
        assert!(report.total_answers() >= 8 * 2 || report.total_rejected() > 0);
        drop(handle);
        service.join();
    }

    /// The pipelining invariant at the driver level: a single-client drive
    /// produces the *same* per-thread accounting and the same final truths
    /// whether the acks are harvested synchronously or pipelined — the
    /// shard sees one identical request stream either way.
    #[test]
    fn pipelined_drive_is_byte_identical_to_blocking_drive() {
        let run = |blocking: bool| {
            let (service, handle, tasks) = publish(15, 3);
            let pop = population(5);
            let report = if blocking {
                drive_workers_blocking(&handle, tasks, &pop, AnswerModel::DomainUniform, 1, 0xAB)
            } else {
                drive_workers(&handle, tasks, &pop, AnswerModel::DomainUniform, 1, 0xAB)
            }
            .unwrap();
            let final_report = handle.finish().unwrap();
            drop(handle);
            service.join();
            (
                report,
                final_report.truths,
                final_report.truth_distributions,
            )
        };
        let (blocking_report, blocking_truths, blocking_dists) = run(true);
        let (pipelined_report, pipelined_truths, pipelined_dists) = run(false);
        assert_eq!(
            pipelined_report, blocking_report,
            "drive accounting diverged"
        );
        assert_eq!(pipelined_truths, blocking_truths, "truths diverged");
        assert_eq!(pipelined_dists, blocking_dists, "distributions diverged");
    }
}
