//! Concurrent service front-end for DOCS — the role the paper's Django web
//! server plays in the deployment ("We implement DOCS in Python 2.7 with the
//! Django web framework").
//!
//! On AMT, many workers interact with DOCS at once: some submitting answers
//! (Figure 1, arrow ⑤), others requesting HITs (arrow ④). The paper calls
//! the assignment path latency-critical ("online task assignment is required
//! to achieve instant assignment"). This crate reproduces that serving
//! architecture in-process and scales it out as a **sharded multi-campaign
//! runtime** (see ARCHITECTURE.md at the workspace root):
//!
//! * [`DocsService`] runs a pool of shard threads; each shard owns a
//!   [`docs_system::CampaignRegistry`] of the campaigns hashed to it
//!   (`CampaignId::shard`). A campaign's requests are processed strictly in
//!   arrival order on its owning shard — the same serialization a
//!   single-writer web backend provides — while different campaigns
//!   progress in parallel on different shards,
//! * [`ServiceHandle`] is a cheaply cloneable routing client: it computes
//!   the owning shard and enqueues there directly; every call is
//!   synchronous request/response. The un-suffixed methods target the
//!   default campaign, keeping the seed's single-campaign API intact,
//! * **Durability** ([`ServiceConfig::durability`]): each shard owns a
//!   `docs_storage::CampaignLog`; campaigns that opt in (per campaign, via
//!   `DocsConfig::durable_flush` or
//!   [`ServiceHandle::create_campaign_with`]) have every mutation
//!   validated, logged as a `docs_types::CampaignEvent` (group-committed
//!   per their `FlushPolicy`), and only then applied.
//!   [`DocsService::recover`] rebuilds the whole registry from snapshots +
//!   log replay — byte-identical reports, even across a shard-count change
//!   (see ARCHITECTURE.md, "Durability & recovery"),
//! * [`ServiceMetrics`] records per-operation latency (count/mean/max),
//!   per-shard queue depth / service time ([`ShardStats`]), and the
//!   durability counters ([`DurabilityStats`]: events logged/replayed,
//!   snapshots written/loaded, flush latency, per-shard log bytes), so the
//!   Figure 8(b) "worst-case assignment time" measurement works under real
//!   concurrency and the pool's balance is observable,
//! * [`drive_workers`] / [`drive_workers_on`] run a whole simulated crowd
//!   (from `docs-crowd`) against one campaign from `threads` parallel
//!   clients until the budget is consumed — the harness behind the
//!   `concurrent_service` example and the cross-crate stress tests.

mod client;
mod message;
mod metrics;
mod server;

pub use client::{drive_workers, drive_workers_on, DriveOutcome, DriveReport};
pub use message::{BatchOutcome, Request, Response};
pub use metrics::{DurabilityStats, OpKind, OpStats, ServiceMetrics, ShardStats};
pub use server::{DocsService, DurabilityConfig, ServiceConfig, ServiceError, ServiceHandle};
