//! Concurrent service front-end for DOCS — the role the paper's Django web
//! server plays in the deployment ("We implement DOCS in Python 2.7 with the
//! Django web framework").
//!
//! On AMT, many workers interact with DOCS at once: some submitting answers
//! (Figure 1, arrow ⑤), others requesting HITs (arrow ④). The paper calls
//! the assignment path latency-critical ("online task assignment is required
//! to achieve instant assignment"). This crate reproduces that serving
//! architecture in-process:
//!
//! * [`DocsService`] owns the [`docs_system::Docs`] state machine on a
//!   dedicated server thread; requests arrive over a crossbeam channel and
//!   are processed strictly in arrival order — the same serialization a
//!   single-writer web backend with a transactional parameter DB provides,
//! * [`ServiceHandle`] is a cheaply cloneable client used from any number
//!   of worker threads; every call is synchronous request/response,
//! * [`ServiceMetrics`] records per-operation latency (count/mean/max), so
//!   the Figure 8(b) "worst-case assignment time" measurement works under
//!   real concurrency rather than a single-threaded loop,
//! * [`drive_workers`] runs a whole simulated crowd (from `docs-crowd`)
//!   against the service from `threads` parallel clients until the budget
//!   is consumed — the harness behind the `concurrent_service` example and
//!   the cross-crate stress tests.

mod client;
mod message;
mod metrics;
mod server;

pub use client::{drive_workers, DriveOutcome, DriveReport};
pub use message::{Request, Response};
pub use metrics::{OpKind, OpStats, ServiceMetrics};
pub use server::{DocsService, ServiceError, ServiceHandle};
