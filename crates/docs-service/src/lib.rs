//! Concurrent service front-end for DOCS — the role the paper's Django web
//! server plays in the deployment ("We implement DOCS in Python 2.7 with the
//! Django web framework").
//!
//! On AMT, many workers interact with DOCS at once: some submitting answers
//! (Figure 1, arrow ⑤), others requesting HITs (arrow ④). The paper calls
//! the assignment path latency-critical ("online task assignment is required
//! to achieve instant assignment"). This crate reproduces that serving
//! architecture in-process and scales it out as a **sharded multi-campaign
//! runtime** with a **pipelined submission/completion API** (see
//! ARCHITECTURE.md at the workspace root):
//!
//! * [`DocsService`] runs a pool of shard threads; each shard owns a
//!   [`docs_system::CampaignRegistry`] of the campaigns hashed to it
//!   (`CampaignId::shard`). A campaign's requests are processed strictly in
//!   arrival order on its owning shard — the same serialization a
//!   single-writer web backend provides — while different campaigns
//!   progress in parallel on different shards,
//! * [`ServiceHandle`] is a cheaply cloneable routing client with two API
//!   styles over one wire protocol: blocking methods (`request_tasks_in`,
//!   `submit_answer_batch_in`, …: submit + wait, one synchronous
//!   round-trip) and pipelined submissions (`*_ticket_in` / `try_*_in`)
//!   that enqueue a correlation-tagged envelope and return a [`Ticket`] —
//!   a one-shot completion handle with [`Ticket::wait`],
//!   [`Ticket::wait_timeout`], and [`Ticket::try_take`] — so one client
//!   thread can keep many requests in flight per shard,
//! * **Backpressure**: per-shard ingress queues are bounded
//!   ([`ServiceConfig::queue_capacity`]); blocking submissions park on a
//!   full queue while the `try_*` forms fail fast with
//!   [`ServiceError::Busy`] and bump the shard's `busy_rejections`
//!   counter,
//! * **Push/hybrid dispatch** ([`ServiceConfig::dispatch`]): instead of
//!   polling, a worker can register a long-lived assignment subscription
//!   ([`ServiceHandle::subscribe_assignments_ticket_in`]); the owning
//!   shard serves it immediately when possible and otherwise *parks* the
//!   completion, pushing the next assignment when the campaign's dispatch
//!   epoch advances — the benefit index is consulted once per state
//!   change instead of once per worker poll, with picks byte-identical to
//!   pull mode (see ARCHITECTURE.md, "Task dispatch"),
//! * **Typed errors**: every refusal carries a matchable
//!   [`RejectReason`](docs_types::RejectReason)
//!   (`DuplicateAnswer`, `UnknownCampaign`, `BudgetExhausted`, …) whose
//!   `Display` output preserves the pre-taxonomy message text, end to end
//!   from docs-system validation through the wire to
//!   [`ServiceError::Rejected`] and the per-answer [`BatchOutcome`],
//! * **Durability** ([`ServiceConfig::durability`]): each shard owns a
//!   `docs_storage::CampaignLog`; campaigns that opt in (per campaign, via
//!   `DocsConfig::durable_flush` or
//!   [`ServiceHandle::create_campaign_with`]) have every mutation
//!   validated, logged as a `docs_types::CampaignEvent` (group-committed
//!   per their `FlushPolicy`), and only then applied.
//!   [`DocsService::recover`] rebuilds the whole registry from snapshots +
//!   log replay — byte-identical reports, even across a shard-count change
//!   (see ARCHITECTURE.md, "Durability & recovery"),
//! * [`ServiceMetrics`] records per-operation latency (count/mean/max),
//!   per-shard queue depth / in-flight tickets / busy rejections / service
//!   time ([`ShardStats`]), and the durability counters
//!   ([`DurabilityStats`]), so the Figure 8(b) "worst-case assignment
//!   time" measurement works under real concurrency and the pool's
//!   balance and admission pressure are observable,
//! * **Replication** ([`ServiceConfig::role`] +
//!   [`ServiceConfig::with_replication`]): a primary ships every durable
//!   event and snapshot as [`docs_types::ReplicationFrame`]s
//!   (ship-after-flush, ship-before-ack); a follower pool
//!   ([`DocsService::spawn_replica`]) refuses mutations with
//!   [`RejectReason::ReadOnlyReplica`](docs_types::RejectReason) while
//!   serving the pure reads ([`ServiceHandle::status_in`],
//!   [`ServiceHandle::peek_report_in`],
//!   [`ServiceHandle::snapshot_state_in`]) locally, and
//!   [`ReadRouter`] fans client reads out to replicas while pinning
//!   writes to the primary. The streaming hub, applier, and
//!   promotion/failover live in the `docs-replication` crate (see
//!   ARCHITECTURE.md, "Replication & failover"),
//! * **Cluster routing** ([`ClusterRouter`]): campaigns partition across
//!   multiple primary nodes by a versioned
//!   [`ClusterMap`](docs_types::ClusterMap); writes go to the owning
//!   primary, reads fan out replica-first on the owning node, and a
//!   stale map self-heals — a
//!   [`RejectReason::WrongNode`](docs_types::RejectReason) answer names
//!   the owner and the router retries there. Live campaign migration
//!   (fence → chase tail → adopt → flip the directory epoch) lives in
//!   `docs-replication::migrate_campaign` (see ARCHITECTURE.md,
//!   "Cluster & migration"),
//! * [`drive_workers`] / [`drive_workers_on`] run a whole simulated crowd
//!   (from `docs-crowd`) against one campaign from `threads` parallel
//!   clients until the budget is consumed, **pipelining** each client's
//!   next HIT request behind its in-flight submission;
//!   [`drive_workers_blocking_on`] keeps the strict request/response loop
//!   as the seed-architecture reference (byte-identical truths, measurably
//!   lower throughput — see the `service_pipeline` bench).

mod client;
mod message;
mod metrics;
mod routing;
mod server;
mod ticket;

pub use client::{
    drive_workers, drive_workers_blocking, drive_workers_blocking_on, drive_workers_on,
    DriveOutcome, DriveReport, DriveTarget,
};
pub use message::{BatchOutcome, Completion, CorrelationId, Request, RequestEnvelope, Response};
pub use metrics::{
    DurabilityStats, FollowerLagSample, HubHealth, OpKind, OpStats, ReplicationStats, RoutingStats,
    ServiceMetrics, ShardStats,
};
pub use routing::{ClusterNode, ClusterRouter, ClusterRouterStats, ReadRouter, ReadRoutingStats};
pub use server::{
    DispatchConfig, DispatchMode, DocsService, DurabilityConfig, ReplicationSink, ServiceConfig,
    ServiceError, ServiceHandle,
};
// Adaptive group-commit bounds appear in `DurabilityConfig`; re-exported
// so configuring a service doesn't require a direct docs-storage import.
pub use docs_storage::AdaptiveCommit;
pub use ticket::{Ticket, TicketWait};

// The rejection taxonomy and the replica role travel the wire, so clients
// match on them next to `ServiceError`; re-exported for convenience.
pub use docs_types::{RejectReason, ReplicaRole};
