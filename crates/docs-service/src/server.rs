//! The service: a dedicated thread owning the DOCS state machine, a
//! cloneable request handle, and an orderly shutdown path.

use crate::message::{Request, Response};
use crate::metrics::{OpKind, ServiceMetrics};
use crossbeam::channel::{bounded, unbounded, Sender};
use docs_system::{Docs, RequesterReport, WorkRequest};
use docs_types::{Answer, ChoiceIndex, TaskId, WorkerId};
use std::fmt;
use std::thread::JoinHandle;
use std::time::Instant;

/// Errors surfaced to service clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The server thread is gone (shut down or panicked).
    Disconnected,
    /// The system rejected the request (duplicate answer, unknown task, …).
    Rejected(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Disconnected => write!(f, "DOCS service disconnected"),
            ServiceError::Rejected(msg) => write!(f, "request rejected: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {}

struct Envelope {
    request: Request,
    reply: Sender<Response>,
}

/// Cloneable client handle to a running [`DocsService`].
///
/// Every method is synchronous: it enqueues the request and blocks for the
/// server's response, exactly like an HTTP round-trip to the paper's Django
/// backend. Handles are cheap to clone and safe to use from many threads.
#[derive(Clone)]
pub struct ServiceHandle {
    tx: Sender<Envelope>,
    metrics: ServiceMetrics,
}

impl ServiceHandle {
    fn call(&self, request: Request) -> Result<Response, ServiceError> {
        let (reply_tx, reply_rx) = bounded(1);
        self.tx
            .send(Envelope {
                request,
                reply: reply_tx,
            })
            .map_err(|_| ServiceError::Disconnected)?;
        reply_rx.recv().map_err(|_| ServiceError::Disconnected)
    }

    /// "A worker comes and requests tasks."
    pub fn request_tasks(&self, worker: WorkerId) -> Result<WorkRequest, ServiceError> {
        match self.call(Request::RequestTasks(worker))? {
            Response::Work(w) => Ok(w),
            Response::Failed(msg) => Err(ServiceError::Rejected(msg)),
            other => unreachable!("protocol violation: {other:?}"),
        }
    }

    /// Submits a new worker's golden-HIT answers.
    pub fn submit_golden(
        &self,
        worker: WorkerId,
        answers: Vec<(TaskId, ChoiceIndex)>,
    ) -> Result<(), ServiceError> {
        match self.call(Request::SubmitGolden { worker, answers })? {
            Response::Ack => Ok(()),
            Response::Failed(msg) => Err(ServiceError::Rejected(msg)),
            other => unreachable!("protocol violation: {other:?}"),
        }
    }

    /// Submits one answer.
    pub fn submit_answer(&self, answer: Answer) -> Result<(), ServiceError> {
        match self.call(Request::SubmitAnswer(answer))? {
            Response::Ack => Ok(()),
            Response::Failed(msg) => Err(ServiceError::Rejected(msg)),
            other => unreachable!("protocol violation: {other:?}"),
        }
    }

    /// Finalizes inference and returns the requester report.
    pub fn finish(&self) -> Result<RequesterReport, ServiceError> {
        match self.call(Request::Finish)? {
            Response::Report(r) => Ok(*r),
            Response::Failed(msg) => Err(ServiceError::Rejected(msg)),
            other => unreachable!("protocol violation: {other:?}"),
        }
    }

    /// The shared latency metrics.
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.metrics
    }
}

/// A running DOCS service (the server thread).
pub struct DocsService {
    join: JoinHandle<Docs>,
}

impl DocsService {
    /// Spawns the server thread around a published [`Docs`] instance and
    /// returns the service plus its first client handle.
    pub fn spawn(docs: Docs) -> (DocsService, ServiceHandle) {
        let (tx, rx) = unbounded::<Envelope>();
        let metrics = ServiceMetrics::new();
        let server_metrics = metrics.clone();
        let join = std::thread::Builder::new()
            .name("docs-service".into())
            .spawn(move || {
                let mut docs = docs;
                // The loop ends when every handle (every sender) is dropped.
                while let Ok(env) = rx.recv() {
                    let start = Instant::now();
                    let (kind, response) = match env.request {
                        Request::RequestTasks(w) => {
                            (OpKind::Assign, Response::Work(docs.request_tasks(w)))
                        }
                        Request::SubmitGolden { worker, answers } => (
                            OpKind::Golden,
                            match docs.submit_golden(worker, &answers) {
                                Ok(()) => Response::Ack,
                                Err(e) => Response::Failed(e.to_string()),
                            },
                        ),
                        Request::SubmitAnswer(answer) => (
                            OpKind::Submit,
                            match docs.submit_answer(answer) {
                                Ok(()) => Response::Ack,
                                Err(e) => Response::Failed(e.to_string()),
                            },
                        ),
                        Request::Finish => (
                            OpKind::Finish,
                            match docs.finish() {
                                Ok(r) => Response::Report(Box::new(r)),
                                Err(e) => Response::Failed(e.to_string()),
                            },
                        ),
                    };
                    server_metrics.record(kind, start.elapsed());
                    // A client that hung up after sending is fine.
                    let _ = env.reply.send(response);
                }
                docs
            })
            .expect("spawn docs-service thread");
        (DocsService { join }, ServiceHandle { tx, metrics })
    }

    /// Waits for the server to drain and stop, returning the final system
    /// state.
    ///
    /// The server stops when every [`ServiceHandle`] has been dropped, so
    /// drop all handles before calling `join` or it will block forever.
    pub fn join(self) -> Docs {
        self.join.join().expect("docs-service thread panicked")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use docs_kb::table2_example_kb;
    use docs_system::DocsConfig;
    use docs_types::TaskBuilder;

    fn service() -> (DocsService, ServiceHandle) {
        let kb = table2_example_kb();
        let subjects = ["Michael Jordan", "Kobe Bryant", "NBA"];
        let tasks: Vec<_> = (0..9)
            .map(|i| {
                TaskBuilder::new(i, format!("Is {} great?", subjects[i % 3]))
                    .yes_no()
                    .with_ground_truth(i % 2)
                    .with_true_domain(1)
                    .build()
                    .unwrap()
            })
            .collect();
        let config = DocsConfig {
            num_golden: 2,
            k_per_hit: 3,
            answers_per_task: 2,
            z: 10,
            ..Default::default()
        };
        DocsService::spawn(Docs::publish(&kb, tasks, config).unwrap())
    }

    /// Answers golden tasks correctly (ground truth is i % 2 by id).
    fn pass_golden(handle: &ServiceHandle, worker: WorkerId, golden: &[TaskId]) {
        let answers: Vec<_> = golden.iter().map(|&g| (g, g.index() % 2)).collect();
        handle.submit_golden(worker, answers).unwrap();
    }

    #[test]
    fn round_trip_golden_then_tasks_then_report() {
        let (service, handle) = service();
        let w = WorkerId(0);
        let golden = match handle.request_tasks(w).unwrap() {
            WorkRequest::Golden(g) => g,
            other => panic!("expected golden HIT, got {other:?}"),
        };
        assert_eq!(golden.len(), 2);
        pass_golden(&handle, w, &golden);
        let tasks = match handle.request_tasks(w).unwrap() {
            WorkRequest::Tasks(t) => t,
            other => panic!("expected task HIT, got {other:?}"),
        };
        assert_eq!(tasks.len(), 3);
        for t in tasks {
            handle
                .submit_answer(Answer::new(w, t, t.index() % 2))
                .unwrap();
        }
        let report = handle.finish().unwrap();
        assert_eq!(report.truths.len(), 9);
        assert_eq!(report.answers_collected, 3);
        drop(handle);
        let _docs = service.join();
    }

    #[test]
    fn duplicate_answer_is_rejected_not_fatal() {
        let (service, handle) = service();
        let w = WorkerId(1);
        if let WorkRequest::Golden(g) = handle.request_tasks(w).unwrap() {
            pass_golden(&handle, w, &g);
        }
        let answer = Answer::new(w, TaskId(0), 0);
        handle.submit_answer(answer).unwrap();
        let err = handle.submit_answer(answer).unwrap_err();
        assert!(matches!(err, ServiceError::Rejected(_)));
        // The service keeps serving after the rejection.
        assert!(handle.request_tasks(w).is_ok());
        drop(handle);
        service.join();
    }

    #[test]
    fn metrics_count_operations() {
        let (service, handle) = service();
        let w = WorkerId(2);
        let _ = handle.request_tasks(w);
        if let WorkRequest::Golden(g) = handle.request_tasks(w).unwrap() {
            pass_golden(&handle, w, &g);
        }
        assert_eq!(handle.metrics().stats(OpKind::Assign).count, 2);
        assert_eq!(handle.metrics().stats(OpKind::Golden).count, 1);
        assert!(handle.metrics().stats(OpKind::Assign).max > std::time::Duration::ZERO);
        drop(handle);
        service.join();
    }

    #[test]
    fn calls_after_shutdown_fail_cleanly() {
        let (service, handle) = service();
        let extra = handle.clone();
        drop(handle);
        // Server still alive: `extra` holds a sender.
        assert!(extra.request_tasks(WorkerId(3)).is_ok());
        drop(extra);
        let _docs = service.join();
    }

    #[test]
    fn many_threads_share_one_handle() {
        let (service, handle) = service();
        // Seed golden for 4 workers, then hammer assignments concurrently.
        for w in 0..4u32 {
            let w = WorkerId(w);
            if let WorkRequest::Golden(g) = handle.request_tasks(w).unwrap() {
                pass_golden(&handle, w, &g);
            }
        }
        let threads: Vec<_> = (0..4u32)
            .map(|w| {
                let h = handle.clone();
                std::thread::spawn(move || {
                    let w = WorkerId(w);
                    for _ in 0..10 {
                        h.request_tasks(w).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(handle.metrics().stats(OpKind::Assign).count, 4 + 40);
        drop(handle);
        service.join();
    }
}
