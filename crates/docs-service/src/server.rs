//! The sharded service runtime: a pool of shard threads, each owning a
//! [`CampaignRegistry`] of the campaigns hashed to it, plus a cloneable
//! routing handle speaking the submission/completion protocol.
//!
//! The paper's deployment is one Django backend serving one requester batch;
//! the seed mirrored that with a single server thread owning a single
//! [`Docs`]. This runtime generalizes it:
//!
//! * **Campaigns** are the unit of state: each [`CampaignId`] maps to one
//!   `Docs` state machine living on exactly one shard
//!   ([`CampaignId::shard`]), so campaign state is share-nothing — no locks,
//!   and requests for one campaign keep the paper's strict arrival-order
//!   serialization.
//! * **The router is the handle**: [`ServiceHandle`] computes the owning
//!   shard client-side and enqueues directly on that shard's channel —
//!   routing adds no extra hop or thread.
//! * **Submission and completion are split**: every operation has a
//!   non-blocking `*_ticket_in` form that enqueues a correlation-tagged
//!   [`RequestEnvelope`](crate::message::RequestEnvelope) and returns a
//!   [`Ticket`] immediately, so one client thread can keep many requests
//!   pipelined per shard. The blocking methods are thin `submit().wait()`
//!   wrappers over the same path.
//! * **Ingress is bounded**: each shard's queue admits at most
//!   [`ServiceConfig::queue_capacity`] requests. Blocking submissions park
//!   until a slot frees (backpressure); the `try_*` forms fail fast with
//!   [`ServiceError::Busy`] and bump the shard's `busy_rejections` counter
//!   instead of letting the queue grow without limit.
//! * **Failures are data**: every refusal carries a matchable
//!   [`RejectReason`] ([`ServiceError::Rejected`]) whose `Display` output
//!   reproduces the pre-taxonomy message text.
//! * **Durability is event-sourced**: when [`ServiceConfig::durability`] is
//!   set, each shard owns a [`CampaignLog`] under `dir/shard-<i>`. For a
//!   campaign that opted in (per-campaign, via
//!   `DocsConfig::durable_flush` or a wire-level override), every mutating
//!   request is validated, rendered into a [`CampaignEvent`], appended to
//!   the log (group-committed per the campaign's [`FlushPolicy`]), and only
//!   then applied. Periodic snapshots (`snapshot_every`) re-baseline every
//!   campaign on the shard and prune old segments.
//!   [`DocsService::recover`] rebuilds the whole registry from snapshots +
//!   log replay — across restarts that change the shard count.
//! * **Backward compatibility**: [`DocsService::spawn`] registers its
//!   `Docs` as the *default campaign* and the un-suffixed handle methods
//!   target it, so single-campaign callers are unchanged.

use crate::message::{BatchOutcome, Completion, CorrelationId, Request, RequestEnvelope, Response};
use crate::metrics::{OpKind, ServiceMetrics};
use crate::ticket::Ticket;
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use docs_obs::{JournalKind, SpanKind, TraceContext};
use docs_storage::{recover_tree, AdaptiveCommit, CampaignLog, FlushPolicy};
use docs_system::{
    CampaignRegistry, CampaignStatus, Docs, MutationAdmission, OwnershipTable, RequesterReport,
    WorkRequest,
};
use docs_types::{
    codec, Answer, CampaignEvent, CampaignId, ChoiceIndex, ClusterMap, EventFrame, NodeId,
    PublishedEvent, RejectReason, ReplicaRole, ReplicationFrame, SnapshotFrame, TaskId, WorkerId,
};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Errors surfaced to service clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The owning shard thread is gone (shut down or panicked).
    Disconnected,
    /// Fail-fast admission refused the submission: the owning shard's
    /// bounded ingress queue is at capacity. The request was *not*
    /// enqueued; retry later or fall back to a blocking submission.
    Busy {
        /// The shard whose queue was full.
        shard: usize,
    },
    /// The system rejected the request; the reason is matchable data
    /// (duplicate answer, unknown campaign, exhausted budget, …).
    Rejected(RejectReason),
}

impl ServiceError {
    /// The structured rejection, when this error is one.
    pub fn reason(&self) -> Option<&RejectReason> {
        match self {
            ServiceError::Rejected(reason) => Some(reason),
            _ => None,
        }
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Disconnected => write!(f, "DOCS service disconnected"),
            ServiceError::Busy { shard } => {
                write!(f, "shard {shard} ingress queue is full")
            }
            ServiceError::Rejected(reason) => write!(f, "request rejected: {reason}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// The primary's half of the replication wire: shard threads hand every
/// frame they seal (durable event batches, snapshots) to this sink; a
/// `docs-replication` hub on the other end encodes, CRC-stamps, and fans
/// the frames out to subscribed followers. Shipping is strictly
/// *post-flush*: a frame never carries an event the primary's disk has not
/// accepted, so a follower's watermark can only reach states the primary
/// could itself recover to.
#[derive(Clone)]
pub struct ReplicationSink(Sender<ReplicationFrame>);

impl ReplicationSink {
    /// Wraps the sending half of a replication stream.
    pub fn new(tx: Sender<ReplicationFrame>) -> Self {
        ReplicationSink(tx)
    }

    /// Ships one frame; a gone hub (every follower detached) is not an
    /// error — the primary keeps serving unreplicated.
    fn ship(&self, frame: ReplicationFrame) -> bool {
        self.0.send(frame).is_ok()
    }
}

impl fmt::Debug for ReplicationSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReplicationSink").finish_non_exhaustive()
    }
}

/// Shared mutable role of a running service: shards consult it per
/// request, promotion flips it exactly once.
#[derive(Debug, Clone)]
struct RoleCell(Arc<AtomicU8>);

impl RoleCell {
    fn new(role: ReplicaRole) -> Self {
        RoleCell(Arc::new(AtomicU8::new(match role {
            ReplicaRole::Primary => 0,
            ReplicaRole::Follower => 1,
        })))
    }

    fn get(&self) -> ReplicaRole {
        if self.0.load(Ordering::SeqCst) == 0 {
            ReplicaRole::Primary
        } else {
            ReplicaRole::Follower
        }
    }

    fn set(&self, role: ReplicaRole) {
        self.0.store(
            match role {
                ReplicaRole::Primary => 0,
                ReplicaRole::Follower => 1,
            },
            Ordering::SeqCst,
        );
    }
}

/// Where and how the service persists campaign events.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Root directory; each shard logs under `dir/shard-<i>`.
    pub dir: PathBuf,
    /// Flush policy for campaigns created durable without naming one.
    pub default_flush: FlushPolicy,
    /// After this many logged events, a shard snapshots every campaign it
    /// owns and prunes its log segments (bounds replay cost).
    pub snapshot_every: u64,
    /// Adaptive group commit for [`FlushPolicy::EveryEvent`] campaigns:
    /// under load a shard grows the commit batch within these bounds and
    /// pays one `fdatasync` for the whole batch, **deferring every
    /// acknowledgment until the batch is durable** — the ack⇒durable
    /// contract of `EveryEvent` survives while the sync cost amortizes
    /// like `Batch(n)`. An idle shard flushes immediately (the batch
    /// shrinks back to one event). `None` restores strict
    /// one-sync-per-event behavior.
    pub adaptive: Option<AdaptiveCommit>,
}

impl DurabilityConfig {
    /// Durability rooted at `dir` with group commit (`Batch(64)`), a
    /// 1024-event snapshot cadence, and adaptive commit for `EveryEvent`
    /// campaigns.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            dir: dir.into(),
            default_flush: FlushPolicy::Batch(64),
            snapshot_every: 1024,
            adaptive: Some(AdaptiveCommit::default()),
        }
    }

    /// Overrides the adaptive-commit bounds (`None` disables deferral).
    pub fn with_adaptive(mut self, adaptive: Option<AdaptiveCommit>) -> Self {
        self.adaptive = adaptive;
        self
    }
}

/// How assignments travel from shards to workers.
///
/// The paper's deployment is pull-only: every worker polls
/// `RequestWork`, and every poll pays one benefit-index consultation (or a
/// flat candidate scan). Under thousands of concurrent workers those polls
/// contend on the assignment path even when nothing changed since the last
/// one. Push mode inverts the flow: workers register long-lived
/// subscriptions ([`Request::Subscribe`]) and the shard dispatches
/// assignments *as state changes* — the benefit index is consulted once
/// per ingested answer instead of once per worker poll. Picks are
/// byte-identical across modes: a pushed assignment is computed by the
/// exact same [`Docs::request_tasks`] call a poll would have made.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchMode {
    /// Workers poll with `RequestWork`; [`Request::Subscribe`] is refused
    /// with [`RejectReason::Invalid`]. The seed's behavior, and the
    /// default.
    Pull,
    /// Workers subscribe; the shard pushes assignments when the campaign's
    /// dispatch epoch advances. Polling still works (the pull plane is
    /// never switched off), but subscribed workers are served without it.
    Push,
    /// Push with a client-side pull fallback: a worker whose subscription
    /// does not resolve promptly unsubscribes and polls instead. The
    /// server side is identical to [`DispatchMode::Push`]; the difference
    /// is client strategy (see the open-loop harness).
    Hybrid,
}

/// Knobs of the push-dispatch plane (ignored under [`DispatchMode::Pull`]).
#[derive(Debug, Clone)]
pub struct DispatchConfig {
    /// The dispatch mode the pool runs in.
    pub mode: DispatchMode,
    /// How many pushed HITs a worker may hold unanswered before further
    /// subscriptions from it park instead of being served immediately. Any
    /// accepted submission from the worker retires its outstanding lease.
    pub max_in_flight_per_worker: usize,
    /// A worker whose pushed HIT goes unanswered this long is presumed
    /// gone: its lease is expired (freeing its in-flight slot) at the next
    /// dispatch pass and counted in `ShardStats::dispatch_timeouts`. Tasks
    /// are never reserved, so the timed-out HIT's tasks were re-assignable
    /// all along — expiry re-enqueues the *worker*, not the tasks.
    pub worker_timeout: Duration,
}

impl Default for DispatchConfig {
    fn default() -> Self {
        DispatchConfig {
            mode: DispatchMode::Pull,
            max_in_flight_per_worker: 1,
            worker_timeout: Duration::from_secs(30),
        }
    }
}

impl DispatchConfig {
    /// The given mode with default cap and timeout.
    pub fn new(mode: DispatchMode) -> Self {
        DispatchConfig {
            mode,
            ..Default::default()
        }
    }
}

/// Deployment knobs of the service runtime.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Number of shard worker threads. Campaigns are hash-partitioned
    /// across them; `1` reproduces the seed's single-server-thread runtime.
    /// `0` is treated as `1`.
    pub shards: usize,
    /// Event-log durability; `None` keeps every campaign memory-only.
    pub durability: Option<DurabilityConfig>,
    /// Per-shard ingress-queue bound: at most this many requests can sit
    /// in a shard's queue (one more may already be executing on the shard
    /// thread, so worst-case in-shard demand is `queue_capacity + 1`).
    /// Blocking submissions park until a slot frees; `try_*` submissions
    /// fail fast with [`ServiceError::Busy`]. `0` removes the bound (the
    /// pre-backpressure behavior, kept as an escape hatch for harnesses
    /// that measure raw queue growth).
    pub queue_capacity: usize,
    /// The role the pool starts in. A [`ReplicaRole::Follower`] refuses
    /// every mutation with [`RejectReason::ReadOnlyReplica`], serves the
    /// pure reads locally, and accepts the replication plane (snapshot
    /// installs, replicated applies) until it is promoted.
    pub role: ReplicaRole,
    /// When set on a primary with durability, every snapshot written and
    /// every flushed (durable) event is also handed to this sink as a
    /// [`ReplicationFrame`] — the WAL-shipping feed followers apply.
    pub replication: Option<ReplicationSink>,
    /// How assignments reach workers: polled ([`DispatchMode::Pull`], the
    /// default) or pushed through subscriptions.
    pub dispatch: DispatchConfig,
    /// Sample every Nth submission into the flight recorder as a full
    /// request trace (`0` disables tracing). Sampling is cheap enough to
    /// leave on in production at, say, `1024`; traced requests pay one
    /// heap allocation plus a handful of clock reads.
    pub trace_sample_every: u64,
    /// This pool's identity inside a multi-primary cluster. Single-node
    /// deployments keep the default `NodeId(0)` and never notice it; in a
    /// cluster each primary pool gets a distinct id, which fencing records
    /// as the redirect target of [`RejectReason::WrongNode`].
    pub node: NodeId,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards: 0,
            durability: None,
            queue_capacity: Self::DEFAULT_QUEUE_CAPACITY,
            role: ReplicaRole::Primary,
            replication: None,
            trace_sample_every: 0,
            dispatch: DispatchConfig::default(),
            node: NodeId(0),
        }
    }
}

impl ServiceConfig {
    /// Default per-shard ingress bound: deep enough that pipelined clients
    /// never notice it, shallow enough that a stalled shard pushes back
    /// instead of buffering unboundedly.
    pub const DEFAULT_QUEUE_CAPACITY: usize = 1024;

    /// A memory-only pool of `shards` shard threads.
    pub fn sharded(shards: usize) -> Self {
        ServiceConfig {
            shards,
            ..Default::default()
        }
    }

    /// A pool of `shards` shard threads with durability rooted at `dir`.
    pub fn durable(shards: usize, dir: impl Into<PathBuf>) -> Self {
        ServiceConfig {
            shards,
            durability: Some(DurabilityConfig::new(dir)),
            ..Default::default()
        }
    }

    /// Overrides the per-shard ingress bound (`0` = unbounded).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Samples every Nth submission into the flight recorder (`0` = off).
    pub fn with_trace_sampling(mut self, every: u64) -> Self {
        self.trace_sample_every = every;
        self
    }

    /// A memory-only follower pool of `shards` shard threads (campaigns
    /// arrive via snapshot installs, not `create_campaign`).
    pub fn follower(shards: usize) -> Self {
        ServiceConfig {
            shards,
            role: ReplicaRole::Follower,
            ..Default::default()
        }
    }

    /// Sets the starting role.
    pub fn with_role(mut self, role: ReplicaRole) -> Self {
        self.role = role;
        self
    }

    /// Attaches a replication sink: durable events and snapshots ship
    /// through it as frames (see [`ReplicationSink`]).
    pub fn with_replication(mut self, sink: ReplicationSink) -> Self {
        self.replication = Some(sink);
        self
    }

    /// Sets the dispatch mode (default cap and worker timeout).
    pub fn with_dispatch(mut self, mode: DispatchMode) -> Self {
        self.dispatch.mode = mode;
        self
    }

    /// Sets this pool's cluster node identity.
    pub fn with_node(mut self, node: NodeId) -> Self {
        self.node = node;
        self
    }

    /// Overrides the full push-dispatch configuration.
    pub fn with_dispatch_config(mut self, dispatch: DispatchConfig) -> Self {
        self.dispatch = dispatch;
        self
    }

    fn num_shards(&self) -> usize {
        self.shards.max(1)
    }
}

/// Per-shard spawn seeds: the registry each shard starts with plus, per
/// persisted campaign, its flush policy and last durable sequence number.
type PoolSeeds = Vec<(CampaignRegistry, Vec<(CampaignId, FlushPolicy, u64)>)>;

/// One admitted submission on a shard's ingress queue: the wire envelope
/// plus the sender of the submitter's one-shot completion slot.
struct Inbound {
    envelope: RequestEnvelope,
    completions: Sender<Completion>,
}

/// How a submission behaves when the shard's ingress queue is full.
#[derive(Clone, Copy)]
enum Admission {
    /// Park until a slot frees — backpressure, the blocking API's choice.
    Block,
    /// Fail fast with [`ServiceError::Busy`].
    FailFast,
}

/// Cloneable routing client for a running [`DocsService`].
///
/// Two API styles over one wire protocol:
///
/// * the **blocking** methods ([`ServiceHandle::request_tasks_in`],
///   [`ServiceHandle::submit_answer_batch_in`], …) submit and immediately
///   [`Ticket::wait`] — one synchronous round-trip, exactly like an HTTP
///   call to the paper's Django backend;
/// * the **pipelined** methods (`*_ticket_in` to park on a full queue,
///   `try_*_in` to fail fast with [`ServiceError::Busy`]) return the
///   [`Ticket`] itself, letting one client thread keep many operations in
///   flight per shard and harvest completions when it pleases.
///
/// Handles are cheap to clone and safe to use from many threads.
#[derive(Clone)]
pub struct ServiceHandle {
    shards: Arc<Vec<Sender<Inbound>>>,
    next_campaign: Arc<AtomicU32>,
    next_correlation: Arc<AtomicU64>,
    metrics: ServiceMetrics,
    default_campaign: CampaignId,
    default_flush: Option<FlushPolicy>,
    crash: Arc<AtomicBool>,
    role: RoleCell,
}

impl ServiceHandle {
    /// The submission half of every operation: tags the request with a
    /// fresh correlation id, admits it onto the owning shard's bounded
    /// queue under `admission`, and returns the typed completion handle.
    fn submit_with<T>(
        &self,
        request: Request,
        admission: Admission,
        decode: fn(Response) -> Result<T, ServiceError>,
    ) -> Result<Ticket<T>, ServiceError> {
        let shard = request.campaign().shard(self.shards.len());
        self.submit_to_shard(shard, request, admission, decode)
    }

    /// Like [`submit_with`](Self::submit_with) but with an explicit target
    /// shard — the broadcast path (`InstallMap`) sends one copy per shard
    /// instead of routing by campaign.
    fn submit_to_shard<T>(
        &self,
        shard: usize,
        request: Request,
        admission: Admission,
        decode: fn(Response) -> Result<T, ServiceError>,
    ) -> Result<Ticket<T>, ServiceError> {
        let correlation = self.next_correlation.fetch_add(1, Ordering::Relaxed);
        let (completion_tx, completion_rx) = bounded(1);
        // Sampled tracing: the unsampled path is one relaxed load inside
        // `maybe_trace`. A sampled envelope closes its client-submit span
        // here, so everything until the shard dequeues it is queue wait.
        let trace = self.metrics.maybe_trace(correlation).map(|mut t| {
            t.span(SpanKind::ClientSubmit);
            Box::new(t)
        });
        let inbound = Inbound {
            envelope: RequestEnvelope {
                correlation,
                request,
                trace,
            },
            completions: completion_tx,
        };
        let depth = self.metrics.shard_enqueued(shard);
        let outcome = match admission {
            Admission::Block => self.shards[shard]
                .send(inbound)
                .map_err(|_| ServiceError::Disconnected),
            Admission::FailFast => self.shards[shard].try_send(inbound).map_err(|e| match e {
                TrySendError::Full(_) => {
                    self.metrics.busy_rejection(shard);
                    ServiceError::Busy { shard }
                }
                TrySendError::Disconnected(_) => ServiceError::Disconnected,
            }),
        };
        if let Err(e) = outcome {
            // The request never entered the queue: roll the depth back so
            // no phantom high-water mark survives.
            self.metrics.shard_enqueue_failed(shard);
            return Err(e);
        }
        // High-water mark only once the request is really in the queue.
        self.metrics.shard_send_recorded(shard, depth);
        self.metrics.ticket_issued(shard);
        Ok(Ticket::new(
            completion_rx,
            correlation,
            shard,
            decode,
            self.metrics.clone(),
        ))
    }

    fn create_campaign_inner(
        &self,
        docs: Docs,
        persistence: Option<FlushPolicy>,
    ) -> Result<CampaignId, ServiceError> {
        let campaign = CampaignId(self.next_campaign.fetch_add(1, Ordering::Relaxed));
        self.submit_with(
            Request::CreateCampaign {
                campaign,
                docs: Box::new(docs),
                persistence,
            },
            Admission::Block,
            decode_created,
        )?
        .wait()
    }

    /// Registers a published system as a new campaign and returns its id.
    /// The campaign is persisted iff its own `DocsConfig::durable_flush`
    /// asks for it (and the service was spawned with durability).
    pub fn create_campaign(&self, docs: Docs) -> Result<CampaignId, ServiceError> {
        self.create_campaign_inner(docs, None)
    }

    /// Registers a campaign with an explicit persistence override: the
    /// campaign's events are logged under `policy` regardless of what its
    /// `DocsConfig` says. Fails if the service has no durability directory.
    pub fn create_campaign_with(
        &self,
        docs: Docs,
        policy: FlushPolicy,
    ) -> Result<CampaignId, ServiceError> {
        self.create_campaign_inner(docs, Some(policy))
    }

    /// Registers a durable campaign under the service's default flush
    /// policy ([`DurabilityConfig::default_flush`]).
    pub fn create_campaign_durable(&self, docs: Docs) -> Result<CampaignId, ServiceError> {
        let policy = self.default_flush.ok_or(ServiceError::Rejected(
            RejectReason::DurabilityUnavailable { campaign: None },
        ))?;
        self.create_campaign_inner(docs, Some(policy))
    }

    /// The campaign the un-suffixed convenience methods target.
    pub fn default_campaign(&self) -> CampaignId {
        self.default_campaign
    }

    /// The service's current replica role.
    pub fn role(&self) -> ReplicaRole {
        self.role.get()
    }

    /// Flips the service to [`ReplicaRole::Primary`]: mutations are
    /// accepted from the next request on, and the replication plane is
    /// refused. This is the *mechanism* of failover; the *policy* (drain
    /// every received frame first, record the promotion watermark) lives in
    /// `docs-replication`'s follower controller — prefer promoting through
    /// it so no in-flight frame is abandoned below the promised watermark.
    pub fn promote_to_primary(&self) {
        self.role.set(ReplicaRole::Primary);
        self.metrics
            .journal()
            .info(JournalKind::Promotion, "replica promoted to primary");
    }

    /// Fault injection: makes every shard behave as if the process died —
    /// each shard thread stops at its next loop turn *without* flushing its
    /// group-commit buffer, so acknowledged-but-unsynced events are lost
    /// exactly as a real `kill -9` would lose them. Drop all handles
    /// afterwards to unblock shards waiting on their queues; then recover
    /// with [`DocsService::recover`].
    pub fn simulate_crash(&self) {
        self.crash.store(true, Ordering::SeqCst);
    }

    // ------------------------------------------------------------------
    // Pipelined submissions: enqueue now, harvest the completion later.
    // ------------------------------------------------------------------

    /// Submits "a worker requests tasks" on one campaign and returns the
    /// completion handle without waiting. Parks if the shard's ingress
    /// queue is full.
    pub fn request_tasks_ticket_in(
        &self,
        campaign: CampaignId,
        worker: WorkerId,
    ) -> Result<Ticket<WorkRequest>, ServiceError> {
        self.submit_with(
            Request::RequestWork { campaign, worker },
            Admission::Block,
            decode_work,
        )
    }

    /// Fail-fast form of [`ServiceHandle::request_tasks_ticket_in`]:
    /// returns [`ServiceError::Busy`] instead of parking when the shard's
    /// ingress queue is at capacity.
    pub fn try_request_tasks_in(
        &self,
        campaign: CampaignId,
        worker: WorkerId,
    ) -> Result<Ticket<WorkRequest>, ServiceError> {
        self.submit_with(
            Request::RequestWork { campaign, worker },
            Admission::FailFast,
            decode_work,
        )
    }

    /// Registers an assignment subscription for `(campaign, worker)` and
    /// returns its completion handle: the push-dispatch plane's entry
    /// point. The ticket resolves with [`WorkRequest`] — immediately when
    /// the worker is servable right now, or when the shard's next dispatch
    /// pass pushes an assignment (the subscription *parks* on the shard in
    /// the meantime). On a [`DispatchMode::Pull`] service the ticket
    /// resolves with [`RejectReason::Invalid`].
    pub fn subscribe_assignments_ticket_in(
        &self,
        campaign: CampaignId,
        worker: WorkerId,
    ) -> Result<Ticket<WorkRequest>, ServiceError> {
        self.submit_with(
            Request::Subscribe { campaign, worker },
            Admission::Block,
            decode_work,
        )
    }

    /// Fail-fast form of [`ServiceHandle::subscribe_assignments_ticket_in`].
    pub fn try_subscribe_assignments_in(
        &self,
        campaign: CampaignId,
        worker: WorkerId,
    ) -> Result<Ticket<WorkRequest>, ServiceError> {
        self.submit_with(
            Request::Subscribe { campaign, worker },
            Admission::FailFast,
            decode_work,
        )
    }

    /// Drops `(campaign, worker)`'s parked subscription, if any; the
    /// outstanding subscribe ticket resolves with `Work(Done)`. Idempotent
    /// — unsubscribing without a parked subscription still acks. The
    /// hybrid client's fallback edge: unsubscribe, then poll.
    pub fn unsubscribe_ticket_in(
        &self,
        campaign: CampaignId,
        worker: WorkerId,
    ) -> Result<Ticket<()>, ServiceError> {
        self.submit_with(
            Request::Unsubscribe { campaign, worker },
            Admission::Block,
            decode_ack,
        )
    }

    /// Blocking form of [`ServiceHandle::unsubscribe_ticket_in`].
    pub fn unsubscribe_in(
        &self,
        campaign: CampaignId,
        worker: WorkerId,
    ) -> Result<(), ServiceError> {
        self.unsubscribe_ticket_in(campaign, worker)?.wait()
    }

    /// Submits a golden HIT on one campaign without waiting for the ack.
    pub fn submit_golden_ticket_in(
        &self,
        campaign: CampaignId,
        worker: WorkerId,
        answers: Vec<(TaskId, ChoiceIndex)>,
    ) -> Result<Ticket<()>, ServiceError> {
        self.submit_with(
            Request::SubmitGolden {
                campaign,
                worker,
                answers,
            },
            Admission::Block,
            decode_ack,
        )
    }

    /// Fail-fast form of [`ServiceHandle::submit_golden_ticket_in`].
    pub fn try_submit_golden_in(
        &self,
        campaign: CampaignId,
        worker: WorkerId,
        answers: Vec<(TaskId, ChoiceIndex)>,
    ) -> Result<Ticket<()>, ServiceError> {
        self.submit_with(
            Request::SubmitGolden {
                campaign,
                worker,
                answers,
            },
            Admission::FailFast,
            decode_ack,
        )
    }

    /// Submits one answer on one campaign without waiting for the ack.
    pub fn submit_answer_ticket_in(
        &self,
        campaign: CampaignId,
        answer: Answer,
    ) -> Result<Ticket<()>, ServiceError> {
        self.submit_with(
            Request::SubmitAnswer { campaign, answer },
            Admission::Block,
            decode_ack,
        )
    }

    /// Fail-fast form of [`ServiceHandle::submit_answer_ticket_in`].
    pub fn try_submit_answer_in(
        &self,
        campaign: CampaignId,
        answer: Answer,
    ) -> Result<Ticket<()>, ServiceError> {
        self.submit_with(
            Request::SubmitAnswer { campaign, answer },
            Admission::FailFast,
            decode_ack,
        )
    }

    /// Submits a whole HIT's answers on one campaign without waiting for
    /// the per-answer outcome — the pipelined driver's hot path: the next
    /// HIT request can ride the wire while this batch is still being
    /// validated, logged, and applied.
    pub fn submit_answer_batch_ticket_in(
        &self,
        campaign: CampaignId,
        answers: Vec<Answer>,
    ) -> Result<Ticket<BatchOutcome>, ServiceError> {
        self.submit_with(
            Request::SubmitAnswerBatch { campaign, answers },
            Admission::Block,
            decode_batch,
        )
    }

    /// Fail-fast form of [`ServiceHandle::submit_answer_batch_ticket_in`].
    pub fn try_submit_answer_batch_in(
        &self,
        campaign: CampaignId,
        answers: Vec<Answer>,
    ) -> Result<Ticket<BatchOutcome>, ServiceError> {
        self.submit_with(
            Request::SubmitAnswerBatch { campaign, answers },
            Admission::FailFast,
            decode_batch,
        )
    }

    /// Submits a finish (final inference + report) without waiting.
    pub fn finish_ticket_in(
        &self,
        campaign: CampaignId,
    ) -> Result<Ticket<RequesterReport>, ServiceError> {
        self.submit_with(
            Request::Finish { campaign },
            Admission::Block,
            decode_report,
        )
    }

    /// Fail-fast form of [`ServiceHandle::finish_ticket_in`].
    pub fn try_finish_in(
        &self,
        campaign: CampaignId,
    ) -> Result<Ticket<RequesterReport>, ServiceError> {
        self.submit_with(
            Request::Finish { campaign },
            Admission::FailFast,
            decode_report,
        )
    }

    // ------------------------------------------------------------------
    // Pure reads: served by primaries and followers alike — the
    // operations read-routing fans out to replicas.
    // ------------------------------------------------------------------

    /// Submits a status read on one campaign without waiting.
    pub fn status_ticket_in(
        &self,
        campaign: CampaignId,
    ) -> Result<Ticket<CampaignStatus>, ServiceError> {
        self.submit_with(
            Request::Status { campaign },
            Admission::Block,
            decode_status,
        )
    }

    /// The campaign's observable serving state (answers collected, worker
    /// counts, budget) — a pure read, servable by a follower.
    pub fn status_in(&self, campaign: CampaignId) -> Result<CampaignStatus, ServiceError> {
        self.status_ticket_in(campaign)?.wait()
    }

    /// Submits an inferred-truths read on one campaign without waiting.
    pub fn peek_report_ticket_in(
        &self,
        campaign: CampaignId,
    ) -> Result<Ticket<RequesterReport>, ServiceError> {
        self.submit_with(
            Request::PeekReport { campaign },
            Admission::Block,
            decode_report,
        )
    }

    /// The requester report under the campaign's *current* state — unlike
    /// [`ServiceHandle::finish_in`], no `Finished` event is applied (no
    /// full-inference pass is forced, nothing is logged), so this is a
    /// pure read a follower serves locally.
    pub fn peek_report_in(&self, campaign: CampaignId) -> Result<RequesterReport, ServiceError> {
        self.peek_report_ticket_in(campaign)?.wait()
    }

    /// The campaign's full serialized `CampaignSnapshot` — the
    /// byte-identity probe: a follower at watermark `w` returns exactly
    /// the bytes the primary's state had at `w`.
    pub fn snapshot_state_in(&self, campaign: CampaignId) -> Result<Vec<u8>, ServiceError> {
        self.submit_with(
            Request::SnapshotState { campaign },
            Admission::Block,
            decode_state,
        )?
        .wait()
    }

    // ------------------------------------------------------------------
    // Replication plane: fed by a follower's applier, refused elsewhere.
    // ------------------------------------------------------------------

    /// Installs a replicated campaign snapshot on this follower (bootstrap
    /// or fast-forward), covering sequences up to `seq`.
    pub fn replicate_install_snapshot(
        &self,
        campaign: CampaignId,
        seq: u64,
        snapshot: Vec<u8>,
    ) -> Result<(), ServiceError> {
        self.submit_with(
            Request::InstallSnapshot {
                campaign,
                seq,
                snapshot,
            },
            Admission::Block,
            decode_ack,
        )?
        .wait()
    }

    /// Applies one replicated event at its primary-assigned sequence
    /// number on this follower. The caller (the applier) guarantees
    /// per-campaign gap-free order.
    pub fn replicate_apply(
        &self,
        campaign: CampaignId,
        seq: u64,
        event: CampaignEvent,
    ) -> Result<(), ServiceError> {
        self.submit_with(
            Request::ApplyReplicated {
                campaign,
                seq,
                event: Box::new(event),
            },
            Admission::Block,
            decode_ack,
        )?
        .wait()
    }

    // ------------------------------------------------------------------
    // Cluster control plane: fencing, migration intake, directory
    // installs (see ARCHITECTURE.md, "Cluster & migration").
    // ------------------------------------------------------------------

    /// Fences `campaign` away to `owner`: the owning shard hardens the
    /// campaign's buffered events, ships them, records the hand-off, and
    /// returns the hardened watermark — every later mutation of the
    /// campaign is refused with [`RejectReason::WrongNode`] naming
    /// `owner`. The linearization point of a live migration.
    pub fn fence_in(&self, campaign: CampaignId, owner: NodeId) -> Result<u64, ServiceError> {
        self.submit_with(
            Request::Fence { campaign, owner },
            Admission::Block,
            decode_fenced,
        )?
        .wait()
    }

    /// Begins migration intake for `campaign`: this pool admits the
    /// replication plane for it (despite running as a primary) and
    /// redirects mutations back to `source` until
    /// [`ServiceHandle::complete_migration_in`].
    pub fn prepare_migration_in(
        &self,
        campaign: CampaignId,
        source: NodeId,
    ) -> Result<(), ServiceError> {
        self.submit_with(
            Request::PrepareMigration { campaign, source },
            Admission::Block,
            decode_ack,
        )?
        .wait()
    }

    /// Adopts the migrated campaign's write path: ends intake, clears any
    /// stale fence from a previous round-trip.
    pub fn complete_migration_in(&self, campaign: CampaignId) -> Result<(), ServiceError> {
        self.submit_with(
            Request::CompleteMigration { campaign },
            Admission::Block,
            decode_ack,
        )?
        .wait()
    }

    /// Installs a routing directory on **every** shard of this pool
    /// (broadcast — the one request not routed by campaign). Fresher
    /// epochs win per shard; stale installs are acknowledged and dropped.
    pub fn install_cluster_map(&self, map: &ClusterMap) -> Result<(), ServiceError> {
        let tickets: Vec<Ticket<()>> = (0..self.shards.len())
            .map(|shard| {
                self.submit_to_shard(
                    shard,
                    Request::InstallMap {
                        map: Box::new(map.clone()),
                    },
                    Admission::Block,
                    decode_ack,
                )
            })
            .collect::<Result<_, _>>()?;
        for ticket in tickets {
            ticket.wait()?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Blocking API: submit + wait, one synchronous round-trip.
    // ------------------------------------------------------------------

    /// "A worker comes and requests tasks" on one campaign.
    pub fn request_tasks_in(
        &self,
        campaign: CampaignId,
        worker: WorkerId,
    ) -> Result<WorkRequest, ServiceError> {
        self.request_tasks_ticket_in(campaign, worker)?.wait()
    }

    /// Submits a new worker's golden-HIT answers on one campaign.
    pub fn submit_golden_in(
        &self,
        campaign: CampaignId,
        worker: WorkerId,
        answers: Vec<(TaskId, ChoiceIndex)>,
    ) -> Result<(), ServiceError> {
        self.submit_golden_ticket_in(campaign, worker, answers)?
            .wait()
    }

    /// Submits one answer on one campaign.
    pub fn submit_answer_in(
        &self,
        campaign: CampaignId,
        answer: Answer,
    ) -> Result<(), ServiceError> {
        self.submit_answer_ticket_in(campaign, answer)?.wait()
    }

    /// Submits a whole HIT's answers on one campaign in a single
    /// round-trip (one WAL record, one group-commit sync, one
    /// benefit-index repair on the owning shard). Rejection is per answer:
    /// the returned [`BatchOutcome`] names which answers were refused and
    /// why, exactly as individual submissions would have been.
    pub fn submit_answer_batch_in(
        &self,
        campaign: CampaignId,
        answers: Vec<Answer>,
    ) -> Result<BatchOutcome, ServiceError> {
        self.submit_answer_batch_ticket_in(campaign, answers)?
            .wait()
    }

    /// Finalizes one campaign's inference and returns its report.
    pub fn finish_in(&self, campaign: CampaignId) -> Result<RequesterReport, ServiceError> {
        self.finish_ticket_in(campaign)?.wait()
    }

    /// "A worker comes and requests tasks" (default campaign).
    pub fn request_tasks(&self, worker: WorkerId) -> Result<WorkRequest, ServiceError> {
        self.request_tasks_in(self.default_campaign, worker)
    }

    /// Submits a new worker's golden-HIT answers (default campaign).
    pub fn submit_golden(
        &self,
        worker: WorkerId,
        answers: Vec<(TaskId, ChoiceIndex)>,
    ) -> Result<(), ServiceError> {
        self.submit_golden_in(self.default_campaign, worker, answers)
    }

    /// Submits one answer (default campaign).
    pub fn submit_answer(&self, answer: Answer) -> Result<(), ServiceError> {
        self.submit_answer_in(self.default_campaign, answer)
    }

    /// Submits an answer batch (default campaign).
    pub fn submit_answer_batch(&self, answers: Vec<Answer>) -> Result<BatchOutcome, ServiceError> {
        self.submit_answer_batch_in(self.default_campaign, answers)
    }

    /// Finalizes inference and returns the requester report (default
    /// campaign).
    pub fn finish(&self) -> Result<RequesterReport, ServiceError> {
        self.finish_in(self.default_campaign)
    }

    /// The shared latency/queue/durability metrics.
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.metrics
    }
}

// Completion decoders: one per operation kind. Rejections pass through as
// typed errors; a cross-typed response is a protocol violation (the shard
// echoed the wrong correlation's payload), which per-ticket one-shot slots
// make impossible short of a bug.
fn decode_created(response: Response) -> Result<CampaignId, ServiceError> {
    match response {
        Response::CampaignCreated(id) => Ok(id),
        Response::Rejected(reason) => Err(ServiceError::Rejected(reason)),
        other => unreachable!("protocol violation: {other:?}"),
    }
}

fn decode_work(response: Response) -> Result<WorkRequest, ServiceError> {
    match response {
        Response::Work(w) => Ok(w),
        Response::Rejected(reason) => Err(ServiceError::Rejected(reason)),
        other => unreachable!("protocol violation: {other:?}"),
    }
}

fn decode_ack(response: Response) -> Result<(), ServiceError> {
    match response {
        Response::Ack => Ok(()),
        Response::Rejected(reason) => Err(ServiceError::Rejected(reason)),
        other => unreachable!("protocol violation: {other:?}"),
    }
}

fn decode_batch(response: Response) -> Result<BatchOutcome, ServiceError> {
    match response {
        Response::BatchAck(outcome) => Ok(outcome),
        Response::Rejected(reason) => Err(ServiceError::Rejected(reason)),
        other => unreachable!("protocol violation: {other:?}"),
    }
}

fn decode_report(response: Response) -> Result<RequesterReport, ServiceError> {
    match response {
        Response::Report(r) => Ok(*r),
        Response::Rejected(reason) => Err(ServiceError::Rejected(reason)),
        other => unreachable!("protocol violation: {other:?}"),
    }
}

fn decode_status(response: Response) -> Result<CampaignStatus, ServiceError> {
    match response {
        Response::Status(s) => Ok(*s),
        Response::Rejected(reason) => Err(ServiceError::Rejected(reason)),
        other => unreachable!("protocol violation: {other:?}"),
    }
}

fn decode_state(response: Response) -> Result<Vec<u8>, ServiceError> {
    match response {
        Response::State(bytes) => Ok(bytes),
        Response::Rejected(reason) => Err(ServiceError::Rejected(reason)),
        other => unreachable!("protocol violation: {other:?}"),
    }
}

fn decode_fenced(response: Response) -> Result<u64, ServiceError> {
    match response {
        Response::Fenced { watermark } => Ok(watermark),
        Response::Rejected(reason) => Err(ServiceError::Rejected(reason)),
        other => unreachable!("protocol violation: {other:?}"),
    }
}

/// A running DOCS service (the shard-thread pool).
pub struct DocsService {
    joins: Vec<JoinHandle<CampaignRegistry>>,
    default_campaign: CampaignId,
}

/// Runs a data-plane handler against one campaign's state; an unknown id
/// gets the one [`RejectReason::UnknownCampaign`] every request kind
/// shares.
fn on_campaign(
    registry: &mut CampaignRegistry,
    campaign: CampaignId,
    f: impl FnOnce(&mut Docs) -> Response,
) -> Response {
    match registry.get_mut(campaign) {
        Some(docs) => f(docs),
        None => Response::Rejected(RejectReason::UnknownCampaign(campaign)),
    }
}

/// A sealed-but-unshipped item of one shard's replication feed, queued in
/// append order until the group commit that hardens it completes.
enum Unshipped {
    Snapshot(SnapshotFrame),
    Event(EventFrame),
}

/// One shard's durability state: its campaign log plus the set of campaigns
/// whose events it records.
struct ShardDurability {
    log: CampaignLog,
    persisted: BTreeSet<CampaignId>,
    /// Sequence each campaign's latest snapshot covers — clean campaigns
    /// (no events since) are skipped by the snapshot cycle.
    snapshotted_at: HashMap<CampaignId, u64>,
    snapshot_every: u64,
    events_since_snapshot: u64,
    observed_flushes: u64,
    /// Replication feed (primary side): frames queue here at append time
    /// and ship only once the log's buffer is empty — i.e. once the events
    /// they carry are actually on disk.
    sink: Option<ReplicationSink>,
    unshipped: Vec<Unshipped>,
}

impl ShardDurability {
    fn snapshot_campaign(
        &mut self,
        campaign: CampaignId,
        docs: &Docs,
        metrics: &ServiceMetrics,
    ) -> docs_types::Result<()> {
        let bytes = codec::to_bytes(&docs.snapshot());
        let seq = self.log.write_snapshot(campaign, &bytes)?;
        self.snapshotted_at.insert(campaign, seq);
        metrics.snapshot_written();
        if self.sink.is_some() {
            self.unshipped.push(Unshipped::Snapshot(SnapshotFrame {
                campaign,
                seq,
                payload: bytes,
            }));
        }
        Ok(())
    }

    /// Queues one appended event for shipping (no-op without a sink). The
    /// payload is the exact WAL record payload, so followers replay the
    /// same bytes recovery would. Takes the encoded bytes by value: the
    /// append path is done with them, so shipping moves the allocation
    /// instead of copying it.
    fn queue_event_for_ship(&mut self, campaign: CampaignId, seq: u64, payload: Vec<u8>) {
        if self.sink.is_some() {
            self.unshipped.push(Unshipped::Event(EventFrame {
                campaign,
                seq,
                payload,
            }));
        }
    }

    /// Ships everything queued, provided the log's buffer is empty (all
    /// queued events are durable). Consecutive events coalesce into one
    /// [`ReplicationFrame::Events`] per group commit; snapshots ship as
    /// their own frames, in order. Called *before* a request's completion
    /// is sent, so an acknowledged durable event is always already on the
    /// wire to the followers.
    fn ship(&mut self, metrics: &ServiceMetrics) {
        let Some(sink) = &self.sink else {
            return;
        };
        if self.unshipped.is_empty() || self.log.pending_events() != 0 {
            return;
        }
        let mut batch: Vec<EventFrame> = Vec::new();
        let mut frames: Vec<ReplicationFrame> = Vec::new();
        for item in self.unshipped.drain(..) {
            match item {
                Unshipped::Event(event) => batch.push(event),
                Unshipped::Snapshot(snapshot) => {
                    if !batch.is_empty() {
                        frames.push(ReplicationFrame::Events(std::mem::take(&mut batch)));
                    }
                    frames.push(ReplicationFrame::Snapshot(snapshot));
                }
            }
        }
        if !batch.is_empty() {
            frames.push(ReplicationFrame::Events(batch));
        }
        for frame in frames {
            let events = frame.num_events() as u64;
            if !sink.ship(frame) {
                // Hub gone: stop feeding a dead wire but keep serving.
                self.sink = None;
                self.unshipped.clear();
                return;
            }
            metrics.frame_shipped(events);
        }
    }

    /// Re-baselines the *dirty* persisted campaigns on the shard (those
    /// with events beyond their latest snapshot) and prunes the log
    /// segments the snapshots superseded. Clean campaigns keep their
    /// existing snapshot — it already covers every event they have, so
    /// pruning stays safe without re-serializing idle state.
    fn snapshot_cycle(
        &mut self,
        registry: &CampaignRegistry,
        metrics: &ServiceMetrics,
    ) -> docs_types::Result<()> {
        let campaigns: Vec<CampaignId> = self.persisted.iter().copied().collect();
        for campaign in campaigns {
            if self.log.last_seq(campaign)
                == self.snapshotted_at.get(&campaign).copied().unwrap_or(0)
            {
                continue;
            }
            if let Some(docs) = registry.get(campaign) {
                self.snapshot_campaign(campaign, docs, metrics)?;
            }
        }
        self.log.prune_segments()?;
        self.events_since_snapshot = 0;
        Ok(())
    }

    /// Publishes flush gauges when the log flushed since the last look.
    fn observe(&mut self, shard: usize, metrics: &ServiceMetrics) {
        let stats = self.log.stats();
        if stats.flushes == self.observed_flushes {
            return;
        }
        self.observed_flushes = stats.flushes;
        metrics.shard_log_observed(
            shard,
            stats.appended,
            stats.flushes,
            stats.last_flush,
            stats.max_flush,
            self.log.on_disk_bytes(),
        );
    }
}

/// Validates, logs (for persisted campaigns), and applies one event, then
/// builds the success response. The write-ahead discipline: nothing is
/// applied before it is in the log buffer, and nothing rejected ever
/// reaches the log.
fn apply_event(
    registry: &mut CampaignRegistry,
    durability: &mut Option<ShardDurability>,
    metrics: &ServiceMetrics,
    shard: usize,
    campaign: CampaignId,
    event: CampaignEvent,
    success: impl FnOnce(&mut Docs) -> Response,
) -> Response {
    let Some(docs) = registry.get_mut(campaign) else {
        return Response::Rejected(RejectReason::UnknownCampaign(campaign));
    };
    if let Some(d) = durability
        .as_mut()
        .filter(|d| d.persisted.contains(&campaign))
    {
        if let Err(e) = docs.validate_event(&event) {
            return Response::Rejected(e.into());
        }
        let bytes = codec::encode_event(&event);
        let seq = match d.log.append_event(campaign, &bytes) {
            Ok(seq) => seq,
            Err(e) => return Response::Rejected(e.into()),
        };
        d.queue_event_for_ship(campaign, seq, bytes);
        d.events_since_snapshot += 1;
        d.observe(shard, metrics);
    }
    match docs.apply(&event) {
        Ok(()) => success(docs),
        Err(e) => Response::Rejected(e.into()),
    }
}

/// Validates and applies one answer batch: the accepted sub-batch becomes
/// **one** [`CampaignEvent::AnswerBatchSubmitted`] — one WAL record, one
/// group-commit decision, one `fdatasync` — while rejected answers are
/// reported per position without ever reaching the log. The event itself
/// goes through [`apply_event`], so the batch path shares the exact
/// write-ahead discipline (whole-event validation before logging included)
/// rather than re-implementing it.
fn apply_answer_batch(
    registry: &mut CampaignRegistry,
    durability: &mut Option<ShardDurability>,
    metrics: &ServiceMetrics,
    shard: usize,
    campaign: CampaignId,
    answers: Vec<Answer>,
) -> Response {
    let Some(docs) = registry.get(campaign) else {
        return Response::Rejected(RejectReason::UnknownCampaign(campaign));
    };
    let (accepted, rejected) = docs.validate_answer_batch(&answers);
    let outcome = BatchOutcome {
        accepted: accepted.len(),
        rejected: rejected.into_iter().map(|(i, e)| (i, e.into())).collect(),
    };
    if accepted.is_empty() {
        return Response::BatchAck(outcome);
    }
    apply_event(
        registry,
        durability,
        metrics,
        shard,
        campaign,
        CampaignEvent::answer_batch(accepted),
        move |_| Response::BatchAck(outcome),
    )
}

/// Handles a replicated snapshot install on a follower shard: restores the
/// campaign (replacing any earlier registration — a fast-forward), and, on
/// a durable follower whose campaign opts in, registers the local log at
/// the shipped sequence and writes its own baseline snapshot so the
/// follower is independently recoverable (and can itself be a shipping
/// primary after promotion).
fn install_snapshot(
    registry: &mut CampaignRegistry,
    durability: &mut Option<ShardDurability>,
    metrics: &ServiceMetrics,
    next_campaign: &AtomicU32,
    campaign: CampaignId,
    seq: u64,
    snapshot: &[u8],
) -> Response {
    if let Err(e) = registry.install_snapshot(campaign, snapshot) {
        return Response::Rejected(e.into());
    }
    // Keep the handle-level allocator ahead of every replicated id, so the
    // first `create_campaign` after this follower is promoted cannot
    // collide with a campaign it replicated.
    next_campaign.fetch_max(campaign.0 + 1, Ordering::SeqCst);
    metrics.snapshot_installed();
    if let Some(d) = durability.as_mut() {
        let policy = registry
            .get(campaign)
            .and_then(|docs| docs.config().durable_flush);
        if let Some(policy) = policy {
            d.log.register(campaign, policy, seq);
            d.persisted.insert(campaign);
            if let Some(docs) = registry.get(campaign) {
                if let Err(e) = d.snapshot_campaign(campaign, docs, metrics) {
                    return Response::Rejected(e.into());
                }
            }
        }
    }
    Response::Ack
}

/// Applies one replicated event on a follower shard through the exact
/// write-ahead discipline the primary used ([`apply_event`]): validated
/// against the follower's state, appended to the follower's own log when
/// the campaign is durable here, then applied. On a durable follower the
/// locally assigned sequence must equal the primary's — the logs stay
/// byte-compatible — so a misaligned stream is refused instead of forking
/// the history.
fn apply_replicated(
    registry: &mut CampaignRegistry,
    durability: &mut Option<ShardDurability>,
    metrics: &ServiceMetrics,
    shard: usize,
    campaign: CampaignId,
    seq: u64,
    event: CampaignEvent,
) -> Response {
    if let Some(d) = durability
        .as_ref()
        .filter(|d| d.persisted.contains(&campaign))
    {
        let expected = d.log.last_seq(campaign) + 1;
        if seq != expected {
            return Response::Rejected(RejectReason::Storage(format!(
                "replicated event for campaign {campaign} arrived at sequence {seq}; \
                 the local log expects {expected}"
            )));
        }
    }
    let response = apply_event(
        registry,
        durability,
        metrics,
        shard,
        campaign,
        event,
        |_| Response::Ack,
    );
    if matches!(response, Response::Ack) {
        metrics.replicated_applied();
    }
    response
}

/// One parked assignment subscription: the subscriber's one-shot
/// completion slot, held by the shard until the campaign's dispatch epoch
/// advances (or the worker unsubscribes / the budget exhausts).
struct ParkedSub {
    completions: Sender<Completion>,
    correlation: CorrelationId,
    parked_at: Instant,
}

/// One worker's outstanding pushed-HIT lease: how many pushed HITs it
/// holds unanswered and when the last one was dispatched.
struct Lease {
    outstanding: usize,
    last_dispatch: Instant,
}

/// Per-shard push-dispatch state: parked subscriptions, in-flight leases,
/// and the last dispatch epoch consulted per campaign. Lives on the shard
/// thread next to the registry — share-nothing like everything else.
struct DispatchTable {
    config: DispatchConfig,
    /// Parked subscriptions per campaign. A `BTreeMap` keyed by worker so
    /// a dispatch pass serves subscribers in a deterministic order.
    parked: HashMap<CampaignId, BTreeMap<WorkerId, ParkedSub>>,
    /// Outstanding pushed-HIT leases per campaign.
    leases: HashMap<CampaignId, HashMap<WorkerId, Lease>>,
    /// The dispatch epoch each campaign was last served at: a pass whose
    /// epoch matches is a no-op (nothing changed since), which is what
    /// keeps the per-request trigger O(1) when no answers land.
    epochs: HashMap<CampaignId, u64>,
    /// When the leases were last scanned for expiry. The scan is O(live
    /// leases) — with thousands of concurrent workers that is thousands of
    /// map entries — so it runs at a bounded cadence (a fraction of the
    /// worker timeout), not once per request.
    last_expiry_scan: Instant,
}

impl DispatchTable {
    fn new(config: DispatchConfig) -> Self {
        DispatchTable {
            config,
            parked: HashMap::new(),
            leases: HashMap::new(),
            epochs: HashMap::new(),
            last_expiry_scan: Instant::now(),
        }
    }

    fn push_enabled(&self) -> bool {
        self.config.mode != DispatchMode::Pull
    }

    fn at_capacity(&self, campaign: CampaignId, worker: WorkerId) -> bool {
        self.leases
            .get(&campaign)
            .and_then(|l| l.get(&worker))
            .map_or(0, |lease| lease.outstanding)
            >= self.config.max_in_flight_per_worker
    }

    /// Records one pushed HIT against the worker's lease when the served
    /// work actually hands it tasks (`Done` leases nothing).
    fn lease_if_hit(&mut self, campaign: CampaignId, worker: WorkerId, work: &WorkRequest) {
        if matches!(work, WorkRequest::Done) {
            return;
        }
        let now = Instant::now();
        let lease = self
            .leases
            .entry(campaign)
            .or_default()
            .entry(worker)
            .or_insert(Lease {
                outstanding: 0,
                last_dispatch: now,
            });
        lease.outstanding += 1;
        lease.last_dispatch = now;
    }

    /// Any accepted submission from the worker retires its outstanding
    /// pushed HIT(s): the worker proved it is alive and delivering.
    fn clear_lease(&mut self, campaign: CampaignId, worker: WorkerId) {
        if let Some(leases) = self.leases.get_mut(&campaign) {
            leases.remove(&worker);
        }
    }

    /// Expires leases older than the worker timeout, freeing their
    /// in-flight slots and returning the timed-out workers (each a
    /// dispatch-pass candidate: its parked re-subscription, if any, is
    /// servable again). Tasks were never reserved, so nothing needs to be
    /// returned to a queue — the timed-out HIT's tasks stayed assignable
    /// throughout; expiry re-enqueues the *worker's cap slot*.
    fn expire_leases(
        &mut self,
        shard: usize,
        campaign: CampaignId,
        metrics: &ServiceMetrics,
    ) -> Vec<WorkerId> {
        let timeout = self.config.worker_timeout;
        let now = Instant::now();
        // Cadence gate: at most one full scan per timeout/8, so detection
        // lags expiry by at most one eighth of the timeout — noise against
        // a human-scale worker timeout, and the per-request cost between
        // scans is a single clock read.
        if now.duration_since(self.last_expiry_scan) < timeout / 8 {
            return Vec::new();
        }
        self.last_expiry_scan = now;
        let Some(leases) = self.leases.get_mut(&campaign) else {
            return Vec::new();
        };
        let mut expired = Vec::new();
        leases.retain(|worker, lease| {
            let live = now.duration_since(lease.last_dispatch) < timeout;
            if !live {
                expired.push(*worker);
            }
            live
        });
        for worker in &expired {
            metrics.dispatch_timeout(shard);
            metrics.journal().warn(
                JournalKind::DispatchTimeout,
                format!("shard {shard}: lease for {worker} on {campaign} expired"),
            );
        }
        expired
    }

    /// Parks a subscription, returning any older one it displaced
    /// (newest-wins: the stale ticket must not be left hanging).
    fn park(
        &mut self,
        campaign: CampaignId,
        worker: WorkerId,
        sub: ParkedSub,
    ) -> Option<ParkedSub> {
        self.parked.entry(campaign).or_default().insert(worker, sub)
    }

    fn remove_parked(&mut self, campaign: CampaignId, worker: WorkerId) -> Option<ParkedSub> {
        self.parked.get_mut(&campaign)?.remove(&worker)
    }
}

/// Resolves a parked subscription with `work`, accounting the park-to-
/// dispatch wait under [`OpKind::Subscribe`] and the dispatched task count.
fn resolve_parked(shard: usize, metrics: &ServiceMetrics, sub: ParkedSub, work: WorkRequest) {
    let dispatched = match &work {
        WorkRequest::Golden(t) | WorkRequest::Tasks(t) => t.len() as u64,
        WorkRequest::Done => 0,
    };
    metrics.subscription_resolved(shard);
    if dispatched > 0 {
        metrics.tasks_dispatched(shard, dispatched);
    }
    let parked_for = sub.parked_at.elapsed();
    metrics.record_on(shard, OpKind::Subscribe, parked_for);
    metrics.dispatch_park_recorded(parked_for);
    let _ = sub.completions.send(Completion {
        correlation: sub.correlation,
        response: Response::Work(work),
    });
}

/// Handles [`Request::Subscribe`]: immediate service when the worker can
/// be served right now, parking when it is at its in-flight cap with
/// budget still open. Returns `None` when the subscription parked (no
/// completion is sent yet — the dispatch pass owns it now).
#[allow(clippy::too_many_arguments)]
fn on_subscribe(
    shard: usize,
    registry: &mut CampaignRegistry,
    table: &mut DispatchTable,
    metrics: &ServiceMetrics,
    campaign: CampaignId,
    worker: WorkerId,
    correlation: CorrelationId,
    completions: &Sender<Completion>,
) -> Option<Response> {
    if !table.push_enabled() {
        return Some(Response::Rejected(RejectReason::Invalid(
            "assignment subscriptions require push or hybrid dispatch".into(),
        )));
    }
    let Some(docs) = registry.get_mut(campaign) else {
        return Some(Response::Rejected(RejectReason::UnknownCampaign(campaign)));
    };
    // At the in-flight cap with budget remaining: park until an answer
    // lands (every dispatch pass rechecks) or the lease times out. With
    // the budget exhausted there may never be another state change, so
    // fall through and let `request_tasks` answer `Done` immediately.
    if !docs.budget_exhausted() && table.at_capacity(campaign, worker) {
        let stale = table.park(
            campaign,
            worker,
            ParkedSub {
                completions: completions.clone(),
                correlation,
                parked_at: Instant::now(),
            },
        );
        if let Some(stale) = stale {
            // Newest wins; the displaced ticket is told to stop waiting.
            resolve_parked(shard, metrics, stale, WorkRequest::Done);
        }
        metrics.subscription_parked(shard);
        return None;
    }
    // Servable now: the pick is the exact call a `RequestWork` poll makes,
    // so push picks are byte-identical to pull picks by construction.
    let work = docs.request_tasks(worker);
    table.lease_if_hit(campaign, worker, &work);
    if let WorkRequest::Golden(t) | WorkRequest::Tasks(t) = &work {
        metrics.tasks_dispatched(shard, t.len() as u64);
    }
    Some(Response::Work(work))
}

/// The push plane's heart: runs after any request that may have advanced
/// `campaign`'s dispatch epoch and serves every parked subscriber that
/// became servable. The epoch guard makes the common no-change case one
/// hash lookup and one integer compare — the benefit index is consulted
/// once per *state change*, not once per worker poll.
///
/// A subscription only parks when its worker is at the in-flight cap, and
/// a cap only opens through that worker's own accepted submission
/// (`freed`), its lease timing out (`expire_leases`), or the budget
/// running out (drain everything with a final serve). So the pass visits
/// exactly those workers instead of rescanning the whole table: cost is
/// O(state changes), independent of how many subscribers sit parked.
fn dispatch_pass(
    shard: usize,
    registry: &mut CampaignRegistry,
    table: &mut DispatchTable,
    metrics: &ServiceMetrics,
    campaign: CampaignId,
    freed: &[WorkerId],
) {
    if !table.push_enabled() {
        return;
    }
    let expired = table.expire_leases(shard, campaign, metrics);
    let Some(docs) = registry.get_mut(campaign) else {
        return;
    };
    let epoch = docs.dispatch_epoch();
    if expired.is_empty() && table.epochs.get(&campaign) == Some(&epoch) {
        return;
    }
    table.epochs.insert(campaign, epoch);
    if table.parked.get(&campaign).is_none_or(|p| p.is_empty()) {
        return;
    }
    let workers: Vec<WorkerId> = if docs.budget_exhausted() {
        // The budget is gone: every parked subscriber is drained with a
        // final pick (which answers `Done`) so no ticket waits forever on
        // a campaign that will never change again.
        table.parked[&campaign].keys().copied().collect()
    } else {
        let parked = &table.parked[&campaign];
        freed
            .iter()
            .chain(expired.iter())
            .copied()
            .filter(|w| parked.contains_key(w))
            .collect()
    };
    for worker in workers {
        // Still at cap (e.g. a batch cleared one lease but the worker
        // re-leased in between): stays parked for the next opening.
        if !docs.budget_exhausted() && table.at_capacity(campaign, worker) {
            continue;
        }
        let Some(sub) = table.remove_parked(campaign, worker) else {
            continue;
        };
        let work = docs.request_tasks(worker);
        table.lease_if_hit(campaign, worker, &work);
        resolve_parked(shard, metrics, sub, work);
    }
}

/// The metrics bucket each request kind lands in.
fn kind_of(request: &Request) -> OpKind {
    match request {
        Request::CreateCampaign { .. } => OpKind::Create,
        Request::RequestWork { .. } => OpKind::Assign,
        Request::SubmitGolden { .. } => OpKind::Golden,
        Request::SubmitAnswer { .. } => OpKind::Submit,
        Request::SubmitAnswerBatch { .. } => OpKind::SubmitBatch,
        Request::Subscribe { .. } | Request::Unsubscribe { .. } => OpKind::Subscribe,
        Request::Finish { .. } => OpKind::Finish,
        Request::Status { .. } | Request::PeekReport { .. } | Request::SnapshotState { .. } => {
            OpKind::Read
        }
        Request::InstallSnapshot { .. } | Request::ApplyReplicated { .. } => OpKind::Replicate,
        Request::Fence { .. }
        | Request::PrepareMigration { .. }
        | Request::CompleteMigration { .. }
        | Request::InstallMap { .. } => OpKind::Cluster,
    }
}

/// What a shard starts with: its pre-built registry (empty on a fresh
/// spawn, replayed on recovery) and, per persisted campaign, the flush
/// policy plus the last durable sequence number.
struct ShardSeed {
    registry: CampaignRegistry,
    persisted: Vec<(CampaignId, FlushPolicy, u64)>,
    log: Option<CampaignLog>,
    snapshot_every: u64,
    sink: Option<ReplicationSink>,
    /// The handle-level campaign-id allocator, shared so snapshot installs
    /// keep it ahead of every replicated id (see `install_snapshot`).
    next_campaign: Arc<AtomicU32>,
    dispatch: DispatchConfig,
    node: NodeId,
}

fn shard_loop(
    shard: usize,
    seed: ShardSeed,
    rx: Receiver<Inbound>,
    metrics: ServiceMetrics,
    crash: Arc<AtomicBool>,
    role: RoleCell,
) -> CampaignRegistry {
    let mut registry = seed.registry;
    let seed_next_campaign = seed.next_campaign;
    let mut dispatch = DispatchTable::new(seed.dispatch);
    let mut ownership = OwnershipTable::new(seed.node);
    let mut durability = seed.log.map(|log| ShardDurability {
        log,
        persisted: BTreeSet::new(),
        snapshotted_at: HashMap::new(),
        snapshot_every: seed.snapshot_every,
        events_since_snapshot: 0,
        observed_flushes: 0,
        sink: seed.sink,
        unshipped: Vec::new(),
    });
    // Recovered campaigns: seed sequence counters and write a fresh
    // baseline snapshot into *this* epoch's directory, so the next recovery
    // replays only events from now on.
    if let Some(d) = durability.as_mut() {
        for (campaign, policy, last_seq) in seed.persisted {
            d.log.register(campaign, policy, last_seq);
            d.persisted.insert(campaign);
            if let Some(docs) = registry.get(campaign) {
                d.snapshot_campaign(campaign, docs, &metrics)
                    .expect("write recovery baseline snapshot");
            }
        }
    }

    // The loop ends when every handle (every sender) is dropped — or
    // instantly once a simulated crash is flagged.
    //
    // After a *failed* idle flush, the buffer stays pending and its
    // deadline stays at zero; retry only once per interval window instead
    // of busy-spinning on a disk that keeps erroring.
    let mut idle_flush_retry_at: Option<Instant> = None;
    // Completions withheld by adaptive group commit: an `EveryEvent`
    // campaign's ack promises durability, so while its event sits in the
    // deferred-sync batch the ack (and, to keep per-shard FIFO completion
    // order, every completion behind it) queues here until the batch's one
    // `fdatasync` lands.
    // Each withheld completion carries its request's trace (if sampled) so
    // the flush-wait span can close when the ack is finally released.
    let mut deferred: Vec<DeferredCompletion> = Vec::new();
    loop {
        // Adaptive drain mode: with acks withheld, keep eating queued
        // requests without blocking — the batch grows under load until a
        // bound trips inside `append_event` — and the moment the queue is
        // empty, close the batch (flush + ship + release the acks) instead
        // of sitting on it. Load grows the batch; idleness shrinks it.
        if !deferred.is_empty() {
            match rx.try_recv() {
                Ok(inbound) => {
                    if crash.load(Ordering::SeqCst) {
                        break;
                    }
                    process_one(
                        shard,
                        inbound,
                        &mut registry,
                        &mut durability,
                        &mut dispatch,
                        &mut ownership,
                        &metrics,
                        &role,
                        &seed_next_campaign,
                        &mut deferred,
                    );
                    continue;
                }
                Err(crossbeam::channel::TryRecvError::Empty) => {
                    let d = durability.as_mut().expect("deferred implies durability");
                    close_adaptive_batch(shard, d, &mut deferred, &metrics);
                    continue;
                }
                Err(crossbeam::channel::TryRecvError::Disconnected) => break,
            }
        }
        // `IntervalMs`'s elapsed check only runs at append time, so an
        // *idle* shard would keep acknowledged events buffered
        // indefinitely; when such a deadline is pending, wait with a
        // timeout and harden the buffer the moment the window elapses.
        let deadline = durability
            .as_ref()
            .and_then(|d| d.log.idle_flush_due_in())
            .map(|due| match idle_flush_retry_at {
                Some(retry) => due.max(retry.saturating_duration_since(Instant::now())),
                None => due,
            });
        let inbound = match deadline {
            Some(due) => match rx.recv_timeout(due.max(Duration::from_millis(1))) {
                Ok(inbound) => inbound,
                Err(RecvTimeoutError::Timeout) => {
                    // A simulated kill must not be defeated by the idle
                    // timer hardening the buffer it is meant to lose.
                    if crash.load(Ordering::SeqCst) {
                        break;
                    }
                    let d = durability.as_mut().expect("deadline implies durability");
                    match d.log.flush_if_due() {
                        Ok(flushed) => {
                            idle_flush_retry_at = None;
                            if flushed {
                                // Idle-hardened events are durable now:
                                // they ship exactly like a request-path
                                // group commit's would.
                                d.ship(&metrics);
                            }
                        }
                        Err(e) => {
                            eprintln!("docs-shard-{shard}: idle interval flush failed: {e}");
                            metrics.journal().error(
                                JournalKind::FlushFailure,
                                format!("shard {shard}: idle interval flush failed: {e}"),
                            );
                            // Floored: IntervalMs(0) must not turn a broken
                            // disk into a ~1 kHz retry spin.
                            let backoff = d
                                .log
                                .min_interval()
                                .unwrap_or(Duration::from_secs(1))
                                .max(Duration::from_millis(100));
                            idle_flush_retry_at = Some(Instant::now() + backoff);
                        }
                    }
                    d.observe(shard, &metrics);
                    continue;
                }
                Err(RecvTimeoutError::Disconnected) => break,
            },
            None => match rx.recv() {
                Ok(inbound) => inbound,
                Err(_) => break,
            },
        };
        if crash.load(Ordering::SeqCst) {
            break;
        }
        process_one(
            shard,
            inbound,
            &mut registry,
            &mut durability,
            &mut dispatch,
            &mut ownership,
            &metrics,
            &role,
            &seed_next_campaign,
            &mut deferred,
        );
    }
    if let Some(d) = durability.as_mut() {
        if crash.load(Ordering::SeqCst) {
            // Simulated kill: drop the unflushed group-commit buffer (and
            // the frames queued behind it — a real dead process ships
            // nothing either). Withheld completions are dropped unsent: a
            // dead process never acknowledged them, and the events they
            // would have acknowledged just vanished with the buffer.
            d.log.abandon();
            deferred.clear();
        } else {
            if d.log.flush().is_ok() {
                d.ship(&metrics);
            }
            d.observe(shard, &metrics);
            // Shutdown closes the final adaptive batch like any other:
            // flush first, then release the withheld acks in order.
            release_deferred(&mut deferred, &metrics);
        }
    }
    registry
}

/// Flushes the adaptive group-commit batch, ships what became durable, and
/// releases the withheld completions in arrival order. A failed flush is a
/// durability *delay*, same as the append path's policy flush: the buffer
/// resumes at the next trigger, and the acks are released anyway (holding
/// them hostage to a broken disk would deadlock clients without making the
/// events any more durable).
fn close_adaptive_batch(
    shard: usize,
    d: &mut ShardDurability,
    deferred: &mut Vec<DeferredCompletion>,
    metrics: &ServiceMetrics,
) {
    if let Err(e) = d.log.flush() {
        eprintln!("docs-shard-{shard}: adaptive batch flush failed: {e}");
        metrics.journal().error(
            JournalKind::FlushFailure,
            format!("shard {shard}: adaptive batch flush failed: {e}"),
        );
        d.log.clear_strict_pending();
    }
    d.ship(metrics);
    d.observe(shard, metrics);
    release_deferred(deferred, metrics);
}

/// A completion withheld by adaptive group commit, with the trace of the
/// request it acknowledges (if that request was sampled).
type DeferredCompletion = (Sender<Completion>, Completion, Option<Box<TraceContext>>);

/// Sends every withheld completion in arrival order. A sampled request's
/// trace closes its flush-wait span here — the whole deferral window,
/// including the batch `fdatasync` and the post-flush ship, counts as
/// waiting for the flush — and lands in the flight recorder.
fn release_deferred(deferred: &mut Vec<DeferredCompletion>, metrics: &ServiceMetrics) {
    for (tx, completion, trace) in deferred.drain(..) {
        if let Some(mut t) = trace {
            t.span(SpanKind::FlushWait);
            // Record before the send: waking the blocked client is a
            // futex syscall whose cost belongs to the *client's* next
            // span, not to an unattributed tail of this trace.
            metrics.flight().record(t.finish());
        }
        let _ = tx.send(completion);
    }
}

/// Handles one inbound request end to end: role gate, dispatch, finish
/// hardening, snapshot cadence, shipping, and the completion — which is
/// either sent immediately or withheld in `deferred` while adaptive group
/// commit keeps the event it acknowledges buffered.
#[allow(clippy::too_many_arguments)]
fn process_one(
    shard: usize,
    inbound: Inbound,
    registry: &mut CampaignRegistry,
    durability: &mut Option<ShardDurability>,
    dispatch: &mut DispatchTable,
    ownership: &mut OwnershipTable,
    metrics: &ServiceMetrics,
    role: &RoleCell,
    seed_next_campaign: &Arc<AtomicU32>,
    deferred: &mut Vec<DeferredCompletion>,
) {
    let start = Instant::now();
    let RequestEnvelope {
        correlation,
        request,
        mut trace,
    } = inbound.envelope;
    // The trace's mark was last advanced when the submitter closed its
    // client-submit span, so everything since is time spent in the shard's
    // ingress queue.
    if let Some(t) = trace.as_mut() {
        t.span(SpanKind::QueueWait);
    }
    let campaign = request.campaign();
    let kind = kind_of(&request);
    // Under push/hybrid dispatch, remember which workers this request
    // carries answers from: an accepted submission retires the worker's
    // pushed-HIT lease before the dispatch pass runs.
    let submitters: Vec<WorkerId> = if dispatch.push_enabled() {
        match &request {
            Request::SubmitGolden { worker, .. } => vec![*worker],
            Request::SubmitAnswer { answer, .. } => vec![answer.worker],
            Request::SubmitAnswerBatch { answers, .. } => {
                let mut workers: Vec<WorkerId> = answers.iter().map(|a| a.worker).collect();
                workers.sort_unstable();
                workers.dedup();
                workers
            }
            _ => Vec::new(),
        }
    } else {
        Vec::new()
    };
    // The role gate: a follower refuses every external mutation (pure
    // reads and the replication plane pass), a primary refuses the
    // replication plane — unless the campaign is in migration intake,
    // whose shipping feed is the one legitimate primary-side source.
    // Behind the role, the ownership gate: a primary mutation for a
    // campaign this node fenced away (or never owned under the installed
    // directory) is redirected with `WrongNode` instead of applied. Reads
    // stay served locally — a fenced campaign's state is exactly a
    // consistent-but-stale replica of its new owner.
    let refusal = match role.get() {
        ReplicaRole::Follower if !request.is_read() && !request.is_replication() => {
            metrics.read_only_rejection();
            Some(Response::Rejected(RejectReason::ReadOnlyReplica {
                campaign,
            }))
        }
        ReplicaRole::Primary
            if request.is_replication() && !ownership.accepts_replication(campaign) =>
        {
            Some(Response::Rejected(RejectReason::NotAFollower { campaign }))
        }
        ReplicaRole::Primary
            if !request.is_read() && !request.is_replication() && !request.is_cluster_control() =>
        {
            match ownership.admit_mutation(campaign) {
                MutationAdmission::Allowed => None,
                MutationAdmission::Redirect { owner } => {
                    metrics.wrong_node_rejection();
                    metrics.journal().warn(
                        JournalKind::WrongNodeRejection,
                        format!("campaign {campaign}: mutation redirected to {owner}"),
                    );
                    Some(Response::Rejected(RejectReason::WrongNode { owner }))
                }
            }
        }
        _ => None,
    };
    let mut response = match refusal {
        Some(response) => response,
        None => match request {
            Request::CreateCampaign {
                campaign,
                docs,
                persistence,
            } => create_campaign(registry, durability, metrics, campaign, *docs, persistence),
            Request::RequestWork { worker, .. } => on_campaign(registry, campaign, |docs| {
                Response::Work(docs.request_tasks(worker))
            }),
            Request::SubmitGolden {
                worker, answers, ..
            } => apply_event(
                registry,
                durability,
                metrics,
                shard,
                campaign,
                CampaignEvent::golden(worker, answers),
                |_| Response::Ack,
            ),
            Request::SubmitAnswer { answer, .. } => apply_event(
                registry,
                durability,
                metrics,
                shard,
                campaign,
                CampaignEvent::answer(answer),
                |_| Response::Ack,
            ),
            Request::SubmitAnswerBatch { answers, .. } => {
                apply_answer_batch(registry, durability, metrics, shard, campaign, answers)
            }
            Request::Subscribe { worker, .. } => {
                match on_subscribe(
                    shard,
                    registry,
                    dispatch,
                    metrics,
                    campaign,
                    worker,
                    correlation,
                    &inbound.completions,
                ) {
                    Some(response) => response,
                    None => {
                        // Parked: no completion leaves yet — the dispatch
                        // pass owns the slot now. The request itself *was*
                        // dequeued, so the ingress bookkeeping still runs.
                        // A sampled trace ends here unrecorded: the park can
                        // outlive the envelope by an unbounded dispatch wait,
                        // which the park-time histogram tracks instead.
                        let elapsed = start.elapsed();
                        metrics.record_on(shard, kind, elapsed);
                        metrics.shard_processed(shard, elapsed);
                        return;
                    }
                }
            }
            Request::Unsubscribe { worker, .. } => {
                if let Some(sub) = dispatch.remove_parked(campaign, worker) {
                    resolve_parked(shard, metrics, sub, WorkRequest::Done);
                }
                Response::Ack
            }
            Request::Finish { .. } => apply_event(
                registry,
                durability,
                metrics,
                shard,
                campaign,
                CampaignEvent::finished(),
                |docs| Response::Report(Box::new(docs.report())),
            ),
            Request::Status { .. } => on_campaign(registry, campaign, |docs| {
                Response::Status(Box::new(docs.status()))
            }),
            Request::PeekReport { .. } => on_campaign(registry, campaign, |docs| {
                Response::Report(Box::new(docs.report()))
            }),
            Request::SnapshotState { .. } => on_campaign(registry, campaign, |docs| {
                Response::State(codec::to_bytes(&docs.snapshot()))
            }),
            Request::InstallSnapshot { seq, snapshot, .. } => install_snapshot(
                registry,
                durability,
                metrics,
                seed_next_campaign,
                campaign,
                seq,
                &snapshot,
            ),
            Request::ApplyReplicated { seq, event, .. } => {
                apply_replicated(registry, durability, metrics, shard, campaign, seq, *event)
            }
            Request::Fence { owner, .. } => on_fence(
                registry, durability, ownership, metrics, shard, campaign, owner,
            ),
            Request::PrepareMigration { source, .. } => {
                ownership.begin_intake(campaign, source);
                Response::Ack
            }
            Request::CompleteMigration { .. } => {
                ownership.complete_intake(campaign);
                metrics.migration_adopted();
                metrics.journal().info(
                    JournalKind::MigrationAdopted,
                    format!("campaign {campaign} adopted after migration intake"),
                );
                Response::Ack
            }
            Request::InstallMap { map } => {
                if ownership.install_map(&map) {
                    metrics.map_installed();
                    metrics.journal().info(
                        JournalKind::MapInstall,
                        format!("cluster map epoch {} installed", map.epoch()),
                    );
                }
                Response::Ack
            }
        },
    };
    // Validation + event render + WAL append + in-memory apply all
    // happened inside the request match above.
    if let Some(t) = trace.as_mut() {
        t.span(SpanKind::Apply);
    }
    // `finish` is the requester's "my report is final" moment: harden
    // everything buffered for it, whatever the campaign's flush policy.
    // A failed sync fails the finish — handing back a Report while its
    // events are still only in memory would be a silent durability lie
    // (the requester can retry; events stay buffered for the resumed
    // flush).
    if matches!(kind, OpKind::Finish) {
        if let Some(d) = durability
            .as_mut()
            .filter(|d| d.persisted.contains(&campaign))
        {
            if let Err(e) = d.log.flush() {
                response = Response::Rejected(RejectReason::ReportNotDurable {
                    campaign,
                    cause: e.to_string(),
                });
            }
            d.observe(shard, metrics);
        }
    }
    // Snapshot cadence: after enough logged events, re-baseline every
    // campaign on this shard and prune the log.
    if let Some(d) = durability.as_mut() {
        if d.snapshot_every > 0 && d.events_since_snapshot >= d.snapshot_every {
            if let Err(e) = d.snapshot_cycle(registry, metrics) {
                // Keep serving; the log keeps growing until the next
                // cycle succeeds.
                eprintln!("docs-shard-{shard}: snapshot cycle failed: {e}");
                metrics.journal().error(
                    JournalKind::SnapshotFailure,
                    format!("shard {shard}: snapshot cycle failed: {e}"),
                );
            }
            d.observe(shard, metrics);
        }
        // Ship everything this request's group commit made durable
        // *before* acknowledging it: once a completion is out, the
        // event it acknowledged is either still buffered (not yet
        // durable, so not owed to followers) or already on the wire.
        d.ship(metrics);
        // Inline finish-hardening, snapshot cadence, and the ship above
        // all count as the ship stage. An event still held by adaptive
        // group commit ships at batch close instead; its trace folds that
        // into the flush-wait span.
        if let Some(t) = trace.as_mut() {
            t.span(SpanKind::Ship);
        }
    }
    let elapsed = start.elapsed();
    metrics.record_on(shard, kind, elapsed);
    metrics.shard_processed(shard, elapsed);
    let accepted = !matches!(response, Response::Rejected(_));
    // The completion echoes the submission's correlation id. A client
    // that dropped its ticket after submitting is fine.
    let completion = Completion {
        correlation,
        response,
    };
    let strict_pending = durability
        .as_ref()
        .is_some_and(|d| d.log.pending_strict_events() > 0);
    if strict_pending {
        // Adaptive group commit still holds the event this completion
        // acknowledges (or an earlier one — FIFO) in the unsynced batch:
        // withhold the ack until the batch's fdatasync lands.
        deferred.push((inbound.completions, completion, trace));
    } else {
        // Everything acknowledged so far is durable; release any batch
        // acks first so completions leave in arrival order.
        release_deferred(deferred, metrics);
        if let Some(t) = trace {
            // Nothing withheld, so there is no flush-wait span; the
            // trace is complete. Record before the send so the client
            // wake-up (a futex syscall) is not an unattributed tail.
            metrics.flight().record(t.finish());
        }
        let _ = inbound.completions.send(completion);
    }
    // The push plane rides the same state changes the request made: an
    // accepted submission retires its workers' pushed-HIT leases, then the
    // dispatch pass serves whatever parked subscriptions became servable.
    // Pushed assignments are sent directly (above, via `resolve_parked`),
    // never deferred — an assignment promises nothing durable, and each
    // ticket owns a one-shot slot so inter-ticket order is meaningless.
    if dispatch.push_enabled() {
        let freed: &[WorkerId] = if accepted { &submitters } else { &[] };
        for &worker in freed {
            dispatch.clear_lease(campaign, worker);
        }
        dispatch_pass(shard, registry, dispatch, metrics, campaign, freed);
    }
}

/// Handles `CreateCampaign` on the owning shard: plain insert for
/// memory-only campaigns; for persisted ones, the baseline snapshot and the
/// `Published` event are durable *before* the creation is acknowledged.
fn create_campaign(
    registry: &mut CampaignRegistry,
    durability: &mut Option<ShardDurability>,
    metrics: &ServiceMetrics,
    campaign: CampaignId,
    mut docs: Docs,
    persistence: Option<FlushPolicy>,
) -> Response {
    let policy = persistence.or(docs.config().durable_flush);
    let Some(policy) = policy else {
        return match registry.insert(campaign, docs) {
            Ok(()) => Response::CampaignCreated(campaign),
            Err(e) => Response::Rejected(e.into()),
        };
    };
    let Some(d) = durability.as_mut() else {
        return Response::Rejected(RejectReason::DurabilityUnavailable {
            campaign: Some(campaign),
        });
    };
    // Pin the effective policy into the campaign's own config so every
    // snapshot records the policy it actually runs with.
    docs.set_durable_flush(Some(policy));
    d.log.register(campaign, policy, 0);
    let result = d
        .snapshot_campaign(campaign, &docs, metrics)
        .and_then(|()| {
            let event = CampaignEvent::Published(PublishedEvent {
                campaign,
                num_tasks: docs.tasks().len() as u32,
                num_golden: docs.golden_ids().len() as u32,
            });
            let bytes = codec::encode_event(&event);
            let seq = d.log.append_event(campaign, &bytes)?;
            d.queue_event_for_ship(campaign, seq, bytes);
            // Control-plane creation is always synced immediately, whatever
            // the campaign's data-plane policy.
            d.log.flush()?;
            Ok(())
        });
    if let Err(e) = result {
        return Response::Rejected(e.into());
    }
    d.persisted.insert(campaign);
    match registry.insert(campaign, docs) {
        Ok(()) => Response::CampaignCreated(campaign),
        Err(e) => Response::Rejected(e.into()),
    }
}

/// Handles `Fence` on the owning shard: hardens and ships everything the
/// campaign still has buffered, records the hand-off at the resulting
/// watermark, and answers [`Response::Fenced`]. After this returns, no
/// mutation of the campaign can commit locally — the watermark is the
/// migration's linearization point. Memory-only campaigns fence at
/// watermark 0 (a routing-only hand-off; there is no log to harden).
#[allow(clippy::too_many_arguments)]
fn on_fence(
    registry: &mut CampaignRegistry,
    durability: &mut Option<ShardDurability>,
    ownership: &mut OwnershipTable,
    metrics: &ServiceMetrics,
    shard: usize,
    campaign: CampaignId,
    owner: NodeId,
) -> Response {
    if registry.get(campaign).is_none() {
        return Response::Rejected(RejectReason::UnknownCampaign(campaign));
    }
    let mut watermark = 0;
    if let Some(d) = durability
        .as_mut()
        .filter(|d| d.persisted.contains(&campaign))
    {
        // Flush-then-ship before recording the watermark: every event the
        // new owner must chase is durable *and* on the wire when the fence
        // answer (carrying the watermark) leaves this shard.
        if let Err(e) = d.log.flush() {
            return Response::Rejected(RejectReason::Storage(e.to_string()));
        }
        d.ship(metrics);
        d.observe(shard, metrics);
        watermark = d.log.last_seq(campaign);
    }
    ownership.fence(campaign, owner, watermark);
    metrics.campaign_fenced();
    metrics.journal().info(
        JournalKind::Fence,
        format!("campaign {campaign} fenced to {owner} at watermark {watermark}"),
    );
    Response::Fenced { watermark }
}

impl DocsService {
    /// Spawns a single-shard service around one published [`Docs`] — the
    /// seed's API, now routed through the shard pool.
    pub fn spawn(docs: Docs) -> (DocsService, ServiceHandle) {
        Self::spawn_sharded(docs, ServiceConfig::default())
    }

    /// Spawns the shard pool, registers `docs` as the default campaign, and
    /// returns the service plus its first routing handle.
    ///
    /// # Panics
    /// Panics if the durability directory (when configured) cannot be
    /// opened, or if the default campaign is rejected (e.g. it requests
    /// durability on a memory-only pool).
    pub fn spawn_sharded(docs: Docs, config: ServiceConfig) -> (DocsService, ServiceHandle) {
        let shards = config.num_shards();
        let seeds = (0..shards)
            .map(|_| (CampaignRegistry::new(), Vec::new()))
            .collect();
        let (service, handle) = Self::spawn_pool(&config, seeds, 0, CampaignId(0))
            .expect("open durability directory for the shard pool");
        let default_campaign = handle
            .create_campaign(docs)
            .expect("fresh shard pool accepts the default campaign");
        debug_assert_eq!(default_campaign, CampaignId(0));
        (service, handle)
    }

    /// Spawns an **empty follower pool**: no default campaign, every
    /// mutation refused with [`RejectReason::ReadOnlyReplica`]. Campaigns
    /// arrive through the replication plane (snapshot installs + replicated
    /// applies, normally fed by `docs-replication`'s applier), reads are
    /// served locally, and [`ServiceHandle::promote_to_primary`] turns the
    /// pool into a serving primary during failover.
    ///
    /// `config.role` is forced to [`ReplicaRole::Follower`]; durability is
    /// honored (a durable follower writes its own log and is itself
    /// recoverable and promotable into a shipping primary).
    pub fn spawn_replica(
        mut config: ServiceConfig,
    ) -> Result<(DocsService, ServiceHandle), ServiceError> {
        config.role = ReplicaRole::Follower;
        let shards = config.num_shards();
        let seeds = (0..shards)
            .map(|_| (CampaignRegistry::new(), Vec::new()))
            .collect();
        Self::spawn_pool(&config, seeds, 0, CampaignId(0))
    }

    /// Spawns an **empty primary pool**: no default campaign. A cluster
    /// node usually starts this way — campaigns arrive later through
    /// [`ServiceHandle::create_campaign`] or through a migration's intake
    /// (`docs-replication::migrate_campaign` ships a campaign in over the
    /// replication plane and then hands it the write path).
    pub fn spawn_empty(
        config: ServiceConfig,
    ) -> Result<(DocsService, ServiceHandle), ServiceError> {
        let shards = config.num_shards();
        let seeds = (0..shards)
            .map(|_| (CampaignRegistry::new(), Vec::new()))
            .collect();
        Self::spawn_pool(&config, seeds, 0, CampaignId(0))
    }

    /// Rebuilds the full multi-campaign service from its durability
    /// directory: every persisted campaign is restored from its latest
    /// snapshot and the replayed event suffix, then the pool resumes
    /// serving (and logging) exactly where the durable prefix ended.
    ///
    /// The recovering pool may use a different shard count than the one
    /// that wrote the directory — campaigns are re-homed by
    /// [`CampaignId::shard`] and the logs of every past epoch are merged by
    /// per-campaign sequence number.
    pub fn recover(config: ServiceConfig) -> Result<(DocsService, ServiceHandle), ServiceError> {
        let durability = config.durability.clone().ok_or(ServiceError::Rejected(
            RejectReason::RecoverWithoutDurability,
        ))?;
        let tree = recover_tree(&durability.dir).map_err(|e| ServiceError::Rejected(e.into()))?;
        let shards = config.num_shards();
        let metrics = ServiceMetrics::new(shards);
        // Torn segment tails are tolerated crash artifacts — but they are
        // *observations* of a crash, so they surface as a counter instead
        // of being dropped after classification.
        metrics.torn_tail_recovered(tree.torn_tails);
        let mut seeds: PoolSeeds = (0..shards)
            .map(|_| (CampaignRegistry::new(), Vec::new()))
            .collect();
        let mut max_id: Option<u32> = None;
        for (id, campaign) in &tree.campaigns {
            let Some((_, snapshot)) = &campaign.snapshot else {
                // A crash between registering the campaign and writing its
                // baseline snapshot: the creation was never acknowledged,
                // so there is nothing to resurrect.
                continue;
            };
            let shard = id.shard(shards);
            // Arena-backed views out of the recovered tree: cloning a
            // `PayloadBytes` bumps a refcount on the per-file arena, so no
            // event payload is copied on the way into replay.
            let events: Vec<docs_storage::PayloadBytes> = campaign
                .events
                .iter()
                .map(|(_, payload)| payload.clone())
                .collect();
            let stats = seeds[shard]
                .0
                .replay(*id, snapshot, &events)
                .map_err(|e| ServiceError::Rejected(e.into()))?;
            metrics.replay_recorded(stats.applied, stats.rejected);
            metrics.snapshot_loaded();
            let policy = seeds[shard]
                .0
                .get(*id)
                .and_then(|docs| docs.config().durable_flush)
                .unwrap_or(durability.default_flush);
            seeds[shard].1.push((*id, policy, campaign.last_seq));
            max_id = Some(max_id.map_or(id.0, |m| m.max(id.0)));
        }
        Self::spawn_pool_with_metrics(
            &config,
            seeds,
            max_id.map_or(0, |m| m + 1),
            // The un-suffixed handle API keeps pointing at campaign 0. If
            // the original default campaign was not durable, those calls
            // fail with "unknown campaign c0" — a clear diagnostic —
            // instead of silently re-targeting some other recovered
            // campaign.
            CampaignId(0),
            metrics,
        )
    }

    fn spawn_pool(
        config: &ServiceConfig,
        seeds: PoolSeeds,
        next_campaign: u32,
        default_campaign: CampaignId,
    ) -> Result<(DocsService, ServiceHandle), ServiceError> {
        let metrics = ServiceMetrics::new(config.num_shards());
        Self::spawn_pool_with_metrics(config, seeds, next_campaign, default_campaign, metrics)
    }

    fn spawn_pool_with_metrics(
        config: &ServiceConfig,
        seeds: PoolSeeds,
        next_campaign: u32,
        default_campaign: CampaignId,
        metrics: ServiceMetrics,
    ) -> Result<(DocsService, ServiceHandle), ServiceError> {
        let shards = config.num_shards();
        debug_assert_eq!(seeds.len(), shards);
        metrics.set_trace_sampling(config.trace_sample_every);
        let crash = Arc::new(AtomicBool::new(false));
        let role = RoleCell::new(config.role);
        // Shared with every shard: snapshot installs on a follower must
        // advance the allocator past the replicated ids, or the first
        // `create_campaign` after a promotion would collide with them
        // (the same reason `recover` seeds `max_id + 1`).
        let next_campaign = Arc::new(AtomicU32::new(next_campaign));
        let mut senders = Vec::with_capacity(shards);
        let mut joins = Vec::with_capacity(shards);
        for (shard, (registry, persisted)) in seeds.into_iter().enumerate() {
            let log = match &config.durability {
                Some(d) => {
                    let mut log = CampaignLog::open(d.dir.join(format!("shard-{shard}")))
                        .map_err(|e| ServiceError::Rejected(e.into()))?;
                    log.set_adaptive(d.adaptive);
                    // Every group commit reports its batch size and sync
                    // latency straight into the lock-free histograms.
                    let flush_metrics = metrics.clone();
                    log.set_flush_observer(Some(Arc::new(move |events, sync| {
                        flush_metrics.flush_recorded(events, sync);
                    })));
                    Some(log)
                }
                None => None,
            };
            let seed = ShardSeed {
                registry,
                persisted,
                log,
                snapshot_every: config.durability.as_ref().map_or(0, |d| d.snapshot_every),
                sink: config.replication.clone(),
                next_campaign: Arc::clone(&next_campaign),
                dispatch: config.dispatch.clone(),
                node: config.node,
            };
            // The ingress bound is the pool's admission control: blocking
            // submissions park on a full queue, fail-fast ones bounce.
            let (tx, rx) = match config.queue_capacity {
                0 => unbounded::<Inbound>(),
                cap => bounded::<Inbound>(cap),
            };
            let shard_metrics = metrics.clone();
            let shard_crash = Arc::clone(&crash);
            let shard_role = role.clone();
            senders.push(tx);
            joins.push(
                std::thread::Builder::new()
                    .name(format!("docs-shard-{shard}"))
                    .spawn(move || {
                        shard_loop(shard, seed, rx, shard_metrics, shard_crash, shard_role)
                    })
                    .expect("spawn docs shard thread"),
            );
        }
        let handle = ServiceHandle {
            shards: Arc::new(senders),
            next_campaign,
            next_correlation: Arc::new(AtomicU64::new(0)),
            metrics,
            default_campaign,
            default_flush: config.durability.as_ref().map(|d| d.default_flush),
            crash,
            role,
        };
        Ok((
            DocsService {
                joins,
                default_campaign,
            },
            handle,
        ))
    }

    /// Waits for every shard to drain and stop, returning all campaigns'
    /// final state, ascending by campaign id.
    ///
    /// The pool stops when every [`ServiceHandle`] has been dropped, so drop
    /// all handles before calling or it will block forever.
    pub fn join_all(self) -> Vec<(CampaignId, Docs)> {
        let mut campaigns: Vec<(CampaignId, Docs)> = self
            .joins
            .into_iter()
            .flat_map(|j| {
                j.join()
                    .expect("docs shard thread panicked")
                    .into_campaigns()
            })
            .collect();
        campaigns.sort_unstable_by_key(|(id, _)| *id);
        campaigns
    }

    /// Waits for shutdown and returns the default campaign's final state
    /// (the seed's single-campaign API).
    pub fn join(self) -> Docs {
        let default = self.default_campaign;
        self.join_all()
            .into_iter()
            .find(|(id, _)| *id == default)
            .map(|(_, docs)| docs)
            .expect("default campaign outlives the service")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ticket::TicketWait;
    use docs_kb::table2_example_kb;
    use docs_system::DocsConfig;
    use docs_types::TaskBuilder;

    fn published(n: usize) -> Docs {
        let kb = table2_example_kb();
        let subjects = ["Michael Jordan", "Kobe Bryant", "NBA"];
        let tasks: Vec<_> = (0..n)
            .map(|i| {
                TaskBuilder::new(i, format!("Is {} great?", subjects[i % 3]))
                    .yes_no()
                    .with_ground_truth(i % 2)
                    .with_true_domain(1)
                    .build()
                    .unwrap()
            })
            .collect();
        let config = DocsConfig {
            num_golden: 2,
            k_per_hit: 3,
            answers_per_task: 2,
            z: 10,
            ..Default::default()
        };
        Docs::publish(&kb, tasks, config).unwrap()
    }

    fn service() -> (DocsService, ServiceHandle) {
        DocsService::spawn(published(9))
    }

    /// A handle whose single "shard" is a queue the test holds the
    /// receiving end of — nothing is ever served, which makes admission
    /// control and pending-ticket behavior deterministic.
    fn stub_handle(capacity: usize) -> (ServiceHandle, Receiver<Inbound>) {
        let (tx, rx) = bounded(capacity);
        let handle = ServiceHandle {
            shards: Arc::new(vec![tx]),
            next_campaign: Arc::new(AtomicU32::new(1)),
            next_correlation: Arc::new(AtomicU64::new(0)),
            metrics: ServiceMetrics::new(1),
            default_campaign: CampaignId(0),
            default_flush: None,
            crash: Arc::new(AtomicBool::new(false)),
            role: RoleCell::new(ReplicaRole::Primary),
        };
        (handle, rx)
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("docs-server-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Answers golden tasks correctly (ground truth is i % 2 by id).
    fn pass_golden(handle: &ServiceHandle, worker: WorkerId, golden: &[TaskId]) {
        let answers: Vec<_> = golden.iter().map(|&g| (g, g.index() % 2)).collect();
        handle.submit_golden(worker, answers).unwrap();
    }

    fn pass_golden_in(
        handle: &ServiceHandle,
        campaign: CampaignId,
        worker: WorkerId,
        golden: &[TaskId],
    ) {
        let answers: Vec<_> = golden.iter().map(|&g| (g, g.index() % 2)).collect();
        handle.submit_golden_in(campaign, worker, answers).unwrap();
    }

    #[test]
    fn round_trip_golden_then_tasks_then_report() {
        let (service, handle) = service();
        let w = WorkerId(0);
        let golden = match handle.request_tasks(w).unwrap() {
            WorkRequest::Golden(g) => g,
            other => panic!("expected golden HIT, got {other:?}"),
        };
        assert_eq!(golden.len(), 2);
        pass_golden(&handle, w, &golden);
        let tasks = match handle.request_tasks(w).unwrap() {
            WorkRequest::Tasks(t) => t,
            other => panic!("expected task HIT, got {other:?}"),
        };
        assert_eq!(tasks.len(), 3);
        for t in tasks {
            handle
                .submit_answer(Answer::new(w, t, t.index() % 2))
                .unwrap();
        }
        let report = handle.finish().unwrap();
        assert_eq!(report.truths.len(), 9);
        assert_eq!(report.answers_collected, 3);
        drop(handle);
        let _docs = service.join();
    }

    #[test]
    fn duplicate_answer_is_rejected_with_a_matchable_reason() {
        let (service, handle) = service();
        let w = WorkerId(1);
        if let WorkRequest::Golden(g) = handle.request_tasks(w).unwrap() {
            pass_golden(&handle, w, &g);
        }
        let answer = Answer::new(w, TaskId(0), 0);
        handle.submit_answer(answer).unwrap();
        let err = handle.submit_answer(answer).unwrap_err();
        // The rejection is typed end to end…
        assert_eq!(
            err,
            ServiceError::Rejected(RejectReason::DuplicateAnswer {
                worker: w,
                task: TaskId(0),
            })
        );
        // …and its rendering matches the pre-taxonomy message.
        assert_eq!(
            err.to_string(),
            "request rejected: worker w1 already answered task t0"
        );
        // The service keeps serving after the rejection.
        assert!(handle.request_tasks(w).is_ok());
        drop(handle);
        service.join();
    }

    #[test]
    fn pipelined_tickets_complete_in_submission_order() {
        let (service, handle) = service();
        let w = WorkerId(0);
        // Golden first (blocking), so the pipelined requests get task HITs.
        if let WorkRequest::Golden(g) = handle.request_tasks(w).unwrap() {
            pass_golden(&handle, w, &g);
        }
        // Pipeline: a HIT request, its answers, and the next HIT request —
        // all in flight before the first completion is harvested.
        let first = handle
            .request_tasks_ticket_in(handle.default_campaign(), w)
            .unwrap();
        assert!(handle.metrics().shard(0).in_flight >= 1);
        let hit = match first.wait().unwrap() {
            WorkRequest::Tasks(t) => t,
            other => panic!("expected tasks, got {other:?}"),
        };
        let answers: Vec<Answer> = hit
            .iter()
            .map(|&t| Answer::new(w, t, t.index() % 2))
            .collect();
        let batch_ticket = handle
            .submit_answer_batch_ticket_in(handle.default_campaign(), answers)
            .unwrap();
        let next_ticket = handle
            .request_tasks_ticket_in(handle.default_campaign(), w)
            .unwrap();
        assert!(
            batch_ticket.correlation() < next_ticket.correlation(),
            "correlation ids are monotone per handle"
        );
        // FIFO per shard: once the later request completed, the earlier
        // batch ack must already be in its slot.
        let work = next_ticket.wait().unwrap();
        assert!(matches!(work, WorkRequest::Tasks(_) | WorkRequest::Done));
        match batch_ticket.try_take() {
            TicketWait::Ready(Ok(outcome)) => assert_eq!(outcome.accepted, hit.len()),
            other => panic!(
                "batch ack must be ready once a later completion arrived: {:?}",
                other.ready().map(|r| r.map(|o| o.accepted))
            ),
        }
        assert_eq!(
            handle.metrics().shard(0).in_flight,
            0,
            "all tickets resolved"
        );
        drop(handle);
        service.join();
    }

    #[test]
    fn try_submit_fails_fast_with_busy_when_the_queue_is_full() {
        let (handle, rx) = stub_handle(2);
        let c = handle.default_campaign();
        // Two admissions fill the queue; nothing serves it.
        let _t1 = handle.try_request_tasks_in(c, WorkerId(0)).unwrap();
        let _t2 = handle.try_request_tasks_in(c, WorkerId(1)).unwrap();
        let err = handle.try_request_tasks_in(c, WorkerId(2)).unwrap_err();
        assert_eq!(err, ServiceError::Busy { shard: 0 });
        assert_eq!(err.to_string(), "shard 0 ingress queue is full");
        let stats = handle.metrics().shard(0);
        assert_eq!(stats.busy_rejections, 1, "refusal counted");
        assert_eq!(stats.queued, 2, "refused request rolled its depth back");
        assert_eq!(stats.max_queued, 2, "no phantom high-water mark");
        assert_eq!(stats.in_flight, 2, "no ticket issued for the refusal");
        // Draining one slot re-opens admission.
        let served = rx.recv().unwrap();
        handle
            .metrics()
            .shard_processed(0, Duration::from_micros(1));
        let _t3 = handle.try_request_tasks_in(c, WorkerId(2)).unwrap();
        assert_eq!(handle.metrics().shard(0).busy_rejections, 1);
        // A dead shard is Disconnected, not Busy.
        drop(rx);
        drop(served);
        let err = handle.try_request_tasks_in(c, WorkerId(3)).unwrap_err();
        assert_eq!(err, ServiceError::Disconnected);
    }

    #[test]
    fn pending_tickets_time_out_and_resolve_once_served() {
        let (handle, rx) = stub_handle(4);
        let c = handle.default_campaign();
        let ticket = handle.request_tasks_ticket_in(c, WorkerId(0)).unwrap();
        assert_eq!(handle.metrics().shard(0).in_flight, 1);
        // Nothing serves the queue: the wait elapses and hands the ticket
        // back, still pending, still counted in flight.
        let ticket = match ticket.wait_timeout(Duration::from_millis(10)) {
            TicketWait::Pending(t) => t,
            TicketWait::Ready(r) => panic!("unserved ticket completed: {r:?}"),
        };
        let ticket = match ticket.try_take() {
            TicketWait::Pending(t) => t,
            TicketWait::Ready(r) => panic!("unserved ticket completed: {r:?}"),
        };
        assert_eq!(handle.metrics().shard(0).in_flight, 1);
        // Serve it by hand: the completion must echo the correlation id.
        let inbound = rx.recv().unwrap();
        assert_eq!(inbound.envelope.correlation, ticket.correlation());
        inbound
            .completions
            .send(Completion {
                correlation: inbound.envelope.correlation,
                response: Response::Work(WorkRequest::Done),
            })
            .unwrap();
        assert_eq!(ticket.wait().unwrap(), WorkRequest::Done);
        assert_eq!(handle.metrics().shard(0).in_flight, 0);
        // A ticket whose shard died reports Disconnected.
        let orphan = handle.request_tasks_ticket_in(c, WorkerId(1)).unwrap();
        drop(rx);
        assert_eq!(orphan.wait().unwrap_err(), ServiceError::Disconnected);
        // Dropping a pending ticket is fire-and-forget and still resolves
        // the in-flight gauge.
        let ticket = handle.request_tasks_ticket_in(c, WorkerId(2));
        assert!(matches!(ticket, Err(ServiceError::Disconnected)));
        assert_eq!(handle.metrics().shard(0).in_flight, 0);
    }

    #[test]
    fn metrics_count_operations() {
        let (service, handle) = service();
        let w = WorkerId(2);
        let _ = handle.request_tasks(w);
        if let WorkRequest::Golden(g) = handle.request_tasks(w).unwrap() {
            pass_golden(&handle, w, &g);
        }
        assert_eq!(handle.metrics().stats(OpKind::Assign).count, 2);
        assert_eq!(handle.metrics().stats(OpKind::Golden).count, 1);
        assert_eq!(handle.metrics().stats(OpKind::Create).count, 1);
        assert!(handle.metrics().stats(OpKind::Assign).max > std::time::Duration::ZERO);
        drop(handle);
        service.join();
    }

    #[test]
    fn calls_after_shutdown_fail_cleanly() {
        let (service, handle) = service();
        let extra = handle.clone();
        drop(handle);
        // Pool still alive: `extra` holds every shard's sender.
        assert!(extra.request_tasks(WorkerId(3)).is_ok());
        drop(extra);
        let _docs = service.join();
    }

    #[test]
    fn many_threads_share_one_handle() {
        let (service, handle) = service();
        // Seed golden for 4 workers, then hammer assignments concurrently.
        for w in 0..4u32 {
            let w = WorkerId(w);
            if let WorkRequest::Golden(g) = handle.request_tasks(w).unwrap() {
                pass_golden(&handle, w, &g);
            }
        }
        let threads: Vec<_> = (0..4u32)
            .map(|w| {
                let h = handle.clone();
                std::thread::spawn(move || {
                    let w = WorkerId(w);
                    for _ in 0..10 {
                        h.request_tasks(w).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(handle.metrics().stats(OpKind::Assign).count, 4 + 40);
        drop(handle);
        service.join();
    }

    #[test]
    fn campaigns_route_to_stable_shards_and_stay_isolated() {
        let (service, handle) = DocsService::spawn_sharded(published(9), ServiceConfig::sharded(4));
        // Two extra campaigns with different task counts.
        let c1 = handle.create_campaign(published(6)).unwrap();
        let c2 = handle.create_campaign(published(12)).unwrap();
        assert_eq!(handle.default_campaign(), CampaignId(0));
        assert_eq!((c1, c2), (CampaignId(1), CampaignId(2)));

        // The same worker id participates in all three campaigns
        // independently: golden state is per campaign.
        let w = WorkerId(0);
        for (campaign, tasks_n) in [(CampaignId(0), 9), (c1, 6), (c2, 12)] {
            let golden = match handle.request_tasks_in(campaign, w).unwrap() {
                WorkRequest::Golden(g) => g,
                other => panic!("expected golden in {campaign}, got {other:?}"),
            };
            pass_golden_in(&handle, campaign, w, &golden);
            match handle.request_tasks_in(campaign, w).unwrap() {
                WorkRequest::Tasks(t) => assert!(!t.is_empty()),
                other => panic!("expected tasks in {campaign}, got {other:?}"),
            }
            let report = handle.finish_in(campaign).unwrap();
            assert_eq!(report.truths.len(), tasks_n);
        }

        // Unknown campaigns are rejected with the campaign id, not fatal.
        let err = handle.request_tasks_in(CampaignId(99), w).unwrap_err();
        assert_eq!(
            err,
            ServiceError::Rejected(RejectReason::UnknownCampaign(CampaignId(99)))
        );
        assert_eq!(err.to_string(), "request rejected: unknown campaign c99");

        // Per-shard accounting saw every processed request.
        let processed: u64 = handle
            .metrics()
            .all_shards()
            .iter()
            .map(|s| s.processed)
            .sum();
        assert_eq!(processed, handle.metrics().total_ops());
        drop(handle);
        let campaigns = service.join_all();
        assert_eq!(
            campaigns.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            vec![CampaignId(0), c1, c2]
        );
    }

    #[test]
    fn create_campaign_ids_are_unique_under_concurrency() {
        let (service, handle) = DocsService::spawn_sharded(published(3), ServiceConfig::sharded(3));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let h = handle.clone();
                std::thread::spawn(move || {
                    (0..3)
                        .map(|_| h.create_campaign(published(3)).unwrap())
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut ids: Vec<CampaignId> = threads
            .into_iter()
            .flat_map(|t| t.join().unwrap())
            .collect();
        ids.push(handle.default_campaign());
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 13, "12 created + 1 default, all distinct");
        drop(handle);
        assert_eq!(service.join_all().len(), 13);
    }

    #[test]
    fn durable_campaign_on_memory_only_pool_is_rejected() {
        let (service, handle) = service();
        let err = handle.create_campaign_durable(published(3)).unwrap_err();
        assert_eq!(
            err,
            ServiceError::Rejected(RejectReason::DurabilityUnavailable { campaign: None })
        );
        let err = handle
            .create_campaign_with(published(3), FlushPolicy::EveryEvent)
            .unwrap_err();
        assert!(matches!(
            err,
            ServiceError::Rejected(RejectReason::DurabilityUnavailable { campaign: Some(_) })
        ));
        drop(handle);
        service.join();
    }

    #[test]
    fn durable_round_trip_writes_events_and_snapshots() {
        let dir = tmp_dir("durable-roundtrip");
        let (service, handle) =
            DocsService::spawn_sharded(published(9), ServiceConfig::durable(2, &dir));
        let c = handle
            .create_campaign_with(published(6), FlushPolicy::EveryEvent)
            .unwrap();
        let w = WorkerId(0);
        if let WorkRequest::Golden(g) = handle.request_tasks_in(c, w).unwrap() {
            pass_golden_in(&handle, c, w, &g);
        }
        handle
            .submit_answer_in(c, Answer::new(w, TaskId(0), 0))
            .unwrap();
        let d = handle.metrics().durability();
        assert!(
            d.events_logged >= 3,
            "published + golden + answer logged, got {d:?}"
        );
        assert!(d.snapshots_written >= 1);
        assert!(d.log_bytes > 0);
        drop(handle);
        service.join();
        // The on-disk tree recovers the campaign with its events.
        let tree = recover_tree(&dir).unwrap();
        let rec = &tree.campaigns[&c];
        assert!(rec.snapshot.is_some());
        assert_eq!(rec.events.len(), 3, "published + golden + answer");
    }

    #[test]
    fn batched_submission_round_trip_with_per_answer_rejections() {
        let (service, handle) = service();
        let w = WorkerId(0);
        if let WorkRequest::Golden(g) = handle.request_tasks(w).unwrap() {
            pass_golden(&handle, w, &g);
        }
        handle.submit_answer(Answer::new(w, TaskId(0), 0)).unwrap();
        let batch = vec![
            Answer::new(w, TaskId(0), 1), // duplicate against the log
            Answer::new(w, TaskId(1), 1),
            Answer::new(w, TaskId(1), 0), // duplicate within the batch
            Answer::new(w, TaskId(2), 0),
        ];
        let outcome = handle.submit_answer_batch(batch).unwrap();
        assert_eq!(outcome.accepted, 2);
        assert_eq!(
            outcome.rejected.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
            vec![0, 2]
        );
        // Per-answer rejections are typed and keep their message text.
        assert_eq!(
            outcome.rejected[0].1,
            RejectReason::DuplicateAnswer {
                worker: w,
                task: TaskId(0),
            }
        );
        assert!(outcome.rejected[0]
            .1
            .to_string()
            .contains("already answered"));
        assert_eq!(handle.metrics().stats(OpKind::SubmitBatch).count, 1);
        let report = handle.finish().unwrap();
        assert_eq!(report.answers_collected, 3);
        drop(handle);
        service.join();
    }

    #[test]
    fn durable_batch_is_one_log_record_and_one_flush() {
        let dir = tmp_dir("durable-batch");
        let (service, handle) =
            DocsService::spawn_sharded(published(9), ServiceConfig::durable(1, &dir));
        // EveryEvent: the strictest policy — yet a whole batch must cost
        // one append + one fdatasync, not one per answer.
        let c = handle
            .create_campaign_with(published(9), FlushPolicy::EveryEvent)
            .unwrap();
        let w = WorkerId(0);
        if let WorkRequest::Golden(g) = handle.request_tasks_in(c, w).unwrap() {
            pass_golden_in(&handle, c, w, &g);
        }
        let flushes_before = handle.metrics().durability().log_flushes;
        let batch: Vec<Answer> = (0..6).map(|t| Answer::new(w, TaskId(t), 0)).collect();
        let outcome = handle.submit_answer_batch_in(c, batch).unwrap();
        assert_eq!(outcome.accepted, 6);
        let flushes_after = handle.metrics().durability().log_flushes;
        assert_eq!(
            flushes_after - flushes_before,
            1,
            "six answers, one group commit"
        );
        drop(handle);
        service.join();
        // On disk: published + golden + ONE batch record; recovery replays
        // the batch and yields every answer.
        let tree = recover_tree(&dir).unwrap();
        let rec = &tree.campaigns[&c];
        assert_eq!(rec.events.len(), 3, "published + golden + one batch");
        let (service, handle) = DocsService::recover(ServiceConfig::durable(1, &dir)).unwrap();
        let report = handle.finish_in(c).unwrap();
        assert_eq!(report.answers_collected, 6);
        drop(handle);
        service.join_all();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_on_empty_directory_yields_an_empty_pool() {
        let dir = tmp_dir("recover-empty");
        let (service, handle) = DocsService::recover(ServiceConfig::durable(2, &dir)).unwrap();
        // No campaigns recovered: the default campaign does not exist.
        let err = handle.request_tasks(WorkerId(0)).unwrap_err();
        assert_eq!(
            err,
            ServiceError::Rejected(RejectReason::UnknownCampaign(CampaignId(0)))
        );
        // But new campaigns can be created (durably) right away.
        let c = handle.create_campaign_durable(published(3)).unwrap();
        assert_eq!(c, CampaignId(0));
        drop(handle);
        assert_eq!(service.join_all().len(), 1);
    }
}
