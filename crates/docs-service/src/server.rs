//! The sharded service runtime: a pool of shard threads, each owning a
//! [`CampaignRegistry`] of the campaigns hashed to it, plus a cloneable
//! routing handle.
//!
//! The paper's deployment is one Django backend serving one requester batch;
//! the seed mirrored that with a single server thread owning a single
//! [`Docs`]. This runtime generalizes it:
//!
//! * **Campaigns** are the unit of state: each [`CampaignId`] maps to one
//!   `Docs` state machine living on exactly one shard
//!   ([`CampaignId::shard`]), so campaign state is share-nothing — no locks,
//!   and requests for one campaign keep the paper's strict arrival-order
//!   serialization.
//! * **The router is the handle**: [`ServiceHandle`] computes the owning
//!   shard client-side and enqueues directly on that shard's channel —
//!   routing adds no extra hop or thread.
//! * **Backward compatibility**: [`DocsService::spawn`] registers its
//!   `Docs` as the *default campaign* and the un-suffixed handle methods
//!   target it, so single-campaign callers are unchanged.

use crate::message::{Request, Response};
use crate::metrics::{OpKind, ServiceMetrics};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use docs_system::{CampaignRegistry, Docs, RequesterReport, WorkRequest};
use docs_types::{Answer, CampaignId, ChoiceIndex, TaskId, WorkerId};
use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Errors surfaced to service clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The owning shard thread is gone (shut down or panicked).
    Disconnected,
    /// The system rejected the request (duplicate answer, unknown task,
    /// unknown campaign, …).
    Rejected(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Disconnected => write!(f, "DOCS service disconnected"),
            ServiceError::Rejected(msg) => write!(f, "request rejected: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// Deployment knobs of the service runtime.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Number of shard worker threads. Campaigns are hash-partitioned
    /// across them; `1` reproduces the seed's single-server-thread runtime.
    pub shards: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig { shards: 1 }
    }
}

struct Envelope {
    request: Request,
    reply: Sender<Response>,
}

/// Cloneable routing client for a running [`DocsService`].
///
/// Every method is synchronous: it enqueues the request on the owning
/// shard's channel and blocks for that shard's response, exactly like an
/// HTTP round-trip to the paper's Django backend. Handles are cheap to
/// clone and safe to use from many threads.
#[derive(Clone)]
pub struct ServiceHandle {
    shards: Arc<Vec<Sender<Envelope>>>,
    next_campaign: Arc<AtomicU32>,
    metrics: ServiceMetrics,
    default_campaign: CampaignId,
}

impl ServiceHandle {
    fn call(&self, request: Request) -> Result<Response, ServiceError> {
        let shard = request.campaign().shard(self.shards.len());
        let (reply_tx, reply_rx) = bounded(1);
        self.metrics.shard_enqueued(shard);
        if self.shards[shard]
            .send(Envelope {
                request,
                reply: reply_tx,
            })
            .is_err()
        {
            self.metrics.shard_enqueue_failed(shard);
            return Err(ServiceError::Disconnected);
        }
        reply_rx.recv().map_err(|_| ServiceError::Disconnected)
    }

    /// Registers a published system as a new campaign and returns its id.
    pub fn create_campaign(&self, docs: Docs) -> Result<CampaignId, ServiceError> {
        let campaign = CampaignId(self.next_campaign.fetch_add(1, Ordering::Relaxed));
        match self.call(Request::CreateCampaign {
            campaign,
            docs: Box::new(docs),
        })? {
            Response::CampaignCreated(id) => Ok(id),
            Response::Failed(msg) => Err(ServiceError::Rejected(msg)),
            other => unreachable!("protocol violation: {other:?}"),
        }
    }

    /// The campaign the un-suffixed convenience methods target.
    pub fn default_campaign(&self) -> CampaignId {
        self.default_campaign
    }

    /// "A worker comes and requests tasks" on one campaign.
    pub fn request_tasks_in(
        &self,
        campaign: CampaignId,
        worker: WorkerId,
    ) -> Result<WorkRequest, ServiceError> {
        match self.call(Request::RequestWork { campaign, worker })? {
            Response::Work(w) => Ok(w),
            Response::Failed(msg) => Err(ServiceError::Rejected(msg)),
            other => unreachable!("protocol violation: {other:?}"),
        }
    }

    /// Submits a new worker's golden-HIT answers on one campaign.
    pub fn submit_golden_in(
        &self,
        campaign: CampaignId,
        worker: WorkerId,
        answers: Vec<(TaskId, ChoiceIndex)>,
    ) -> Result<(), ServiceError> {
        match self.call(Request::SubmitGolden {
            campaign,
            worker,
            answers,
        })? {
            Response::Ack => Ok(()),
            Response::Failed(msg) => Err(ServiceError::Rejected(msg)),
            other => unreachable!("protocol violation: {other:?}"),
        }
    }

    /// Submits one answer on one campaign.
    pub fn submit_answer_in(
        &self,
        campaign: CampaignId,
        answer: Answer,
    ) -> Result<(), ServiceError> {
        match self.call(Request::SubmitAnswer { campaign, answer })? {
            Response::Ack => Ok(()),
            Response::Failed(msg) => Err(ServiceError::Rejected(msg)),
            other => unreachable!("protocol violation: {other:?}"),
        }
    }

    /// Finalizes one campaign's inference and returns its report.
    pub fn finish_in(&self, campaign: CampaignId) -> Result<RequesterReport, ServiceError> {
        match self.call(Request::Finish { campaign })? {
            Response::Report(r) => Ok(*r),
            Response::Failed(msg) => Err(ServiceError::Rejected(msg)),
            other => unreachable!("protocol violation: {other:?}"),
        }
    }

    /// "A worker comes and requests tasks" (default campaign).
    pub fn request_tasks(&self, worker: WorkerId) -> Result<WorkRequest, ServiceError> {
        self.request_tasks_in(self.default_campaign, worker)
    }

    /// Submits a new worker's golden-HIT answers (default campaign).
    pub fn submit_golden(
        &self,
        worker: WorkerId,
        answers: Vec<(TaskId, ChoiceIndex)>,
    ) -> Result<(), ServiceError> {
        self.submit_golden_in(self.default_campaign, worker, answers)
    }

    /// Submits one answer (default campaign).
    pub fn submit_answer(&self, answer: Answer) -> Result<(), ServiceError> {
        self.submit_answer_in(self.default_campaign, answer)
    }

    /// Finalizes inference and returns the requester report (default
    /// campaign).
    pub fn finish(&self) -> Result<RequesterReport, ServiceError> {
        self.finish_in(self.default_campaign)
    }

    /// The shared latency/queue metrics.
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.metrics
    }
}

/// A running DOCS service (the shard-thread pool).
pub struct DocsService {
    joins: Vec<JoinHandle<CampaignRegistry>>,
    default_campaign: CampaignId,
}

/// Runs a data-plane handler against one campaign's state; an unknown id
/// gets the one uniformly worded rejection every request kind shares.
fn on_campaign(
    registry: &mut CampaignRegistry,
    campaign: CampaignId,
    f: impl FnOnce(&mut Docs) -> Response,
) -> Response {
    match registry.get_mut(campaign) {
        Some(docs) => f(docs),
        None => Response::Failed(format!("unknown campaign {campaign}")),
    }
}

fn shard_loop(shard: usize, rx: Receiver<Envelope>, metrics: ServiceMetrics) -> CampaignRegistry {
    let mut registry = CampaignRegistry::new();
    // The loop ends when every handle (every sender) is dropped.
    while let Ok(env) = rx.recv() {
        let start = Instant::now();
        let campaign = env.request.campaign();
        let (kind, response) = match env.request {
            Request::CreateCampaign { campaign, docs } => (
                OpKind::Create,
                match registry.insert(campaign, *docs) {
                    Ok(()) => Response::CampaignCreated(campaign),
                    Err(e) => Response::Failed(e.to_string()),
                },
            ),
            Request::RequestWork { worker, .. } => (
                OpKind::Assign,
                on_campaign(&mut registry, campaign, |docs| {
                    Response::Work(docs.request_tasks(worker))
                }),
            ),
            Request::SubmitGolden {
                worker, answers, ..
            } => (
                OpKind::Golden,
                on_campaign(&mut registry, campaign, |docs| {
                    match docs.submit_golden(worker, &answers) {
                        Ok(()) => Response::Ack,
                        Err(e) => Response::Failed(e.to_string()),
                    }
                }),
            ),
            Request::SubmitAnswer { answer, .. } => (
                OpKind::Submit,
                on_campaign(&mut registry, campaign, |docs| {
                    match docs.submit_answer(answer) {
                        Ok(()) => Response::Ack,
                        Err(e) => Response::Failed(e.to_string()),
                    }
                }),
            ),
            Request::Finish { .. } => (
                OpKind::Finish,
                on_campaign(&mut registry, campaign, |docs| match docs.finish() {
                    Ok(r) => Response::Report(Box::new(r)),
                    Err(e) => Response::Failed(e.to_string()),
                }),
            ),
        };
        let elapsed = start.elapsed();
        metrics.record(kind, elapsed);
        metrics.shard_processed(shard, elapsed);
        // A client that hung up after sending is fine.
        let _ = env.reply.send(response);
    }
    registry
}

impl DocsService {
    /// Spawns a single-shard service around one published [`Docs`] — the
    /// seed's API, now routed through the shard pool.
    pub fn spawn(docs: Docs) -> (DocsService, ServiceHandle) {
        Self::spawn_sharded(docs, ServiceConfig::default())
    }

    /// Spawns the shard pool, registers `docs` as the default campaign, and
    /// returns the service plus its first routing handle.
    pub fn spawn_sharded(docs: Docs, config: ServiceConfig) -> (DocsService, ServiceHandle) {
        assert!(config.shards >= 1, "need at least one shard");
        let metrics = ServiceMetrics::new(config.shards);
        let mut senders = Vec::with_capacity(config.shards);
        let mut joins = Vec::with_capacity(config.shards);
        for shard in 0..config.shards {
            let (tx, rx) = unbounded::<Envelope>();
            let shard_metrics = metrics.clone();
            senders.push(tx);
            joins.push(
                std::thread::Builder::new()
                    .name(format!("docs-shard-{shard}"))
                    .spawn(move || shard_loop(shard, rx, shard_metrics))
                    .expect("spawn docs shard thread"),
            );
        }
        let handle = ServiceHandle {
            shards: Arc::new(senders),
            next_campaign: Arc::new(AtomicU32::new(0)),
            metrics,
            default_campaign: CampaignId(0),
        };
        let default_campaign = handle
            .create_campaign(docs)
            .expect("fresh shard pool accepts the default campaign");
        debug_assert_eq!(default_campaign, CampaignId(0));
        (
            DocsService {
                joins,
                default_campaign,
            },
            handle,
        )
    }

    /// Waits for every shard to drain and stop, returning all campaigns'
    /// final state, ascending by campaign id.
    ///
    /// The pool stops when every [`ServiceHandle`] has been dropped, so drop
    /// all handles before calling or it will block forever.
    pub fn join_all(self) -> Vec<(CampaignId, Docs)> {
        let mut campaigns: Vec<(CampaignId, Docs)> = self
            .joins
            .into_iter()
            .flat_map(|j| {
                j.join()
                    .expect("docs shard thread panicked")
                    .into_campaigns()
            })
            .collect();
        campaigns.sort_unstable_by_key(|(id, _)| *id);
        campaigns
    }

    /// Waits for shutdown and returns the default campaign's final state
    /// (the seed's single-campaign API).
    pub fn join(self) -> Docs {
        let default = self.default_campaign;
        self.join_all()
            .into_iter()
            .find(|(id, _)| *id == default)
            .map(|(_, docs)| docs)
            .expect("default campaign outlives the service")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use docs_kb::table2_example_kb;
    use docs_system::DocsConfig;
    use docs_types::TaskBuilder;

    fn published(n: usize) -> Docs {
        let kb = table2_example_kb();
        let subjects = ["Michael Jordan", "Kobe Bryant", "NBA"];
        let tasks: Vec<_> = (0..n)
            .map(|i| {
                TaskBuilder::new(i, format!("Is {} great?", subjects[i % 3]))
                    .yes_no()
                    .with_ground_truth(i % 2)
                    .with_true_domain(1)
                    .build()
                    .unwrap()
            })
            .collect();
        let config = DocsConfig {
            num_golden: 2,
            k_per_hit: 3,
            answers_per_task: 2,
            z: 10,
            ..Default::default()
        };
        Docs::publish(&kb, tasks, config).unwrap()
    }

    fn service() -> (DocsService, ServiceHandle) {
        DocsService::spawn(published(9))
    }

    /// Answers golden tasks correctly (ground truth is i % 2 by id).
    fn pass_golden(handle: &ServiceHandle, worker: WorkerId, golden: &[TaskId]) {
        let answers: Vec<_> = golden.iter().map(|&g| (g, g.index() % 2)).collect();
        handle.submit_golden(worker, answers).unwrap();
    }

    fn pass_golden_in(
        handle: &ServiceHandle,
        campaign: CampaignId,
        worker: WorkerId,
        golden: &[TaskId],
    ) {
        let answers: Vec<_> = golden.iter().map(|&g| (g, g.index() % 2)).collect();
        handle.submit_golden_in(campaign, worker, answers).unwrap();
    }

    #[test]
    fn round_trip_golden_then_tasks_then_report() {
        let (service, handle) = service();
        let w = WorkerId(0);
        let golden = match handle.request_tasks(w).unwrap() {
            WorkRequest::Golden(g) => g,
            other => panic!("expected golden HIT, got {other:?}"),
        };
        assert_eq!(golden.len(), 2);
        pass_golden(&handle, w, &golden);
        let tasks = match handle.request_tasks(w).unwrap() {
            WorkRequest::Tasks(t) => t,
            other => panic!("expected task HIT, got {other:?}"),
        };
        assert_eq!(tasks.len(), 3);
        for t in tasks {
            handle
                .submit_answer(Answer::new(w, t, t.index() % 2))
                .unwrap();
        }
        let report = handle.finish().unwrap();
        assert_eq!(report.truths.len(), 9);
        assert_eq!(report.answers_collected, 3);
        drop(handle);
        let _docs = service.join();
    }

    #[test]
    fn duplicate_answer_is_rejected_not_fatal() {
        let (service, handle) = service();
        let w = WorkerId(1);
        if let WorkRequest::Golden(g) = handle.request_tasks(w).unwrap() {
            pass_golden(&handle, w, &g);
        }
        let answer = Answer::new(w, TaskId(0), 0);
        handle.submit_answer(answer).unwrap();
        let err = handle.submit_answer(answer).unwrap_err();
        assert!(matches!(err, ServiceError::Rejected(_)));
        // The service keeps serving after the rejection.
        assert!(handle.request_tasks(w).is_ok());
        drop(handle);
        service.join();
    }

    #[test]
    fn metrics_count_operations() {
        let (service, handle) = service();
        let w = WorkerId(2);
        let _ = handle.request_tasks(w);
        if let WorkRequest::Golden(g) = handle.request_tasks(w).unwrap() {
            pass_golden(&handle, w, &g);
        }
        assert_eq!(handle.metrics().stats(OpKind::Assign).count, 2);
        assert_eq!(handle.metrics().stats(OpKind::Golden).count, 1);
        assert_eq!(handle.metrics().stats(OpKind::Create).count, 1);
        assert!(handle.metrics().stats(OpKind::Assign).max > std::time::Duration::ZERO);
        drop(handle);
        service.join();
    }

    #[test]
    fn calls_after_shutdown_fail_cleanly() {
        let (service, handle) = service();
        let extra = handle.clone();
        drop(handle);
        // Pool still alive: `extra` holds every shard's sender.
        assert!(extra.request_tasks(WorkerId(3)).is_ok());
        drop(extra);
        let _docs = service.join();
    }

    #[test]
    fn many_threads_share_one_handle() {
        let (service, handle) = service();
        // Seed golden for 4 workers, then hammer assignments concurrently.
        for w in 0..4u32 {
            let w = WorkerId(w);
            if let WorkRequest::Golden(g) = handle.request_tasks(w).unwrap() {
                pass_golden(&handle, w, &g);
            }
        }
        let threads: Vec<_> = (0..4u32)
            .map(|w| {
                let h = handle.clone();
                std::thread::spawn(move || {
                    let w = WorkerId(w);
                    for _ in 0..10 {
                        h.request_tasks(w).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(handle.metrics().stats(OpKind::Assign).count, 4 + 40);
        drop(handle);
        service.join();
    }

    #[test]
    fn campaigns_route_to_stable_shards_and_stay_isolated() {
        let (service, handle) =
            DocsService::spawn_sharded(published(9), ServiceConfig { shards: 4 });
        // Two extra campaigns with different task counts.
        let c1 = handle.create_campaign(published(6)).unwrap();
        let c2 = handle.create_campaign(published(12)).unwrap();
        assert_eq!(handle.default_campaign(), CampaignId(0));
        assert_eq!((c1, c2), (CampaignId(1), CampaignId(2)));

        // The same worker id participates in all three campaigns
        // independently: golden state is per campaign.
        let w = WorkerId(0);
        for (campaign, tasks_n) in [(CampaignId(0), 9), (c1, 6), (c2, 12)] {
            let golden = match handle.request_tasks_in(campaign, w).unwrap() {
                WorkRequest::Golden(g) => g,
                other => panic!("expected golden in {campaign}, got {other:?}"),
            };
            pass_golden_in(&handle, campaign, w, &golden);
            match handle.request_tasks_in(campaign, w).unwrap() {
                WorkRequest::Tasks(t) => assert!(!t.is_empty()),
                other => panic!("expected tasks in {campaign}, got {other:?}"),
            }
            let report = handle.finish_in(campaign).unwrap();
            assert_eq!(report.truths.len(), tasks_n);
        }

        // Unknown campaigns are rejected, not fatal.
        let err = handle.request_tasks_in(CampaignId(99), w).unwrap_err();
        assert!(matches!(err, ServiceError::Rejected(_)));

        // Per-shard accounting saw every processed request.
        let processed: u64 = handle
            .metrics()
            .all_shards()
            .iter()
            .map(|s| s.processed)
            .sum();
        assert_eq!(processed, handle.metrics().total_ops());
        drop(handle);
        let campaigns = service.join_all();
        assert_eq!(
            campaigns.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            vec![CampaignId(0), c1, c2]
        );
    }

    #[test]
    fn create_campaign_ids_are_unique_under_concurrency() {
        let (service, handle) =
            DocsService::spawn_sharded(published(3), ServiceConfig { shards: 3 });
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let h = handle.clone();
                std::thread::spawn(move || {
                    (0..3)
                        .map(|_| h.create_campaign(published(3)).unwrap())
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut ids: Vec<CampaignId> = threads
            .into_iter()
            .flat_map(|t| t.join().unwrap())
            .collect();
        ids.push(handle.default_campaign());
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 13, "12 created + 1 default, all distinct");
        drop(handle);
        assert_eq!(service.join_all().len(), 13);
    }
}
