//! The domain set `D = {d_1, ..., d_m}` (Definition 1).

use serde::{Deserialize, Serialize};

/// The 26 top-level categories of Yahoo Answers, which the paper uses as its
/// explicit domain set (Section 3, "The Implementations of DVE in DOCS").
pub const YAHOO_ANSWERS_DOMAINS: [&str; 26] = [
    "Arts & Humanities",
    "Beauty & Style",
    "Business & Finance",
    "Cars & Transportation",
    "Computers & Internet",
    "Consumer Electronics",
    "Dining Out",
    "Education & Reference",
    "Entertainment & Music",
    "Environment",
    "Family & Relationships",
    "Food & Drink",
    "Games & Recreation",
    "Health",
    "Home & Garden",
    "Local Businesses",
    "News & Events",
    "Pets",
    "Politics & Government",
    "Pregnancy & Parenting",
    "Science & Mathematics",
    "Social Science",
    "Society & Culture",
    "Sports",
    "Travel",
    "Yahoo Products",
];

/// An ordered, named set of domains used to interpret tasks and profile
/// workers (Definition 1).
///
/// The number of domains `m = |D|` fixes the length of every
/// [`crate::DomainVector`] and [`crate::QualityVector`] in a deployment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DomainSet {
    names: Vec<String>,
}

impl DomainSet {
    /// Builds a domain set from explicit names.
    ///
    /// # Panics
    /// Panics if `names` is empty; a deployment needs at least one domain.
    pub fn new<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        assert!(!names.is_empty(), "domain set must not be empty");
        DomainSet { names }
    }

    /// The 26-domain set DOCS deploys with (Yahoo Answers categories mapped
    /// onto Freebase domains in the paper).
    pub fn yahoo_answers() -> Self {
        DomainSet::new(YAHOO_ANSWERS_DOMAINS)
    }

    /// A small synthetic domain set `{politics, sports, films}` matching the
    /// running example of Section 2 (Tables 1 and 2).
    pub fn example3() -> Self {
        DomainSet::new(["politics", "sports", "films"])
    }

    /// Anonymous numbered domains, used by the simulation experiments
    /// (Figures 4(e), 7(b), 8(c) set `m` to 10/20/50 without naming domains).
    pub fn anonymous(m: usize) -> Self {
        DomainSet::new((0..m).map(|k| format!("domain-{k}")))
    }

    /// Number of domains, `m`.
    #[inline]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Always false: construction rejects empty sets.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Name of domain `d_k`.
    pub fn name(&self, k: usize) -> &str {
        &self.names[k]
    }

    /// All domain names in order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Index of a domain by name, if present.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yahoo_answers_has_26_domains() {
        let d = DomainSet::yahoo_answers();
        assert_eq!(d.len(), 26);
        assert_eq!(d.index_of("Sports"), Some(23));
        assert_eq!(d.index_of("Basket Weaving"), None);
    }

    #[test]
    fn example3_matches_paper_running_example() {
        let d = DomainSet::example3();
        assert_eq!(d.len(), 3);
        assert_eq!(d.name(0), "politics");
        assert_eq!(d.name(1), "sports");
        assert_eq!(d.name(2), "films");
    }

    #[test]
    fn anonymous_domains_are_numbered() {
        let d = DomainSet::anonymous(4);
        assert_eq!(d.len(), 4);
        assert_eq!(d.name(2), "domain-2");
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_domain_set_rejected() {
        let _ = DomainSet::new(Vec::<String>::new());
    }

    #[test]
    fn names_preserve_order() {
        let d = DomainSet::new(["b", "a", "c"]);
        assert_eq!(d.names(), &["b".to_string(), "a".into(), "c".into()]);
        assert_eq!(d.index_of("a"), Some(1));
    }
}
