//! CRC-32 (IEEE 802.3) shared by every framed byte format in the workspace:
//! WAL records, snapshot files, replication frames, and the binary event
//! codec ([`crate::codec`]). Living in `docs-types` lets the codec frame its
//! records without depending on the storage crate; `docs-storage` re-exports
//! these items so existing callers keep their import paths.

/// Lazily built 256-entry lookup table for the reflected IEEE polynomial.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB88320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        t
    })
}

/// Computes the CRC-32 checksum of a byte slice in one call.
pub fn crc32(data: &[u8]) -> u32 {
    let mut hasher = Crc32::new();
    hasher.update(data);
    hasher.finalize()
}

/// Incremental CRC-32 hasher for streamed writers (e.g. the key/value
/// snapshot, which checksums entries as it writes them through a buffered
/// writer instead of materializing the whole file in memory first).
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let t = table();
        for &b in data {
            self.state = t[((self.state ^ b as u32) & 0xFF) as usize] ^ (self.state >> 8);
        }
    }

    /// The checksum of everything fed so far. Non-consuming: feeding more
    /// bytes afterwards continues the same stream.
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn incremental_matches_one_shot_for_any_split() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let whole = crc32(data);
        for split in 0..=data.len() {
            let mut hasher = Crc32::new();
            hasher.update(&data[..split]);
            hasher.update(&data[split..]);
            assert_eq!(hasher.finalize(), whole, "split at {split}");
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"hello world".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[i] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), base, "flip at byte {i} bit {bit}");
            }
        }
    }
}
