//! Numeric helpers shared by the inference and assignment modules.
//!
//! The paper leans on three pieces of information theory:
//!
//! * Shannon entropy `H(s) = -Σ s_j ln s_j` (Section 5, ambiguity of a
//!   probabilistic truth),
//! * KL divergence `D(σ, τ) = Σ σ_i ln(σ_i / τ_i)` (Section 5.2, golden-task
//!   selection objective),
//! * normalization of non-negative weight vectors into distributions
//!   (everywhere).
//!
//! All functions use natural logarithms, matching the paper's formulas.

/// Tolerance used when checking that distributions sum to one.
pub const DIST_EPS: f64 = 1e-6;

/// Shannon entropy of a distribution, in nats: `H(s) = -Σ s_j ln s_j`.
///
/// Zero entries contribute zero (the standard `0 ln 0 = 0` convention), so
/// fully-concentrated distributions have entropy exactly `0.0`.
///
/// ```
/// use docs_types::prob::entropy;
/// assert_eq!(entropy(&[1.0, 0.0]), 0.0);
/// let h = entropy(&[0.5, 0.5]);
/// assert!((h - std::f64::consts::LN_2).abs() < 1e-12);
/// ```
pub fn entropy(dist: &[f64]) -> f64 {
    let mut h = 0.0;
    for &p in dist {
        if p > 0.0 {
            h -= p * p.ln();
        }
    }
    h
}

/// KL divergence `D(σ || τ) = Σ σ_i ln(σ_i / τ_i)`, in nats.
///
/// Entries where `σ_i = 0` contribute zero. Entries where `σ_i > 0` but
/// `τ_i = 0` make the divergence infinite, mirroring the mathematical
/// definition; the golden-task solver guards against this by construction.
pub fn kl_divergence(sigma: &[f64], tau: &[f64]) -> f64 {
    debug_assert_eq!(sigma.len(), tau.len());
    let mut d = 0.0;
    for (&s, &t) in sigma.iter().zip(tau) {
        if s > 0.0 {
            if t <= 0.0 {
                return f64::INFINITY;
            }
            d += s * (s / t).ln();
        }
    }
    d
}

/// Normalizes a non-negative weight vector in place into a distribution.
///
/// Returns the original sum. If the sum is zero (all weights zero) the vector
/// is set to the uniform distribution, which is the conventional fallback in
/// the EM-style updates of Section 4 (uniform priors, Eq. 3).
pub fn normalize_in_place(weights: &mut [f64]) -> f64 {
    let sum: f64 = weights.iter().sum();
    if sum > 0.0 {
        for w in weights.iter_mut() {
            *w /= sum;
        }
    } else if !weights.is_empty() {
        let u = 1.0 / weights.len() as f64;
        for w in weights.iter_mut() {
            *w = u;
        }
    }
    sum
}

/// Returns a normalized copy of a weight vector. See [`normalize_in_place`].
pub fn normalized(weights: &[f64]) -> Vec<f64> {
    let mut v = weights.to_vec();
    normalize_in_place(&mut v);
    v
}

/// Checks whether `dist` is a probability distribution within [`DIST_EPS`].
pub fn is_distribution(dist: &[f64]) -> bool {
    if dist.is_empty() {
        return false;
    }
    let mut sum = 0.0;
    for &p in dist {
        if !(0.0..=1.0 + DIST_EPS).contains(&p) || p.is_nan() {
            return false;
        }
        sum += p;
    }
    (sum - 1.0).abs() <= DIST_EPS * dist.len() as f64
}

/// Index of the maximum entry, breaking ties toward the smaller index.
///
/// This implements the paper's truth extraction rule
/// `v*_i = argmax_j s_{i,j}` deterministically.
pub fn argmax(values: &[f64]) -> usize {
    let mut best = 0;
    let mut best_v = f64::NEG_INFINITY;
    for (i, &v) in values.iter().enumerate() {
        if v > best_v {
            best_v = v;
            best = i;
        }
    }
    best
}

/// Uniform distribution of the given length.
pub fn uniform(len: usize) -> Vec<f64> {
    assert!(len > 0, "uniform distribution needs at least one entry");
    vec![1.0 / len as f64; len]
}

/// L1 distance between two equal-length vectors, `Σ |a_i - b_i|`.
///
/// Used by the convergence measure Δ in Section 6.3.
pub fn l1_distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| (x - y).abs()).sum()
}

/// Samples an index from a distribution using a uniform draw in `[0, 1)`.
///
/// The caller supplies the random value so this crate stays free of RNG
/// dependencies; `docs-crowd` wires it to a seeded `SmallRng`.
pub fn sample_index(dist: &[f64], uniform_draw: f64) -> usize {
    let mut acc = 0.0;
    for (i, &p) in dist.iter().enumerate() {
        acc += p;
        if uniform_draw < acc {
            return i;
        }
    }
    dist.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_of_uniform_is_ln_len() {
        for len in 2..6 {
            let u = uniform(len);
            assert!((entropy(&u) - (len as f64).ln()).abs() < 1e-12);
        }
    }

    #[test]
    fn entropy_of_point_mass_is_zero() {
        assert_eq!(entropy(&[0.0, 1.0, 0.0]), 0.0);
    }

    #[test]
    fn kl_of_identical_distributions_is_zero() {
        let d = [0.2, 0.3, 0.5];
        assert!(kl_divergence(&d, &d).abs() < 1e-12);
    }

    #[test]
    fn kl_is_positive_for_different_distributions() {
        assert!(kl_divergence(&[0.9, 0.1], &[0.5, 0.5]) > 0.0);
    }

    #[test]
    fn kl_handles_zero_sigma_entries() {
        let d = kl_divergence(&[0.0, 1.0], &[0.5, 0.5]);
        assert!((d - std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn kl_infinite_when_tau_zero() {
        assert!(kl_divergence(&[0.5, 0.5], &[1.0, 0.0]).is_infinite());
    }

    #[test]
    fn normalize_handles_zero_sum() {
        let mut v = vec![0.0, 0.0, 0.0, 0.0];
        let sum = normalize_in_place(&mut v);
        assert_eq!(sum, 0.0);
        assert!(is_distribution(&v));
        assert_eq!(v, vec![0.25; 4]);
    }

    #[test]
    fn normalize_scales_to_one() {
        let mut v = vec![2.0, 6.0];
        normalize_in_place(&mut v);
        assert_eq!(v, vec![0.25, 0.75]);
    }

    #[test]
    fn argmax_breaks_ties_low() {
        assert_eq!(argmax(&[0.4, 0.4, 0.2]), 0);
        assert_eq!(argmax(&[0.1, 0.8, 0.1]), 1);
    }

    #[test]
    fn is_distribution_rejects_bad_vectors() {
        assert!(!is_distribution(&[]));
        assert!(!is_distribution(&[0.5, 0.4])); // sums to 0.9
        assert!(!is_distribution(&[1.2, -0.2]));
        assert!(!is_distribution(&[f64::NAN, 1.0]));
        assert!(is_distribution(&[0.25, 0.75]));
    }

    #[test]
    fn sample_index_covers_support() {
        let dist = [0.25, 0.5, 0.25];
        assert_eq!(sample_index(&dist, 0.0), 0);
        assert_eq!(sample_index(&dist, 0.3), 1);
        assert_eq!(sample_index(&dist, 0.74), 1);
        assert_eq!(sample_index(&dist, 0.76), 2);
        assert_eq!(sample_index(&dist, 0.9999), 2);
    }

    #[test]
    fn l1_distance_basics() {
        assert_eq!(l1_distance(&[1.0, 0.0], &[0.0, 1.0]), 2.0);
        assert_eq!(l1_distance(&[0.5, 0.5], &[0.5, 0.5]), 0.0);
    }
}
