//! Shared data model for the DOCS reproduction.
//!
//! This crate defines the vocabulary of the whole workspace, following the
//! definitions in Section 2 of the paper:
//!
//! * [`DomainSet`] — the domain set `D = {d_1, ..., d_m}` (Definition 1),
//! * [`Task`] and [`DomainVector`] — tasks with per-domain relatedness
//!   distributions `r^t` (Definition 2),
//! * [`QualityVector`] — per-domain worker expertise `q^w` (Definition 3),
//! * [`Answer`] / [`AnswerLog`] — worker answers `v^w_i` and the bookkeeping
//!   views over them (`V(i)` per task, `T(w)` per worker, Definition 4),
//! * [`prob`] — small numeric helpers (entropy, KL divergence, normalization)
//!   used by every inference and assignment module,
//! * [`RejectReason`] — the wire-level rejection taxonomy: every way the
//!   service can refuse a request, as a matchable value whose `Display`
//!   output preserves the historical message text,
//! * [`CampaignEvent`] — the event model of the durable service runtime:
//!   every state change of a served campaign (`Published`,
//!   `GoldenSubmitted`, `AnswerSubmitted`, `Finished`) as a serializable
//!   fact. Commands are validated, logged, then applied; replaying the
//!   event sequence over a campaign snapshot is the crash-recovery path,
//!   so each payload carries the *complete* input of its deterministic
//!   transition (see the `events` module docs for the determinism rules),
//! * [`ReplicaRole`] / [`ReplicationFrame`] — the replication vocabulary:
//!   primary vs read-only follower, and the logical frames (snapshots,
//!   durable event batches with per-campaign sequence watermarks) the
//!   WAL-shipping protocol streams between them,
//! * [`NodeId`] / [`ClusterMap`] — the cluster vocabulary: which primary
//!   node owns each campaign's write path, as a versioned (epoch-stamped)
//!   directory that live migration updates and routers follow.
//!
//! Everything downstream (`docs-kb`, `docs-core`, `docs-baselines`,
//! `docs-crowd`, ...) builds on these types, so they deliberately stay free of
//! any algorithmic policy.

mod answers;
mod cluster;
pub mod codec;
pub mod crc;
pub mod domain;
mod error;
mod events;
mod ids;
pub mod prob;
mod reject;
mod replication;
mod task;
mod vectors;

pub use answers::{Answer, AnswerLog, TaskAnswers, WorkerAnswers};
pub use cluster::{CampaignPlacement, ClusterMap, NodeId};
pub use codec::CodecError;
pub use crc::{crc32, Crc32};
pub use domain::DomainSet;
pub use error::{Error, Result};
pub use events::{
    AnswerBatchSubmittedEvent, AnswerSubmittedEvent, CampaignEvent, FinishedEvent,
    GoldenSubmittedEvent, PublishedEvent,
};
pub use ids::{CampaignId, ChoiceIndex, DomainIndex, TaskId, TraceId, WorkerId};
pub use reject::RejectReason;
pub use replication::{EventFrame, ReplicaRole, ReplicationFrame, SnapshotFrame};
pub use task::{Task, TaskBuilder};
pub use vectors::{DomainVector, QualityVector};
