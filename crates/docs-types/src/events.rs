//! The campaign event model: every state change of a served campaign as a
//! serializable fact.
//!
//! The durable service runtime is event-sourced: commands (`request_tasks`,
//! `submit_answer`, …) are validated against the current state, rendered
//! into one of these events, appended to the campaign's write-ahead log,
//! and only then applied. Replaying the same events over the same starting
//! snapshot is the *only* recovery path, so every payload here must capture
//! the full input of its deterministic transition — nothing inferred at
//! apply time may depend on wall clock, randomness, or map iteration order.
//!
//! Events are externally tagged in their serialized form (`{"AnswerSubmitted":
//! {...}}`), matching what the vendored serde derive emits for enums, so the
//! on-disk log is auditable JSON.

use crate::{Answer, CampaignId, ChoiceIndex, TaskId, WorkerId};
use serde::{Deserialize, Serialize};

/// Metadata recorded when a campaign is registered with the service.
///
/// The full initial state travels in the campaign's first snapshot (the
/// post-DVE task set with its domain vectors is far too large to repeat on
/// every recovery path); this event marks the birth of the log and pins the
/// shape the snapshot must satisfy — replay rejects a snapshot whose task
/// count disagrees (a mispaired snapshot/log).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PublishedEvent {
    /// The campaign the log belongs to.
    pub campaign: CampaignId,
    /// Number of published tasks (sanity-checked against the snapshot).
    pub num_tasks: u32,
    /// Number of golden tasks selected at publish time.
    pub num_golden: u32,
}

/// A new worker submitted her golden-HIT answers (Section 5.2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GoldenSubmittedEvent {
    /// The submitting worker.
    pub worker: WorkerId,
    /// Her answers to the golden tasks, in submission order.
    pub answers: Vec<(TaskId, ChoiceIndex)>,
}

/// A worker submitted one ordinary answer (Figure 1, arrow ⑤).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnswerSubmittedEvent {
    /// The submitted answer.
    pub answer: Answer,
}

/// A batch of already-validated answers ingested as one transition — the
/// batched ingestion path: one wire round-trip, one write-ahead-log record
/// (one group-commit `fdatasync`), one benefit-index repair pass.
///
/// The answers are applied strictly in order, so replaying the batch is
/// byte-identical to having submitted its answers individually (including
/// where the z-periodic full inference fires mid-batch). The service logs
/// only pre-validated batches: every answer in a logged batch applies
/// cleanly.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnswerBatchSubmittedEvent {
    /// The accepted answers, in submission order.
    pub answers: Vec<Answer>,
}

/// The requester finalized the campaign: one full inference pass ran and a
/// report was produced. Campaigns keep serving afterwards (reports are
/// repeatable), so this event may appear more than once in a log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FinishedEvent {}

/// One state transition of a campaign's `Docs` state machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CampaignEvent {
    /// Campaign registered; initial state captured by its first snapshot.
    Published(PublishedEvent),
    /// Golden-HIT submission initializing a worker's quality.
    GoldenSubmitted(GoldenSubmittedEvent),
    /// One incremental truth-inference update.
    AnswerSubmitted(AnswerSubmittedEvent),
    /// A validated answer batch applied in order as one transition.
    AnswerBatchSubmitted(AnswerBatchSubmittedEvent),
    /// Full inference + report production.
    Finished(FinishedEvent),
}

impl CampaignEvent {
    /// Convenience constructor for [`CampaignEvent::AnswerSubmitted`].
    pub fn answer(answer: Answer) -> Self {
        CampaignEvent::AnswerSubmitted(AnswerSubmittedEvent { answer })
    }

    /// Convenience constructor for [`CampaignEvent::AnswerBatchSubmitted`].
    pub fn answer_batch(answers: Vec<Answer>) -> Self {
        CampaignEvent::AnswerBatchSubmitted(AnswerBatchSubmittedEvent { answers })
    }

    /// Convenience constructor for [`CampaignEvent::GoldenSubmitted`].
    pub fn golden(worker: WorkerId, answers: Vec<(TaskId, ChoiceIndex)>) -> Self {
        CampaignEvent::GoldenSubmitted(GoldenSubmittedEvent { worker, answers })
    }

    /// Convenience constructor for [`CampaignEvent::Finished`].
    pub fn finished() -> Self {
        CampaignEvent::Finished(FinishedEvent {})
    }

    /// Short name of the event kind, for logs and metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            CampaignEvent::Published(_) => "published",
            CampaignEvent::GoldenSubmitted(_) => "golden_submitted",
            CampaignEvent::AnswerSubmitted(_) => "answer_submitted",
            CampaignEvent::AnswerBatchSubmitted(_) => "answer_batch_submitted",
            CampaignEvent::Finished(_) => "finished",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(event: &CampaignEvent) -> CampaignEvent {
        serde::Deserialize::from_value(&serde::Serialize::to_value(event)).expect("roundtrip")
    }

    #[test]
    fn every_variant_roundtrips_through_serde() {
        let events = [
            CampaignEvent::Published(PublishedEvent {
                campaign: CampaignId(3),
                num_tasks: 40,
                num_golden: 5,
            }),
            CampaignEvent::golden(WorkerId(7), vec![(TaskId(0), 1), (TaskId(2), 0)]),
            CampaignEvent::answer(Answer::new(WorkerId(1), TaskId(9), 2)),
            CampaignEvent::answer_batch(vec![
                Answer::new(WorkerId(2), TaskId(3), 0),
                Answer::new(WorkerId(4), TaskId(5), 1),
            ]),
            CampaignEvent::answer_batch(Vec::new()),
            CampaignEvent::finished(),
        ];
        for event in &events {
            assert_eq!(&roundtrip(event), event, "{}", event.kind());
        }
    }

    #[test]
    fn kinds_name_every_variant() {
        assert_eq!(CampaignEvent::finished().kind(), "finished");
        assert_eq!(
            CampaignEvent::answer(Answer::new(WorkerId(0), TaskId(0), 0)).kind(),
            "answer_submitted"
        );
        assert_eq!(
            CampaignEvent::golden(WorkerId(0), Vec::new()).kind(),
            "golden_submitted"
        );
        assert_eq!(
            CampaignEvent::answer_batch(Vec::new()).kind(),
            "answer_batch_submitted"
        );
        let published = CampaignEvent::Published(PublishedEvent {
            campaign: CampaignId(0),
            num_tasks: 1,
            num_golden: 0,
        });
        assert_eq!(published.kind(), "published");
    }

    #[test]
    fn unknown_variant_is_a_clean_error() {
        let bogus = serde::Value::Map(vec![(
            "Exploded".to_string(),
            serde::Value::Map(Vec::new()),
        )]);
        let err = <CampaignEvent as serde::Deserialize>::from_value(&bogus).unwrap_err();
        assert!(err.to_string().contains("Exploded"), "{err}");
    }
}
