//! Compact, versioned, CRC-framed binary record format for the durable and
//! replication hot paths.
//!
//! One record layout is shared by WAL event payloads, campaign snapshots,
//! and replication frame bodies:
//!
//! ```text
//! +------+---------+------+------------------+----------------+--------+
//! | 0xDC | version | kind | body_len: u32 LE | crc32: u32 LE  |  body  |
//! +------+---------+------+------------------+----------------+--------+
//!   magic   1 byte  1 byte      4 bytes           4 bytes       body_len
//! ```
//!
//! * **Magic + version gate.** `0xDC` can never begin a JSON document, so a
//!   decoder sniffs the first byte: magic → binary record, anything else →
//!   the legacy serde_json format. Mixed-format logs (a JSON prefix written
//!   by an older build, binary records appended after an upgrade) replay
//!   byte-identically; old snapshots are upgraded to binary the next time a
//!   snapshot is cut, never rewritten in place. The version byte must match
//!   exactly — a record from a future format version is a clean error, not
//!   a misparse.
//! * **CRC framing.** `crc32(body)` plus an exact length check refuse any
//!   single flipped bit anywhere in the record (header fields included).
//! * **Two body kinds.** [`KIND_EVENT`] is a hand-rolled layout for
//!   [`CampaignEvent`] — variant tag + LEB128 varints, tens of bytes per
//!   event versus hundreds for JSON. [`KIND_VALUE`] is a tagged binary
//!   rendering of the self-describing serde `Value` tree, used for
//!   snapshots and any other `Serialize` type; floats keep their exact
//!   bits, so replay determinism is preserved.
//!
//! Decoding is total: malformed input of any shape returns
//! [`CodecError`], never a panic.

use crate::crc::crc32;
use crate::{
    Answer, AnswerBatchSubmittedEvent, AnswerSubmittedEvent, CampaignEvent, CampaignId,
    FinishedEvent, GoldenSubmittedEvent, PublishedEvent, TaskId, WorkerId,
};
use bytes::BufMut;
// The `*_into` encoders take a caller-owned `BytesMut`; re-exported so
// callers don't need their own dependency on the vendored bytes crate.
pub use bytes::BytesMut;
use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// First byte of every binary record. `0xDC` is not valid UTF-8 text, so no
/// JSON payload can collide with it.
pub const CODEC_MAGIC: u8 = 0xDC;

/// Current format version. Decoders require an exact match.
pub const CODEC_VERSION: u8 = 1;

/// Body kind: hand-rolled [`CampaignEvent`] layout.
pub const KIND_EVENT: u8 = 0x01;

/// Body kind: tagged binary serde `Value` tree (snapshots, generic types).
pub const KIND_VALUE: u8 = 0x02;

/// Bytes before the body: magic, version, kind, body length, body CRC.
pub const HEADER_LEN: usize = 11;

/// Nesting bound for [`KIND_VALUE`] decoding — generous for every snapshot
/// shape in the workspace while keeping hostile input from overflowing the
/// stack.
const MAX_DEPTH: usize = 96;

/// Decode/encode failure, always a clean error with context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codec: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

impl From<CodecError> for crate::Error {
    fn from(e: CodecError) -> Self {
        crate::Error::Storage(e.to_string())
    }
}

fn err<T>(msg: impl Into<String>) -> Result<T, CodecError> {
    Err(CodecError(msg.into()))
}

/// True when `bytes` starts a binary codec record (versus legacy JSON).
pub fn is_binary(bytes: &[u8]) -> bool {
    bytes.first() == Some(&CODEC_MAGIC)
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Wraps an already-encoded `body` in the record header, appending to `buf`.
fn frame_into(kind: u8, body: &[u8], buf: &mut BytesMut) {
    buf.put_u8(CODEC_MAGIC);
    buf.put_u8(CODEC_VERSION);
    buf.put_u8(kind);
    buf.put_u32_le(body.len() as u32);
    buf.put_u32_le(crc32(body));
    buf.put_slice(body);
}

/// Verifies magic / version / kind / length / CRC and returns the body.
fn unframe(expected_kind: u8, bytes: &[u8]) -> Result<&[u8], CodecError> {
    if bytes.len() < HEADER_LEN {
        return err(format!("record truncated at {} bytes", bytes.len()));
    }
    if bytes[0] != CODEC_MAGIC {
        return err("missing magic byte");
    }
    if bytes[1] != CODEC_VERSION {
        return err(format!(
            "format version {} not supported (this build reads version {})",
            bytes[1], CODEC_VERSION
        ));
    }
    if bytes[2] != expected_kind {
        return err(format!(
            "record kind 0x{:02X}, expected 0x{expected_kind:02X}",
            bytes[2]
        ));
    }
    let body_len = u32::from_le_bytes(bytes[3..7].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_le_bytes(bytes[7..11].try_into().expect("4 bytes"));
    let body = &bytes[HEADER_LEN..];
    if body.len() != body_len {
        return err(format!(
            "body length {} does not match header ({body_len})",
            body.len()
        ));
    }
    if crc32(body) != crc {
        return err("body CRC mismatch");
    }
    Ok(body)
}

// ---------------------------------------------------------------------------
// Varints + bounds-checked cursor
// ---------------------------------------------------------------------------

fn put_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Bounds-checked reader over a record body; every failure is an error,
/// never a panic.
struct Cursor<'a> {
    data: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn new(data: &'a [u8]) -> Self {
        Cursor { data }
    }

    fn remaining(&self) -> usize {
        self.data.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.data.len() < n {
            return err(format!(
                "need {n} bytes, {} remain in record body",
                self.data.len()
            ));
        }
        let (head, rest) = self.data.split_at(n);
        self.data = rest;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn varint(&mut self) -> Result<u64, CodecError> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.u8()?;
            v |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        err("varint longer than 10 bytes")
    }

    fn varint_u32(&mut self) -> Result<u32, CodecError> {
        let v = self.varint()?;
        u32::try_from(v).map_err(|_| CodecError(format!("{v} out of range for u32 field")))
    }

    fn varint_usize(&mut self) -> Result<usize, CodecError> {
        let v = self.varint()?;
        usize::try_from(v).map_err(|_| CodecError(format!("{v} out of range for usize field")))
    }

    /// A declared element count, refused when it could not possibly fit in
    /// the remaining bytes (each element costs at least one byte) — hostile
    /// counts must not drive allocation.
    fn count(&mut self) -> Result<usize, CodecError> {
        let n = self.varint_usize()?;
        if n > self.remaining() {
            return err(format!(
                "count {n} exceeds remaining {} bytes",
                self.remaining()
            ));
        }
        Ok(n)
    }

    fn f64(&mut self) -> Result<f64, CodecError> {
        let raw = self.take(8)?;
        Ok(f64::from_le_bytes(raw.try_into().expect("8 bytes")))
    }

    fn finish(self) -> Result<(), CodecError> {
        if self.data.is_empty() {
            Ok(())
        } else {
            err(format!(
                "{} trailing bytes after record body",
                self.data.len()
            ))
        }
    }
}

// ---------------------------------------------------------------------------
// CampaignEvent bodies (KIND_EVENT)
// ---------------------------------------------------------------------------

const EV_PUBLISHED: u8 = 1;
const EV_GOLDEN: u8 = 2;
const EV_ANSWER: u8 = 3;
const EV_ANSWER_BATCH: u8 = 4;
const EV_FINISHED: u8 = 5;

fn put_answer(buf: &mut BytesMut, answer: &Answer) {
    put_varint(buf, u64::from(answer.task.0));
    put_varint(buf, u64::from(answer.worker.0));
    put_varint(buf, answer.choice as u64);
}

fn get_answer(cursor: &mut Cursor<'_>) -> Result<Answer, CodecError> {
    let task = TaskId(cursor.varint_u32()?);
    let worker = WorkerId(cursor.varint_u32()?);
    let choice = cursor.varint_usize()?;
    Ok(Answer::new(worker, task, choice))
}

fn encode_event_body(event: &CampaignEvent, buf: &mut BytesMut) {
    match event {
        CampaignEvent::Published(e) => {
            buf.put_u8(EV_PUBLISHED);
            put_varint(buf, u64::from(e.campaign.0));
            put_varint(buf, u64::from(e.num_tasks));
            put_varint(buf, u64::from(e.num_golden));
        }
        CampaignEvent::GoldenSubmitted(e) => {
            buf.put_u8(EV_GOLDEN);
            put_varint(buf, u64::from(e.worker.0));
            put_varint(buf, e.answers.len() as u64);
            for (task, choice) in &e.answers {
                put_varint(buf, u64::from(task.0));
                put_varint(buf, *choice as u64);
            }
        }
        CampaignEvent::AnswerSubmitted(e) => {
            buf.put_u8(EV_ANSWER);
            put_answer(buf, &e.answer);
        }
        CampaignEvent::AnswerBatchSubmitted(e) => {
            buf.put_u8(EV_ANSWER_BATCH);
            put_varint(buf, e.answers.len() as u64);
            for answer in &e.answers {
                put_answer(buf, answer);
            }
        }
        CampaignEvent::Finished(FinishedEvent {}) => {
            buf.put_u8(EV_FINISHED);
        }
    }
}

fn decode_event_body(body: &[u8]) -> Result<CampaignEvent, CodecError> {
    let mut cursor = Cursor::new(body);
    let event = match cursor.u8()? {
        EV_PUBLISHED => CampaignEvent::Published(PublishedEvent {
            campaign: CampaignId(cursor.varint_u32()?),
            num_tasks: cursor.varint_u32()?,
            num_golden: cursor.varint_u32()?,
        }),
        EV_GOLDEN => {
            let worker = WorkerId(cursor.varint_u32()?);
            let n = cursor.count()?;
            let mut answers = Vec::with_capacity(n);
            for _ in 0..n {
                let task = TaskId(cursor.varint_u32()?);
                let choice = cursor.varint_usize()?;
                answers.push((task, choice));
            }
            CampaignEvent::GoldenSubmitted(GoldenSubmittedEvent { worker, answers })
        }
        EV_ANSWER => CampaignEvent::AnswerSubmitted(AnswerSubmittedEvent {
            answer: get_answer(&mut cursor)?,
        }),
        EV_ANSWER_BATCH => {
            let n = cursor.count()?;
            let mut answers = Vec::with_capacity(n);
            for _ in 0..n {
                answers.push(get_answer(&mut cursor)?);
            }
            CampaignEvent::AnswerBatchSubmitted(AnswerBatchSubmittedEvent { answers })
        }
        EV_FINISHED => CampaignEvent::Finished(FinishedEvent {}),
        other => return err(format!("unknown event variant tag {other}")),
    };
    cursor.finish()?;
    Ok(event)
}

/// Appends one framed binary event record to `buf`.
pub fn encode_event_into(event: &CampaignEvent, buf: &mut BytesMut) {
    let mut body = BytesMut::with_capacity(64);
    encode_event_body(event, &mut body);
    frame_into(KIND_EVENT, &body, buf);
}

/// Encodes one event as a fresh framed record.
pub fn encode_event(event: &CampaignEvent) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(64 + HEADER_LEN);
    encode_event_into(event, &mut buf);
    buf.to_vec()
}

/// Decodes an event payload of either format: binary records are verified
/// and parsed; anything else falls back to the legacy JSON decoder, so
/// pre-upgrade logs replay unchanged.
pub fn decode_event(bytes: &[u8]) -> Result<CampaignEvent, CodecError> {
    if is_binary(bytes) {
        decode_event_body(unframe(KIND_EVENT, bytes)?)
    } else {
        serde_json::from_slice(bytes).map_err(|e| CodecError(format!("legacy json event: {e}")))
    }
}

// ---------------------------------------------------------------------------
// Value bodies (KIND_VALUE): snapshots and generic Serialize types
// ---------------------------------------------------------------------------

const VAL_NULL: u8 = 0;
const VAL_FALSE: u8 = 1;
const VAL_TRUE: u8 = 2;
const VAL_UINT: u8 = 3;
const VAL_INT: u8 = 4;
const VAL_FLOAT: u8 = 5;
const VAL_STR: u8 = 6;
const VAL_SEQ: u8 = 7;
const VAL_MAP: u8 = 8;

fn put_str(buf: &mut BytesMut, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.put_slice(s.as_bytes());
}

fn encode_value_body(value: &Value, buf: &mut BytesMut) {
    match value {
        Value::Null => buf.put_u8(VAL_NULL),
        Value::Bool(false) => buf.put_u8(VAL_FALSE),
        Value::Bool(true) => buf.put_u8(VAL_TRUE),
        Value::UInt(v) => {
            buf.put_u8(VAL_UINT);
            put_varint(buf, *v);
        }
        Value::Int(v) => {
            // ZigZag keeps small negatives small.
            buf.put_u8(VAL_INT);
            put_varint(buf, ((*v << 1) ^ (*v >> 63)) as u64);
        }
        Value::Float(v) => {
            // Exact bit pattern: byte-identical replay depends on floats
            // surviving the snapshot round-trip unchanged.
            buf.put_u8(VAL_FLOAT);
            buf.put_slice(&v.to_le_bytes());
        }
        Value::Str(s) => {
            buf.put_u8(VAL_STR);
            put_str(buf, s);
        }
        Value::Seq(items) => {
            buf.put_u8(VAL_SEQ);
            put_varint(buf, items.len() as u64);
            for item in items {
                encode_value_body(item, buf);
            }
        }
        Value::Map(entries) => {
            buf.put_u8(VAL_MAP);
            put_varint(buf, entries.len() as u64);
            for (key, val) in entries {
                put_str(buf, key);
                encode_value_body(val, buf);
            }
        }
    }
}

fn decode_value_body(cursor: &mut Cursor<'_>, depth: usize) -> Result<Value, CodecError> {
    if depth > MAX_DEPTH {
        return err(format!("value nesting deeper than {MAX_DEPTH}"));
    }
    let value = match cursor.u8()? {
        VAL_NULL => Value::Null,
        VAL_FALSE => Value::Bool(false),
        VAL_TRUE => Value::Bool(true),
        VAL_UINT => Value::UInt(cursor.varint()?),
        VAL_INT => {
            let z = cursor.varint()?;
            Value::Int(((z >> 1) as i64) ^ -((z & 1) as i64))
        }
        VAL_FLOAT => Value::Float(cursor.f64()?),
        VAL_STR => {
            let len = cursor.count()?;
            let raw = cursor.take(len)?;
            let s = std::str::from_utf8(raw)
                .map_err(|_| CodecError("string is not valid UTF-8".into()))?;
            Value::Str(s.to_owned())
        }
        VAL_SEQ => {
            let n = cursor.count()?;
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(decode_value_body(cursor, depth + 1)?);
            }
            Value::Seq(items)
        }
        VAL_MAP => {
            let n = cursor.count()?;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let klen = cursor.count()?;
                let raw = cursor.take(klen)?;
                let key = std::str::from_utf8(raw)
                    .map_err(|_| CodecError("map key is not valid UTF-8".into()))?
                    .to_owned();
                entries.push((key, decode_value_body(cursor, depth + 1)?));
            }
            Value::Map(entries)
        }
        other => return err(format!("unknown value tag {other}")),
    };
    Ok(value)
}

/// Appends one framed binary record of any `Serialize` type to `buf`.
pub fn encode_value_into<T: Serialize + ?Sized>(value: &T, buf: &mut BytesMut) {
    let tree = value.to_value();
    let mut body = BytesMut::with_capacity(256);
    encode_value_body(&tree, &mut body);
    frame_into(KIND_VALUE, &body, buf);
}

/// Encodes any `Serialize` type (snapshots, frames, …) as a framed binary
/// record. The rendering is deterministic: the serde facade sorts map keys.
pub fn to_bytes<T: Serialize + ?Sized>(value: &T) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(256 + HEADER_LEN);
    encode_value_into(value, &mut buf);
    buf.to_vec()
}

/// Decodes a payload of either format into `T`: binary records are verified
/// and parsed; anything else falls back to the legacy JSON decoder.
pub fn from_bytes<T: Deserialize>(bytes: &[u8]) -> Result<T, CodecError> {
    if is_binary(bytes) {
        let body = unframe(KIND_VALUE, bytes)?;
        let mut cursor = Cursor::new(body);
        let tree = decode_value_body(&mut cursor, 0)?;
        cursor.finish()?;
        T::from_value(&tree).map_err(|e| CodecError(format!("value shape: {e}")))
    } else {
        serde_json::from_slice(bytes).map_err(|e| CodecError(format!("legacy json: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<CampaignEvent> {
        vec![
            CampaignEvent::Published(PublishedEvent {
                campaign: CampaignId(3),
                num_tasks: 4000,
                num_golden: 50,
            }),
            CampaignEvent::golden(WorkerId(7), vec![(TaskId(0), 1), (TaskId(200), 0)]),
            CampaignEvent::golden(WorkerId(0), Vec::new()),
            CampaignEvent::answer(Answer::new(WorkerId(1), TaskId(9), 2)),
            CampaignEvent::answer_batch(vec![
                Answer::new(WorkerId(2), TaskId(3), 0),
                Answer::new(WorkerId(400), TaskId(70_000), 1),
            ]),
            CampaignEvent::answer_batch(Vec::new()),
            CampaignEvent::finished(),
        ]
    }

    #[test]
    fn every_event_variant_roundtrips() {
        for event in sample_events() {
            let bytes = encode_event(&event);
            assert!(is_binary(&bytes));
            assert_eq!(decode_event(&bytes).unwrap(), event, "{}", event.kind());
        }
    }

    #[test]
    fn binary_events_are_compact() {
        let single = encode_event(&CampaignEvent::answer(Answer::new(
            WorkerId(3),
            TaskId(90),
            1,
        )));
        let json = serde_json::to_vec(&CampaignEvent::answer(Answer::new(
            WorkerId(3),
            TaskId(90),
            1,
        )))
        .unwrap();
        assert!(
            single.len() < json.len() / 3,
            "binary {} vs json {}",
            single.len(),
            json.len()
        );
    }

    #[test]
    fn json_events_still_decode() {
        for event in sample_events() {
            let json = serde_json::to_vec(&event).unwrap();
            assert!(!is_binary(&json));
            assert_eq!(decode_event(&json).unwrap(), event, "{}", event.kind());
        }
    }

    #[test]
    fn any_flipped_bit_is_refused() {
        let bytes = encode_event(&CampaignEvent::golden(
            WorkerId(9),
            vec![(TaskId(1), 0), (TaskId(2), 1)],
        ));
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupted = bytes.clone();
                corrupted[i] ^= 1 << bit;
                assert!(
                    decode_event(&corrupted).is_err(),
                    "flip at byte {i} bit {bit} decoded"
                );
            }
        }
    }

    #[test]
    fn truncation_and_extension_are_refused() {
        let bytes = encode_event(&CampaignEvent::finished());
        for cut in 0..bytes.len() {
            assert!(decode_event(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(decode_event(&extended).is_err());
    }

    #[test]
    fn future_version_is_a_clean_error() {
        let mut bytes = encode_event(&CampaignEvent::finished());
        bytes[1] = CODEC_VERSION + 1;
        let err = decode_event(&bytes).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn value_roundtrip_preserves_every_shape_and_exact_floats() {
        let value = Value::Map(vec![
            ("null".into(), Value::Null),
            ("flag".into(), Value::Bool(true)),
            ("count".into(), Value::UInt(u64::MAX)),
            ("delta".into(), Value::Int(-42)),
            ("third".into(), Value::Float(1.0 / 3.0)),
            ("tiny".into(), Value::Float(f64::MIN_POSITIVE)),
            ("name".into(), Value::Str("snapshot ✓".into())),
            (
                "rows".into(),
                Value::Seq(vec![Value::UInt(1), Value::Seq(vec![Value::Float(-0.0)])]),
            ),
        ]);
        let mut buf = BytesMut::new();
        encode_value_body(&value, &mut buf);
        let mut cursor = Cursor::new(&buf);
        let back = decode_value_body(&mut cursor, 0).unwrap();
        cursor.finish().unwrap();
        // Float equality here must be bit-exact, including the sign of -0.0.
        fn bits_equal(a: &Value, b: &Value) -> bool {
            match (a, b) {
                (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
                (Value::Seq(xs), Value::Seq(ys)) => {
                    xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| bits_equal(x, y))
                }
                (Value::Map(xs), Value::Map(ys)) => {
                    xs.len() == ys.len()
                        && xs
                            .iter()
                            .zip(ys)
                            .all(|((k, x), (l, y))| k == l && bits_equal(x, y))
                }
                _ => a == b,
            }
        }
        assert!(bits_equal(&value, &back), "{back:?}");
    }

    #[test]
    fn generic_types_roundtrip_and_fall_back_to_json() {
        let table: std::collections::HashMap<String, Vec<u32>> =
            [("a".to_string(), vec![1, 2, 3]), ("b".to_string(), vec![])]
                .into_iter()
                .collect();
        let binary = to_bytes(&table);
        assert!(is_binary(&binary));
        let back: std::collections::HashMap<String, Vec<u32>> = from_bytes(&binary).unwrap();
        assert_eq!(back, table);
        let json = serde_json::to_vec(&table).unwrap();
        let back: std::collections::HashMap<String, Vec<u32>> = from_bytes(&json).unwrap();
        assert_eq!(back, table);
    }

    #[test]
    fn hostile_counts_do_not_allocate() {
        // A CRC-valid body claiming u32::MAX batch answers must be refused
        // by the count-vs-remaining check, not attempted.
        let mut body = BytesMut::new();
        body.put_u8(EV_ANSWER_BATCH);
        put_varint(&mut body, u64::from(u32::MAX));
        let mut record = BytesMut::new();
        frame_into(KIND_EVENT, &body, &mut record);
        let err = decode_event(&record).unwrap_err();
        assert!(err.to_string().contains("count"), "{err}");
    }

    #[test]
    fn varint_boundaries_roundtrip() {
        for v in [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u64::from(u32::MAX),
            u64::MAX,
        ] {
            let mut buf = BytesMut::new();
            put_varint(&mut buf, v);
            let mut cursor = Cursor::new(&buf);
            assert_eq!(cursor.varint().unwrap(), v);
            cursor.finish().unwrap();
        }
    }
}
