//! Cluster vocabulary for multi-primary scale-out: node identity and the
//! versioned campaign→node routing directory.
//!
//! Read replicas (the `replication` module) scale the read path; the write
//! path still serializes through whichever node owns a campaign. The types
//! here make that ownership a first-class, *migratable* fact instead of a
//! deployment constant:
//!
//! * [`NodeId`] — a primary node's identity inside one cluster,
//! * [`CampaignPlacement`] — one campaign→node ownership fact,
//! * [`ClusterMap`] — the whole directory, versioned by an epoch that is
//!   bumped on every placement change. Routers compare epochs to decide
//!   which of two maps is fresher; a node that fenced a campaign away
//!   answers mutations with `RejectReason::WrongNode { owner }` so a
//!   stale-mapped client can converge on the new owner in one retry.
//!
//! The directory is deliberately a plain value (no interior mutability, no
//! I/O): services install a copy per shard, routers hold one behind their
//! own lock, and the migration driver is the single writer that bumps the
//! epoch.

use crate::CampaignId;
use std::collections::BTreeMap;
use std::fmt;

/// Identity of one primary node inside a cluster.
///
/// Zero-based and dense, like `CampaignId`/`WorkerId`; the value carries no
/// locality meaning beyond "a distinct shard pool".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One campaign→node ownership fact, as carried by directory listings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignPlacement {
    /// The placed campaign.
    pub campaign: CampaignId,
    /// The node that owns its write path.
    pub owner: NodeId,
}

/// The campaign→node routing directory, versioned by an epoch.
///
/// Campaigns without an explicit placement belong to `default_owner` — a
/// fresh single-node deployment is epoch 0 with an empty placement table,
/// and only migrations grow it. Every mutation bumps the epoch, so two
/// maps can always be ordered by freshness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterMap {
    epoch: u64,
    default_owner: NodeId,
    placements: BTreeMap<CampaignId, NodeId>,
}

impl ClusterMap {
    /// A fresh epoch-0 directory where every campaign lives on
    /// `default_owner`.
    pub fn new(default_owner: NodeId) -> Self {
        ClusterMap {
            epoch: 0,
            default_owner,
            placements: BTreeMap::new(),
        }
    }

    /// The directory's version; bumped by every [`assign`](Self::assign).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The node owning campaigns without an explicit placement.
    pub fn default_owner(&self) -> NodeId {
        self.default_owner
    }

    /// The node owning `campaign`'s write path under this map.
    pub fn owner(&self, campaign: CampaignId) -> NodeId {
        self.placements
            .get(&campaign)
            .copied()
            .unwrap_or(self.default_owner)
    }

    /// Moves `campaign` to `owner` and bumps the epoch. Assigning the
    /// current owner still bumps: the epoch versions *decisions*, and a
    /// re-assignment is a decision even when it is a no-op placement.
    pub fn assign(&mut self, campaign: CampaignId, owner: NodeId) {
        self.placements.insert(campaign, owner);
        self.epoch += 1;
    }

    /// Every explicit placement, in campaign order (campaigns on the
    /// default owner are omitted, exactly as stored).
    pub fn placements(&self) -> impl Iterator<Item = CampaignPlacement> + '_ {
        self.placements
            .iter()
            .map(|(&campaign, &owner)| CampaignPlacement { campaign, owner })
    }
}

impl fmt::Display for ClusterMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cluster-map epoch {} default {} ({} placed)",
            self.epoch,
            self.default_owner,
            self.placements.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_map_routes_everything_to_the_default_owner() {
        let map = ClusterMap::new(NodeId(0));
        assert_eq!(map.epoch(), 0);
        assert_eq!(map.owner(CampaignId(0)), NodeId(0));
        assert_eq!(map.owner(CampaignId(41)), NodeId(0));
        assert_eq!(map.placements().count(), 0);
    }

    #[test]
    fn assign_moves_one_campaign_and_bumps_the_epoch() {
        let mut map = ClusterMap::new(NodeId(0));
        map.assign(CampaignId(3), NodeId(1));
        assert_eq!(map.epoch(), 1);
        assert_eq!(map.owner(CampaignId(3)), NodeId(1));
        // Other campaigns stay on the default owner.
        assert_eq!(map.owner(CampaignId(4)), NodeId(0));
        let placed: Vec<_> = map.placements().collect();
        assert_eq!(
            placed,
            vec![CampaignPlacement {
                campaign: CampaignId(3),
                owner: NodeId(1),
            }]
        );
    }

    #[test]
    fn reassignment_still_bumps_the_epoch() {
        let mut map = ClusterMap::new(NodeId(0));
        map.assign(CampaignId(3), NodeId(1));
        map.assign(CampaignId(3), NodeId(1));
        assert_eq!(map.epoch(), 2);
    }

    #[test]
    fn display_is_compact() {
        let mut map = ClusterMap::new(NodeId(0));
        map.assign(CampaignId(1), NodeId(2));
        assert_eq!(map.to_string(), "cluster-map epoch 1 default n0 (1 placed)");
        assert_eq!(NodeId(2).to_string(), "n2");
    }
}
