//! The replication vocabulary: replica roles and the logical wire frames of
//! the WAL-shipping protocol.
//!
//! The durable runtime already guarantees that replaying a campaign's
//! snapshot + ordered event suffix reproduces a byte-identical state
//! machine; replication is that same contract stretched over a wire. A
//! **primary** service ships every durable (flushed) event — and every
//! snapshot it writes — as frames; a **follower** applies them through the
//! identical deterministic `validate_event`/`apply` path, so at every acked
//! watermark the follower's campaign state serializes to the same bytes as
//! the primary's.
//!
//! The frames here are the *logical* protocol. Their byte encoding
//! (length-prefixed, CRC-checked records in the same style as the on-disk
//! WAL) lives in `docs-replication`, which owns the transport; keeping the
//! data model in `docs-types` lets every layer name roles and watermarks
//! without depending on the transport crate.

use crate::CampaignId;
use std::fmt;

/// The role a service plays in a replicated deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaRole {
    /// Accepts mutations, owns the write-ahead log, ships frames.
    Primary,
    /// Applies shipped frames and serves reads; every mutation is refused
    /// with [`RejectReason::ReadOnlyReplica`](crate::RejectReason) until
    /// the follower is promoted.
    Follower,
}

impl fmt::Display for ReplicaRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplicaRole::Primary => write!(f, "primary"),
            ReplicaRole::Follower => write!(f, "follower"),
        }
    }
}

/// One campaign snapshot travelling the replication stream: the serialized
/// `CampaignSnapshot` the primary wrote (creation baseline, snapshot
/// cadence, or recovery re-baseline), stamped with the sequence number it
/// covers. A follower installs it when the campaign is new to it (the
/// snapshot bootstrap) and skips it when its watermark already reached
/// `seq` — the same supersession rule the on-disk recovery uses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotFrame {
    /// Campaign the snapshot belongs to.
    pub campaign: CampaignId,
    /// Per-campaign sequence number the snapshot covers (everything at or
    /// below it is contained in the payload).
    pub seq: u64,
    /// The serialized `CampaignSnapshot` — byte-identical to the on-disk
    /// snapshot payload.
    pub payload: Vec<u8>,
}

/// One durable campaign event travelling the replication stream:
/// byte-identical to the WAL record payload the primary flushed, tagged
/// with its per-campaign sequence number. Followers require the stream to
/// be gap-free per campaign (`seq == watermark + 1`); anything at or below
/// the watermark is a resend and skipped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventFrame {
    /// Campaign the event belongs to.
    pub campaign: CampaignId,
    /// Per-campaign sequence number assigned by the primary's log.
    pub seq: u64,
    /// The serialized `CampaignEvent` — byte-identical to the WAL payload.
    pub payload: Vec<u8>,
}

/// One frame of the replication stream. Events are batched per group
/// commit: everything one `fdatasync` made durable ships as a single
/// [`ReplicationFrame::Events`] frame, so the follower's watermark only
/// ever advances to points the primary's disk actually reached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplicationFrame {
    /// A campaign snapshot (bootstrap for new followers, fast-forward for
    /// lagging ones).
    Snapshot(SnapshotFrame),
    /// A batch of durable events, in shipping order (per-campaign
    /// sequences ascending and gap-free within the stream).
    Events(Vec<EventFrame>),
}

impl ReplicationFrame {
    /// Short name of the frame kind, for logs and metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            ReplicationFrame::Snapshot(_) => "snapshot",
            ReplicationFrame::Events(_) => "events",
        }
    }

    /// Number of events the frame carries (snapshots carry none).
    pub fn num_events(&self) -> usize {
        match self {
            ReplicationFrame::Snapshot(_) => 0,
            ReplicationFrame::Events(events) => events.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roles_render_their_name() {
        assert_eq!(ReplicaRole::Primary.to_string(), "primary");
        assert_eq!(ReplicaRole::Follower.to_string(), "follower");
    }

    #[test]
    fn frames_report_kind_and_event_count() {
        let snap = ReplicationFrame::Snapshot(SnapshotFrame {
            campaign: CampaignId(3),
            seq: 7,
            payload: b"state".to_vec(),
        });
        assert_eq!(snap.kind(), "snapshot");
        assert_eq!(snap.num_events(), 0);
        let events = ReplicationFrame::Events(vec![
            EventFrame {
                campaign: CampaignId(3),
                seq: 8,
                payload: b"e8".to_vec(),
            },
            EventFrame {
                campaign: CampaignId(9),
                seq: 1,
                payload: b"e1".to_vec(),
            },
        ]);
        assert_eq!(events.kind(), "events");
        assert_eq!(events.num_events(), 2);
    }
}
