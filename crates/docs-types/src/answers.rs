//! Worker answers and the indexed views the algorithms need.
//!
//! Truth inference iterates over `V(i)` — the answers received for task
//! `t_i` — while worker-quality estimation iterates over `T(w)` — the tasks
//! answered by worker `w` (Section 4.1). [`AnswerLog`] maintains both views
//! incrementally so neither module re-scans the raw answer stream.

use crate::{ChoiceIndex, Error, Result, TaskId, WorkerId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One answer event: worker `w` chose choice `v^w_i` for task `t_i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Answer {
    /// Task answered.
    pub task: TaskId,
    /// Answering worker.
    pub worker: WorkerId,
    /// Chosen choice, 0-based (`0 ≤ choice < ℓ_t`).
    pub choice: ChoiceIndex,
}

impl Answer {
    /// Creates an answer event.
    pub fn new(worker: WorkerId, task: TaskId, choice: ChoiceIndex) -> Self {
        Answer {
            task,
            worker,
            choice,
        }
    }
}

/// Per-task view `V(i)`: who answered task `i` and what they chose.
pub type TaskAnswers = Vec<(WorkerId, ChoiceIndex)>;

/// Per-worker view `T(w)`: which tasks worker `w` answered and what they
/// chose.
pub type WorkerAnswers = Vec<(TaskId, ChoiceIndex)>;

/// Append-only log of answers with both per-task and per-worker indexes.
///
/// The log enforces Definition 4's "a worker can answer a task at most once"
/// rule and keeps insertion order within each view, which the incremental
/// truth-inference update relies on (it must know each co-answerer's recorded
/// choice).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AnswerLog {
    by_task: Vec<TaskAnswers>,
    by_worker: HashMap<WorkerId, WorkerAnswers>,
    len: usize,
}

impl AnswerLog {
    /// Creates a log for `n` published tasks.
    pub fn new(num_tasks: usize) -> Self {
        AnswerLog {
            by_task: vec![Vec::new(); num_tasks],
            by_worker: HashMap::new(),
            len: 0,
        }
    }

    /// Number of published tasks `n` the log covers.
    pub fn num_tasks(&self) -> usize {
        self.by_task.len()
    }

    /// Total number of recorded answers, `Σ_i |V(i)|`.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no answers have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Records an answer, rejecting unknown tasks and duplicate
    /// (task, worker) pairs.
    pub fn record(&mut self, answer: Answer) -> Result<()> {
        let idx = answer.task.index();
        if idx >= self.by_task.len() {
            return Err(Error::UnknownTask(answer.task));
        }
        if self.by_task[idx].iter().any(|(w, _)| *w == answer.worker) {
            return Err(Error::DuplicateAnswer {
                task: answer.task,
                worker: answer.worker,
            });
        }
        self.by_task[idx].push((answer.worker, answer.choice));
        self.by_worker
            .entry(answer.worker)
            .or_default()
            .push((answer.task, answer.choice));
        self.len += 1;
        Ok(())
    }

    /// `V(i)`: the answers collected for task `i`, in arrival order.
    pub fn task_answers(&self, task: TaskId) -> &TaskAnswers {
        &self.by_task[task.index()]
    }

    /// `|V(i)|` without materializing the slice.
    pub fn answer_count(&self, task: TaskId) -> usize {
        self.by_task[task.index()].len()
    }

    /// `T(w)`: the tasks answered by worker `w`, in arrival order. Workers
    /// that never answered get the empty slice.
    pub fn worker_answers(&self, worker: WorkerId) -> &[(TaskId, ChoiceIndex)] {
        self.by_worker
            .get(&worker)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// True if `worker` has already answered `task`.
    pub fn has_answered(&self, worker: WorkerId, task: TaskId) -> bool {
        self.by_task[task.index()].iter().any(|(w, _)| *w == worker)
    }

    /// All workers that appear in the log, in ascending id order.
    ///
    /// The order is load-bearing: every truth-inference method accumulates
    /// floating-point sums while iterating workers, and float addition is
    /// not associative — iterating the backing `HashMap` directly would
    /// make convergence thresholds (and through the OTA feedback loop, the
    /// assignment stream itself) differ between *processes*, breaking the
    /// byte-reproducibility the scenario harness pins.
    pub fn workers(&self) -> impl Iterator<Item = WorkerId> + '_ {
        let mut ids: Vec<WorkerId> = self.by_worker.keys().copied().collect();
        ids.sort_unstable();
        ids.into_iter()
    }

    /// Number of distinct workers.
    pub fn num_workers(&self) -> usize {
        self.by_worker.len()
    }

    /// Iterates `(task, V(task))` over all tasks, including unanswered ones.
    pub fn iter_tasks(&self) -> impl Iterator<Item = (TaskId, &TaskAnswers)> {
        self.by_task
            .iter()
            .enumerate()
            .map(|(i, v)| (TaskId::from(i), v))
    }

    /// Flattens the log back into a stream of [`Answer`] events, grouped by
    /// task. Order within a task is arrival order.
    pub fn iter_answers(&self) -> impl Iterator<Item = Answer> + '_ {
        self.by_task.iter().enumerate().flat_map(|(i, v)| {
            v.iter().map(move |&(worker, choice)| Answer {
                task: TaskId::from(i),
                worker,
                choice,
            })
        })
    }

    /// Restricts the log to the first `cap` answers of every task — the
    /// Figure 4(c) experiment ("varying #collected answers") replays the
    /// dataset with per-task answer budgets 1..=10.
    pub fn truncated_per_task(&self, cap: usize) -> AnswerLog {
        let mut out = AnswerLog::new(self.num_tasks());
        for (task, answers) in self.iter_tasks() {
            for &(worker, choice) in answers.iter().take(cap) {
                out.record(Answer {
                    task,
                    worker,
                    choice,
                })
                .expect("truncation of a valid log stays valid");
            }
        }
        out
    }

    /// Restricts the log to the first `cap` answers of every *worker* — the
    /// Figure 4(d) experiment varies how many tasks each worker answered.
    pub fn truncated_per_worker(&self, cap: usize) -> AnswerLog {
        let mut kept: HashMap<WorkerId, usize> = HashMap::new();
        let mut out = AnswerLog::new(self.num_tasks());
        // Replay in global arrival order approximated by task order; within a
        // worker the original per-worker order is preserved.
        let mut per_worker: Vec<(WorkerId, &WorkerAnswers)> =
            self.by_worker.iter().map(|(w, v)| (*w, v)).collect();
        per_worker.sort_by_key(|(w, _)| *w);
        for (worker, answers) in per_worker {
            for &(task, choice) in answers.iter().take(cap) {
                *kept.entry(worker).or_default() += 1;
                out.record(Answer {
                    task,
                    worker,
                    choice,
                })
                .expect("truncation of a valid log stays valid");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ans(t: usize, w: usize, c: usize) -> Answer {
        Answer {
            task: TaskId::from(t),
            worker: WorkerId::from(w),
            choice: c,
        }
    }

    #[test]
    fn record_and_query_both_views() {
        let mut log = AnswerLog::new(3);
        log.record(ans(0, 0, 1)).unwrap();
        log.record(ans(0, 1, 0)).unwrap();
        log.record(ans(2, 0, 1)).unwrap();

        assert_eq!(log.len(), 3);
        assert_eq!(log.answer_count(TaskId(0)), 2);
        assert_eq!(log.answer_count(TaskId(1)), 0);
        assert_eq!(
            log.task_answers(TaskId(0)),
            &vec![(WorkerId(0), 1), (WorkerId(1), 0)]
        );
        assert_eq!(
            log.worker_answers(WorkerId(0)),
            &[(TaskId(0), 1), (TaskId(2), 1)]
        );
        assert_eq!(log.num_workers(), 2);
    }

    #[test]
    fn duplicate_answers_rejected() {
        let mut log = AnswerLog::new(1);
        log.record(ans(0, 0, 0)).unwrap();
        let err = log.record(ans(0, 0, 1)).unwrap_err();
        assert!(matches!(err, Error::DuplicateAnswer { .. }));
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn unknown_task_rejected() {
        let mut log = AnswerLog::new(1);
        assert!(matches!(
            log.record(ans(5, 0, 0)),
            Err(Error::UnknownTask(_))
        ));
    }

    #[test]
    fn has_answered_tracks_pairs() {
        let mut log = AnswerLog::new(2);
        log.record(ans(0, 3, 1)).unwrap();
        assert!(log.has_answered(WorkerId(3), TaskId(0)));
        assert!(!log.has_answered(WorkerId(3), TaskId(1)));
        assert!(!log.has_answered(WorkerId(4), TaskId(0)));
    }

    #[test]
    fn truncated_per_task_caps_answers() {
        let mut log = AnswerLog::new(1);
        for w in 0..5 {
            log.record(ans(0, w, w % 2)).unwrap();
        }
        let cut = log.truncated_per_task(3);
        assert_eq!(cut.answer_count(TaskId(0)), 3);
        // Keeps the earliest arrivals.
        assert_eq!(
            cut.task_answers(TaskId(0)),
            &vec![(WorkerId(0), 0), (WorkerId(1), 1), (WorkerId(2), 0)]
        );
    }

    #[test]
    fn truncated_per_worker_caps_worker_load() {
        let mut log = AnswerLog::new(4);
        for t in 0..4 {
            log.record(ans(t, 0, 0)).unwrap();
        }
        log.record(ans(0, 1, 1)).unwrap();
        let cut = log.truncated_per_worker(2);
        assert_eq!(cut.worker_answers(WorkerId(0)).len(), 2);
        assert_eq!(cut.worker_answers(WorkerId(1)).len(), 1);
    }

    #[test]
    fn iter_answers_roundtrips() {
        let mut log = AnswerLog::new(2);
        log.record(ans(0, 0, 1)).unwrap();
        log.record(ans(1, 2, 0)).unwrap();
        let collected: Vec<Answer> = log.iter_answers().collect();
        assert_eq!(collected.len(), 2);
        let mut log2 = AnswerLog::new(2);
        for a in collected {
            log2.record(a).unwrap();
        }
        assert_eq!(log2.len(), log.len());
    }
}
