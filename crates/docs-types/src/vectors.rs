//! Domain vectors (Definition 2) and quality vectors (Definition 3).

use crate::prob;
use crate::{Error, Result};
use serde::{Deserialize, Serialize};
use std::ops::Index;

/// A task's domain vector `r^t = [r^t_1, ..., r^t_m]` (Definition 2).
///
/// Each entry lies in `[0, 1]` and the entries sum to one: the vector is the
/// distribution describing how related the task is to each domain of the
/// deployment's [`crate::DomainSet`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DomainVector(Vec<f64>);

impl DomainVector {
    /// Validates and wraps a distribution over domains.
    pub fn new(values: Vec<f64>) -> Result<Self> {
        if !prob::is_distribution(&values) {
            return Err(Error::NotADistribution {
                what: "domain vector",
                sum: values.iter().sum(),
            });
        }
        Ok(DomainVector(values))
    }

    /// Builds a domain vector by normalizing non-negative weights.
    ///
    /// All-zero weights normalize to the uniform distribution, which is how
    /// DVE treats tasks whose entities carry no domain signal.
    pub fn from_weights(weights: &[f64]) -> Result<Self> {
        if weights.is_empty() {
            return Err(Error::Empty("domain weight vector"));
        }
        if weights.iter().any(|w| *w < 0.0 || w.is_nan()) {
            return Err(Error::NotADistribution {
                what: "domain weights",
                sum: weights.iter().sum(),
            });
        }
        Ok(DomainVector(prob::normalized(weights)))
    }

    /// A one-hot vector: the task is entirely in domain `k`.
    pub fn one_hot(m: usize, k: usize) -> Self {
        assert!(k < m, "domain index {k} out of range for m={m}");
        let mut v = vec![0.0; m];
        v[k] = 1.0;
        DomainVector(v)
    }

    /// The uniform domain vector over `m` domains.
    pub fn uniform(m: usize) -> Self {
        DomainVector(prob::uniform(m))
    }

    /// Number of domains `m`.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the vector has no entries (never constructible).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Raw slice access for the numeric kernels.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }

    /// The domain with the highest probability — the "detected domain" used
    /// by the Figure 3 evaluation.
    pub fn dominant_domain(&self) -> usize {
        prob::argmax(&self.0)
    }

    /// Indices of local maxima ("modes"/"peaks"); the paper's multi-domain
    /// analysis (Section 6.2) picks out tasks whose domain vector has more
    /// than one mode above a threshold.
    pub fn modes(&self, threshold: f64) -> Vec<usize> {
        self.0
            .iter()
            .enumerate()
            .filter(|(_, &p)| p >= threshold)
            .map(|(k, _)| k)
            .collect()
    }
}

impl Index<usize> for DomainVector {
    type Output = f64;
    #[inline]
    fn index(&self, k: usize) -> &f64 {
        &self.0[k]
    }
}

/// A worker's quality vector `q^w = [q^w_1, ..., q^w_m]` (Definition 3).
///
/// `q^w_k ∈ [0, 1]` is the probability that worker `w` answers a task in
/// domain `d_k` correctly. Unlike a [`DomainVector`] this is *not* a
/// distribution — a worker can be an expert in several domains at once.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualityVector(Vec<f64>);

impl QualityVector {
    /// Validates and wraps per-domain accuracies.
    pub fn new(values: Vec<f64>) -> Result<Self> {
        if values.is_empty() {
            return Err(Error::Empty("quality vector"));
        }
        for &q in &values {
            if !(0.0..=1.0).contains(&q) || q.is_nan() {
                return Err(Error::QualityOutOfRange(q));
            }
        }
        Ok(QualityVector(values))
    }

    /// A flat quality vector: the same accuracy in every domain.
    pub fn flat(m: usize, q: f64) -> Result<Self> {
        QualityVector::new(vec![q; m])
    }

    /// Number of domains `m`.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if the vector has no entries (never constructible).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Raw slice access.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }

    /// Mutable access, used by the incremental quality updates of
    /// Section 4.2. Callers must keep the entries in `[0, 1]`.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.0
    }

    /// Mean quality across domains — a crude scalar summary used by
    /// baselines that ignore domains.
    pub fn mean(&self) -> f64 {
        self.0.iter().sum::<f64>() / self.0.len() as f64
    }

    /// Expected accuracy of this worker on a task with domain vector `r`:
    /// `Σ_k r_k · q_k`. This is the "matching degree" the D-Max baseline
    /// maximizes.
    pub fn expected_accuracy(&self, r: &DomainVector) -> f64 {
        debug_assert_eq!(self.len(), r.len());
        self.0
            .iter()
            .zip(r.as_slice())
            .map(|(&q, &rk)| q * rk)
            .sum()
    }
}

impl Index<usize> for QualityVector {
    type Output = f64;
    #[inline]
    fn index(&self, k: usize) -> &f64 {
        &self.0[k]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_vector_rejects_non_distribution() {
        assert!(DomainVector::new(vec![0.5, 0.2]).is_err());
        assert!(DomainVector::new(vec![1.1, -0.1]).is_err());
        assert!(DomainVector::new(vec![0.3, 0.7]).is_ok());
    }

    #[test]
    fn from_weights_normalizes() {
        let r = DomainVector::from_weights(&[1.0, 3.0]).unwrap();
        assert_eq!(r.as_slice(), &[0.25, 0.75]);
    }

    #[test]
    fn from_weights_rejects_negative() {
        assert!(DomainVector::from_weights(&[1.0, -1.0]).is_err());
        assert!(DomainVector::from_weights(&[]).is_err());
    }

    #[test]
    fn zero_weights_become_uniform() {
        let r = DomainVector::from_weights(&[0.0, 0.0]).unwrap();
        assert_eq!(r.as_slice(), &[0.5, 0.5]);
    }

    #[test]
    fn one_hot_and_dominant_domain() {
        let r = DomainVector::one_hot(4, 2);
        assert_eq!(r.dominant_domain(), 2);
        assert_eq!(r[2], 1.0);
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn modes_finds_peaks() {
        let r = DomainVector::new(vec![0.05, 0.45, 0.45, 0.05]).unwrap();
        assert_eq!(r.modes(0.3), vec![1, 2]);
        assert_eq!(r.modes(0.5), Vec::<usize>::new());
    }

    #[test]
    fn quality_vector_bounds_checked() {
        assert!(QualityVector::new(vec![0.0, 1.0, 0.5]).is_ok());
        assert!(QualityVector::new(vec![1.5]).is_err());
        assert!(QualityVector::new(vec![-0.1]).is_err());
        assert!(QualityVector::new(vec![]).is_err());
    }

    #[test]
    fn expected_accuracy_weights_by_domain_vector() {
        // Worker from Table 1: q = [0.3, 0.9, 0.6]; task r = [0, 0.78, 0.22].
        let q = QualityVector::new(vec![0.3, 0.9, 0.6]).unwrap();
        let r = DomainVector::new(vec![0.0, 0.78, 0.22]).unwrap();
        let acc = q.expected_accuracy(&r);
        assert!((acc - (0.78 * 0.9 + 0.22 * 0.6)).abs() < 1e-12);
    }

    #[test]
    fn mean_quality() {
        let q = QualityVector::new(vec![0.2, 0.4, 0.9]).unwrap();
        assert!((q.mean() - 0.5).abs() < 1e-12);
    }
}
