//! Tasks (Definition 2) and their builder.

use crate::{ChoiceIndex, DomainVector, Error, Result, TaskId};
use serde::{Deserialize, Serialize};

/// A multiple-choice task `t_i` published by a requester.
///
/// A task carries its natural-language description (consumed by the entity
/// linker and the topic-model baselines), its `ℓ` choices, and — once DVE has
/// run — its domain vector `r^t`. Ground-truth fields exist for evaluation
/// and for golden tasks; the inference algorithms never read them.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Task {
    /// Dense id of this task within the requester batch.
    pub id: TaskId,
    /// Natural-language description shown to workers.
    pub text: String,
    /// The `ℓ` choice labels. `ℓ = choices.len() ≥ 2`.
    pub choices: Vec<String>,
    /// Domain vector `r^t`, filled in by DVE.
    pub domain_vector: Option<DomainVector>,
    /// Ground-truth answer `v*` (0-based), known only to the evaluation
    /// harness and for golden tasks.
    pub ground_truth: Option<ChoiceIndex>,
    /// Ground-truth domain of the task, used by the Figure 3 evaluation and
    /// by the "IC/FC get true domains" handicap of Section 6.3.
    pub true_domain: Option<usize>,
}

impl Task {
    /// Number of choices `ℓ_t`.
    #[inline]
    pub fn num_choices(&self) -> usize {
        self.choices.len()
    }

    /// Domain vector, panicking if DVE has not run yet.
    ///
    /// Inference and assignment require DVE output; calling them on
    /// un-estimated tasks is a programming error, hence panic over `Result`.
    pub fn domain_vector(&self) -> &DomainVector {
        self.domain_vector
            .as_ref()
            .expect("task has no domain vector; run DVE first")
    }

    /// Validates a choice index against this task.
    pub fn check_choice(&self, choice: ChoiceIndex) -> Result<()> {
        if choice >= self.num_choices() {
            return Err(Error::ChoiceOutOfRange {
                choice,
                num_choices: self.num_choices(),
            });
        }
        Ok(())
    }
}

/// Builder for [`Task`], used by the dataset generators.
#[derive(Debug, Clone)]
pub struct TaskBuilder {
    id: TaskId,
    text: String,
    choices: Vec<String>,
    domain_vector: Option<DomainVector>,
    ground_truth: Option<ChoiceIndex>,
    true_domain: Option<usize>,
}

impl TaskBuilder {
    /// Starts a task with its id and description text.
    pub fn new(id: impl Into<TaskId>, text: impl Into<String>) -> Self {
        TaskBuilder {
            id: id.into(),
            text: text.into(),
            choices: Vec::new(),
            domain_vector: None,
            ground_truth: None,
            true_domain: None,
        }
    }

    /// Convenience for a `TaskId` from a `usize`.
    pub fn with_choices<I, S>(mut self, choices: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.choices = choices.into_iter().map(Into::into).collect();
        self
    }

    /// Standard yes/no task (`ℓ = 2`), the most common shape in the paper's
    /// datasets.
    pub fn yes_no(mut self) -> Self {
        self.choices = vec!["yes".to_string(), "no".to_string()];
        self
    }

    /// Sets the domain vector (normally DVE's job; tests set it directly).
    pub fn with_domain_vector(mut self, r: DomainVector) -> Self {
        self.domain_vector = Some(r);
        self
    }

    /// Records the evaluation-only ground truth.
    pub fn with_ground_truth(mut self, truth: ChoiceIndex) -> Self {
        self.ground_truth = Some(truth);
        self
    }

    /// Records the evaluation-only true domain.
    pub fn with_true_domain(mut self, k: usize) -> Self {
        self.true_domain = Some(k);
        self
    }

    /// Validates and produces the task.
    pub fn build(self) -> Result<Task> {
        if self.choices.len() < 2 {
            return Err(Error::TooFewChoices(self.choices.len()));
        }
        if let Some(t) = self.ground_truth {
            if t >= self.choices.len() {
                return Err(Error::ChoiceOutOfRange {
                    choice: t,
                    num_choices: self.choices.len(),
                });
            }
        }
        Ok(Task {
            id: self.id,
            text: self.text,
            choices: self.choices,
            domain_vector: self.domain_vector,
            ground_truth: self.ground_truth,
            true_domain: self.true_domain,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_valid_task() {
        let t = TaskBuilder::new(
            0usize,
            "Does Michael Jordan win more NBA championships than Kobe Bryant?",
        )
        .yes_no()
        .with_ground_truth(0)
        .with_true_domain(1)
        .build()
        .unwrap();
        assert_eq!(t.num_choices(), 2);
        assert_eq!(t.ground_truth, Some(0));
        assert_eq!(t.true_domain, Some(1));
        assert!(t.domain_vector.is_none());
    }

    #[test]
    fn builder_rejects_single_choice() {
        let err = TaskBuilder::new(0usize, "?")
            .with_choices(["only"])
            .build()
            .unwrap_err();
        assert_eq!(err, Error::TooFewChoices(1));
    }

    #[test]
    fn builder_rejects_out_of_range_truth() {
        let err = TaskBuilder::new(0usize, "?")
            .yes_no()
            .with_ground_truth(5)
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::ChoiceOutOfRange { choice: 5, .. }));
    }

    #[test]
    fn check_choice_validates() {
        let t = TaskBuilder::new(0usize, "?").yes_no().build().unwrap();
        assert!(t.check_choice(1).is_ok());
        assert!(t.check_choice(2).is_err());
    }

    #[test]
    #[should_panic(expected = "run DVE first")]
    fn domain_vector_panics_before_dve() {
        let t = TaskBuilder::new(0usize, "?").yes_no().build().unwrap();
        let _ = t.domain_vector();
    }
}
