//! The wire-level rejection taxonomy of the service API.
//!
//! The sharded service used to collapse every refusal into an opaque
//! `Rejected(String)` — clients could print the failure but never branch on
//! it. [`RejectReason`] replaces that: one matchable variant per way the
//! system can say "no", carried from docs-system validation through the
//! wire envelope to the client's completion handle. The [`Display`]
//! rendering of each variant reproduces the exact message text the string
//! era emitted, so log scrapers and tests keyed on those messages keep
//! working.
//!
//! [`Display`]: std::fmt::Display

use crate::{CampaignId, Error, NodeId, TaskId, WorkerId};
use std::fmt;

/// Why the service refused a request, as a matchable value.
///
/// Produced on the owning shard (validation happens against the campaign's
/// live state) and carried verbatim in the completion envelope; the
/// service's `ServiceError::Rejected` wraps it on the client side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// The addressed campaign is not registered on its owning shard.
    UnknownCampaign(CampaignId),
    /// The same worker already answered the same task (Definition 4:
    /// "a worker can answer a task at most once").
    DuplicateAnswer {
        /// Worker who answered twice.
        worker: WorkerId,
        /// Task that was answered twice.
        task: TaskId,
    },
    /// A referenced task id is outside the campaign's published task set.
    UnknownTask(TaskId),
    /// A choice index `>= ℓ_t` was used for a task.
    ChoiceOutOfRange {
        /// Offending choice.
        choice: usize,
        /// Number of choices of the task.
        num_choices: usize,
    },
    /// A golden submission targeted a task outside the golden set — only
    /// manually labeled golden tasks can grade a new worker.
    GoldenRequired(TaskId),
    /// The campaign's collection budget is consumed and the campaign runs
    /// with strict admission (late answers refused, not absorbed).
    BudgetExhausted,
    /// The request needs event-log durability the service cannot provide.
    /// `campaign` names the requester when the refusal happened on the
    /// owning shard; `None` when the handle refused before submitting.
    DurabilityUnavailable {
        /// Campaign that asked for durability, when known.
        campaign: Option<CampaignId>,
    },
    /// `DocsService::recover` was called on a configuration without a
    /// durability directory — there is nothing to recover from.
    RecoverWithoutDurability,
    /// The request mutates campaign state but the service is running as a
    /// read-only follower replica: writes must go to the primary (or wait
    /// for this follower to be promoted).
    ReadOnlyReplica {
        /// The campaign the refused mutation addressed.
        campaign: CampaignId,
    },
    /// A replication-plane request (snapshot install, replicated apply)
    /// reached a service that is not a follower — only the promotion-free
    /// applier path may feed a replica, and a primary has no applier.
    NotAFollower {
        /// The campaign the refused replication request addressed.
        campaign: CampaignId,
    },
    /// The addressed campaign's write path is owned by another cluster
    /// node — the client's `ClusterMap` is stale (a migration fenced the
    /// campaign away) and the request should be retried against `owner`.
    WrongNode {
        /// The node that owns the campaign now.
        owner: NodeId,
    },
    /// A requester's `finish` could not harden the campaign's buffered
    /// events; the report was withheld (the requester can retry — the
    /// events stay buffered for the resumed flush).
    ReportNotDurable {
        /// The campaign whose report was withheld.
        campaign: CampaignId,
        /// The underlying flush failure, rendered.
        cause: String,
    },
    /// Storage-layer failure (WAL append, snapshot encode, parameter
    /// database) — the one variant that stays textual, because the
    /// underlying I/O error is.
    Storage(String),
    /// Any other validation failure (malformed distribution, dimension
    /// mismatch, …) — rendered exactly as the originating
    /// [`Error`](crate::Error) displays itself.
    Invalid(String),
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::UnknownCampaign(c) => write!(f, "unknown campaign {c}"),
            RejectReason::DuplicateAnswer { worker, task } => {
                write!(f, "worker {worker} already answered task {task}")
            }
            RejectReason::UnknownTask(t) => write!(f, "unknown task {t}"),
            RejectReason::ChoiceOutOfRange {
                choice,
                num_choices,
            } => write!(
                f,
                "choice {choice} out of range for task with {num_choices} choices"
            ),
            RejectReason::GoldenRequired(t) => {
                write!(
                    f,
                    "task {t} is not a golden task (no manual label to grade against)"
                )
            }
            RejectReason::BudgetExhausted => write!(f, "collection budget exhausted"),
            RejectReason::DurabilityUnavailable {
                campaign: Some(campaign),
            } => write!(
                f,
                "campaign {campaign} requests durability but the service was \
                 spawned without a durability directory"
            ),
            RejectReason::DurabilityUnavailable { campaign: None } => {
                write!(f, "service was spawned without durability")
            }
            RejectReason::RecoverWithoutDurability => {
                write!(f, "recover needs a durability directory")
            }
            RejectReason::ReadOnlyReplica { campaign } => write!(
                f,
                "campaign {campaign} is served by a read-only follower replica; \
                 route writes to the primary"
            ),
            RejectReason::NotAFollower { campaign } => write!(
                f,
                "replication apply for campaign {campaign} refused: this service \
                 is not a follower"
            ),
            RejectReason::WrongNode { owner } => write!(
                f,
                "campaign is owned by cluster node {owner}; retry there with a \
                 refreshed cluster map"
            ),
            RejectReason::ReportNotDurable { campaign, cause } => write!(
                f,
                "campaign {campaign} report is not durable — flush on finish failed: {cause}"
            ),
            RejectReason::Storage(msg) => write!(f, "storage error: {msg}"),
            RejectReason::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl From<Error> for RejectReason {
    /// Lifts a validation error into the wire taxonomy. Every variant with
    /// a structural twin maps onto it; the rest keep their exact rendered
    /// message under [`RejectReason::Invalid`].
    fn from(e: Error) -> Self {
        match e {
            Error::DuplicateAnswer { task, worker } => {
                RejectReason::DuplicateAnswer { worker, task }
            }
            Error::UnknownTask(t) => RejectReason::UnknownTask(t),
            Error::ChoiceOutOfRange {
                choice,
                num_choices,
            } => RejectReason::ChoiceOutOfRange {
                choice,
                num_choices,
            },
            Error::GoldenRequired(t) => RejectReason::GoldenRequired(t),
            Error::BudgetExhausted => RejectReason::BudgetExhausted,
            Error::Storage(msg) => RejectReason::Storage(msg),
            other => RejectReason::Invalid(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every structural variant must render the same text its `Error` twin
    /// (or the pre-taxonomy service string) rendered — the stability
    /// contract of the string→enum migration.
    #[test]
    fn display_matches_the_string_era() {
        let cases: Vec<(RejectReason, &str)> = vec![
            (
                RejectReason::UnknownCampaign(CampaignId(7)),
                "unknown campaign c7",
            ),
            (
                RejectReason::DuplicateAnswer {
                    worker: WorkerId(1),
                    task: TaskId(3),
                },
                "worker w1 already answered task t3",
            ),
            (RejectReason::UnknownTask(TaskId(9)), "unknown task t9"),
            (
                RejectReason::ChoiceOutOfRange {
                    choice: 4,
                    num_choices: 2,
                },
                "choice 4 out of range for task with 2 choices",
            ),
            (RejectReason::BudgetExhausted, "collection budget exhausted"),
            (
                RejectReason::DurabilityUnavailable { campaign: None },
                "service was spawned without durability",
            ),
            (
                RejectReason::RecoverWithoutDurability,
                "recover needs a durability directory",
            ),
            (
                RejectReason::ReportNotDurable {
                    campaign: CampaignId(0),
                    cause: "storage error: disk on fire".into(),
                },
                "campaign c0 report is not durable — flush on finish failed: \
                 storage error: disk on fire",
            ),
            (RejectReason::Storage("boom".into()), "storage error: boom"),
            (
                RejectReason::ReadOnlyReplica {
                    campaign: CampaignId(2),
                },
                "campaign c2 is served by a read-only follower replica; \
                 route writes to the primary",
            ),
            (
                RejectReason::NotAFollower {
                    campaign: CampaignId(4),
                },
                "replication apply for campaign c4 refused: this service \
                 is not a follower",
            ),
            (
                RejectReason::WrongNode { owner: NodeId(1) },
                "campaign is owned by cluster node n1; retry there with a \
                 refreshed cluster map",
            ),
        ];
        for (reason, expected) in cases {
            assert_eq!(reason.to_string(), expected);
        }
    }

    #[test]
    fn error_lifts_structurally() {
        assert_eq!(
            RejectReason::from(Error::DuplicateAnswer {
                task: TaskId(3),
                worker: WorkerId(1),
            }),
            RejectReason::DuplicateAnswer {
                worker: WorkerId(1),
                task: TaskId(3),
            }
        );
        assert_eq!(
            RejectReason::from(Error::UnknownTask(TaskId(2))),
            RejectReason::UnknownTask(TaskId(2))
        );
        assert_eq!(
            RejectReason::from(Error::BudgetExhausted),
            RejectReason::BudgetExhausted
        );
        // Variants without a structural twin keep their exact message.
        let e = Error::TooFewChoices(1);
        assert_eq!(RejectReason::from(e.clone()).to_string(), e.to_string());
    }

    /// The lift preserves the rendered message for every variant that had
    /// one before the taxonomy existed.
    #[test]
    fn lift_preserves_display_for_every_error() {
        let errors = vec![
            Error::DuplicateAnswer {
                task: TaskId(3),
                worker: WorkerId(1),
            },
            Error::UnknownTask(TaskId(5)),
            Error::ChoiceOutOfRange {
                choice: 3,
                num_choices: 2,
            },
            Error::GoldenRequired(TaskId(4)),
            Error::BudgetExhausted,
            Error::Storage("disk on fire".into()),
            Error::TooFewChoices(1),
            Error::Empty("task set"),
            Error::QualityOutOfRange(1.5),
        ];
        for e in errors {
            assert_eq!(RejectReason::from(e.clone()).to_string(), e.to_string());
        }
    }
}
