//! Strongly-typed identifiers.
//!
//! All cross-referencing in the workspace goes through these newtypes so a
//! task index can never be confused with a worker index or a choice index.
//! They are plain `u32`/`usize` wrappers with zero runtime cost.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a task `t_i` within one requester batch.
///
/// Task ids are dense: the `i`-th published task has id `i`, which lets the
/// inference modules index per-task state with plain vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskId(pub u32);

impl TaskId {
    /// Returns the id as a vector index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl From<usize> for TaskId {
    fn from(v: usize) -> Self {
        TaskId(v as u32)
    }
}

/// Identifier of a crowd worker `w`.
///
/// On a real platform this would be the opaque AMT worker id; in the
/// reproduction it is a dense index into the simulated worker population.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct WorkerId(pub u32);

impl WorkerId {
    /// Returns the id as a vector index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for WorkerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

impl From<usize> for WorkerId {
    fn from(v: usize) -> Self {
        WorkerId(v as u32)
    }
}

/// Zero-based index of one of the `ℓ_{t_i}` choices of a task.
///
/// The paper numbers choices `1..=ℓ`; we use `0..ℓ` throughout and only
/// translate in display code.
pub type ChoiceIndex = usize;

/// Zero-based index of a domain `d_k` within a [`crate::DomainSet`].
pub type DomainIndex = usize;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_id_roundtrip() {
        let id = TaskId::from(42usize);
        assert_eq!(id.index(), 42);
        assert_eq!(id.to_string(), "t42");
    }

    #[test]
    fn worker_id_roundtrip() {
        let id = WorkerId::from(7usize);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "w7");
    }

    #[test]
    fn ids_are_ordered_by_value() {
        assert!(TaskId(1) < TaskId(2));
        assert!(WorkerId(0) < WorkerId(10));
    }
}
