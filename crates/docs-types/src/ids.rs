//! Strongly-typed identifiers.
//!
//! All cross-referencing in the workspace goes through these newtypes so a
//! task index can never be confused with a worker index or a choice index.
//! They are plain `u32`/`usize` wrappers with zero runtime cost.

use serde::{Deserialize, Serialize};
use std::fmt;

/// SplitMix64-style shard assignment shared by every sharded id type:
/// dense ids spread evenly across shards instead of striping, and keeping
/// one definition guarantees all layers agree on ownership.
#[inline]
fn splitmix_shard(v: u64, shards: usize) -> usize {
    assert!(shards > 0, "need at least one shard");
    let mut z = v.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    ((z ^ (z >> 31)) % shards as u64) as usize
}

/// Identifier of a task `t_i` within one requester batch.
///
/// Task ids are dense: the `i`-th published task has id `i`, which lets the
/// inference modules index per-task state with plain vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskId(pub u32);

impl TaskId {
    /// Returns the id as a vector index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Deterministic shard owner for this task among `shards` shards.
    ///
    /// The OTA benefit scan and TI ingestion partition task state with this
    /// mapping (same mix as [`CampaignId::shard`], via [`splitmix_shard`]).
    #[inline]
    pub fn shard(self, shards: usize) -> usize {
        splitmix_shard(self.0 as u64, shards)
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl From<usize> for TaskId {
    fn from(v: usize) -> Self {
        TaskId(v as u32)
    }
}

/// Identifier of a crowd worker `w`.
///
/// On a real platform this would be the opaque AMT worker id; in the
/// reproduction it is a dense index into the simulated worker population.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct WorkerId(pub u32);

impl WorkerId {
    /// Returns the id as a vector index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for WorkerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

impl From<usize> for WorkerId {
    fn from(v: usize) -> Self {
        WorkerId(v as u32)
    }
}

/// Identifier of a requester campaign (one published task batch).
///
/// The paper's deployment serves a single requester batch; the service
/// runtime hosts many concurrent campaigns, each owning its own `Docs`
/// state machine, keyed by this id. Campaign ids are allocated densely by
/// the registry/service, which lets shard routing hash them cheaply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CampaignId(pub u32);

impl CampaignId {
    /// Returns the id as a vector index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Deterministic shard owner for this campaign among `shards` shards.
    ///
    /// The service router and each shard's registry must agree on this
    /// mapping, so it lives here with the id type (via [`splitmix_shard`]).
    #[inline]
    pub fn shard(self, shards: usize) -> usize {
        splitmix_shard(self.0 as u64, shards)
    }
}

impl fmt::Display for CampaignId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl From<usize> for CampaignId {
    fn from(v: usize) -> Self {
        CampaignId(v as u32)
    }
}

/// Identifier of one sampled request trace.
///
/// Allocated by the service when a request is chosen for tracing (a
/// sampled subset of correlation ids); every span the request accumulates
/// across layers — client submit, router hop, queue wait, apply, flush
/// wait, ship — carries this id into the flight recorder. Unlike the
/// dense ids above it is a plain opaque `u64` tag: traces are sparse and
/// never used as vector indexes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TraceId(pub u64);

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tr{}", self.0)
    }
}

impl From<u64> for TraceId {
    fn from(v: u64) -> Self {
        TraceId(v)
    }
}

/// Zero-based index of one of the `ℓ_{t_i}` choices of a task.
///
/// The paper numbers choices `1..=ℓ`; we use `0..ℓ` throughout and only
/// translate in display code.
pub type ChoiceIndex = usize;

/// Zero-based index of a domain `d_k` within a [`crate::DomainSet`].
pub type DomainIndex = usize;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_id_roundtrip() {
        let id = TaskId::from(42usize);
        assert_eq!(id.index(), 42);
        assert_eq!(id.to_string(), "t42");
    }

    #[test]
    fn worker_id_roundtrip() {
        let id = WorkerId::from(7usize);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "w7");
    }

    #[test]
    fn ids_are_ordered_by_value() {
        assert!(TaskId(1) < TaskId(2));
        assert!(WorkerId(0) < WorkerId(10));
        assert!(CampaignId(0) < CampaignId(3));
    }

    #[test]
    fn campaign_id_roundtrip() {
        let id = CampaignId::from(5usize);
        assert_eq!(id.index(), 5);
        assert_eq!(id.to_string(), "c5");
    }

    #[test]
    fn campaign_sharding_is_deterministic_and_total() {
        for shards in 1..8 {
            for c in 0..100u32 {
                let s = CampaignId(c).shard(shards);
                assert!(s < shards);
                assert_eq!(s, CampaignId(c).shard(shards), "stable mapping");
            }
        }
        // Dense ids spread across shards rather than collapsing onto one.
        let shards = 4;
        let mut seen = [false; 4];
        for c in 0..32u32 {
            seen[CampaignId(c).shard(shards)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all shards receive campaigns");
    }
}
