//! Error type shared by the workspace.

use std::fmt;

/// Convenient result alias used across the DOCS crates.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// Errors produced by the DOCS data model and algorithms.
///
/// The variants are deliberately coarse: each names the invariant that was
/// violated rather than the call site, so they stay meaningful when bubbled
/// across crates.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A vector that must be a probability distribution is not (wrong length,
    /// negative entries, or does not sum to 1 within tolerance).
    NotADistribution {
        /// What the vector was supposed to represent.
        what: &'static str,
        /// Actual sum observed.
        sum: f64,
    },
    /// A per-domain vector has the wrong number of entries.
    DimensionMismatch {
        /// What was being checked.
        what: &'static str,
        /// Expected length (usually `m`, the number of domains).
        expected: usize,
        /// Observed length.
        got: usize,
    },
    /// A quality value fell outside `[0, 1]`.
    QualityOutOfRange(f64),
    /// A choice index `>= ℓ_t` was used for a task.
    ChoiceOutOfRange {
        /// Offending choice.
        choice: usize,
        /// Number of choices of the task.
        num_choices: usize,
    },
    /// The same worker answered the same task twice (forbidden by
    /// Definition 4: "a worker can answer a task at most once").
    DuplicateAnswer {
        /// Task that was answered twice.
        task: crate::TaskId,
        /// Worker who answered twice.
        worker: crate::WorkerId,
    },
    /// A referenced task id is outside the published task set.
    UnknownTask(crate::TaskId),
    /// A golden submission targeted a task outside the golden set — only
    /// manually labeled golden tasks can grade a new worker (Section 5.2).
    GoldenRequired(crate::TaskId),
    /// The campaign's collection budget is already consumed; surfaced by
    /// strict-admission campaigns that refuse late answers instead of
    /// absorbing them.
    BudgetExhausted,
    /// A task was built with fewer than two choices.
    TooFewChoices(usize),
    /// An empty structure was supplied where at least one element is needed.
    Empty(&'static str),
    /// Storage-layer failure (wrapped as text to keep this crate I/O free).
    Storage(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NotADistribution { what, sum } => {
                write!(f, "{what} is not a probability distribution (sum = {sum})")
            }
            Error::DimensionMismatch {
                what,
                expected,
                got,
            } => write!(f, "{what}: expected {expected} entries, got {got}"),
            Error::QualityOutOfRange(q) => write!(f, "quality {q} outside [0, 1]"),
            Error::ChoiceOutOfRange {
                choice,
                num_choices,
            } => write!(
                f,
                "choice {choice} out of range for task with {num_choices} choices"
            ),
            Error::DuplicateAnswer { task, worker } => {
                write!(f, "worker {worker} already answered task {task}")
            }
            Error::UnknownTask(t) => write!(f, "unknown task {t}"),
            Error::GoldenRequired(t) => {
                write!(
                    f,
                    "task {t} is not a golden task (no manual label to grade against)"
                )
            }
            Error::BudgetExhausted => write!(f, "collection budget exhausted"),
            Error::TooFewChoices(l) => {
                write!(f, "tasks need at least 2 choices, got {l}")
            }
            Error::Empty(what) => write!(f, "{what} must not be empty"),
            Error::Storage(msg) => write!(f, "storage error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TaskId, WorkerId};

    #[test]
    fn display_is_informative() {
        let e = Error::DuplicateAnswer {
            task: TaskId(3),
            worker: WorkerId(1),
        };
        assert_eq!(e.to_string(), "worker w1 already answered task t3");

        let e = Error::NotADistribution {
            what: "domain vector",
            sum: 0.5,
        };
        assert!(e.to_string().contains("domain vector"));
        assert!(e.to_string().contains("0.5"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}
