//! Correlation-aware domain vector estimation — the paper's stated future
//! work for Section 3.
//!
//! Section 3.1 assumes "the entity is linked into different concepts
//! independently", i.e. `Pr(π) = Π_i p_{i,π_i}`, and defers "the issues of
//! correlation among concepts" to future work. This module implements that
//! extension: entity→concept linkings in the same task are *coherent* — if
//! one mention resolves to a basketball player, a neighboring ambiguous
//! mention more likely resolves to a basketball league than to a bar
//! association (the paper's own "Michael Jordan"/"NBA" example).
//!
//! ## The correlated linking model
//!
//! We reweight each joint linking `π` by the pairwise domain coherence of
//! the concepts it selects:
//!
//! ```text
//! Pr_λ(π) ∝ Π_i p_{i,π_i} · exp( λ · Σ_{i<i'} coh(h_{i,π_i}, h_{i',π_{i'}}) )
//! ```
//!
//! where `coh` is the Jaccard similarity of the two concepts' domain
//! indicator sets and `λ ≥ 0` is the correlation strength. At `λ = 0` this
//! collapses *exactly* to the paper's independent model, so Eq. 1 and
//! Algorithm 1 remain the special case (a property the tests pin down).
//!
//! The domain vector generalizes Eq. 1 verbatim:
//!
//! ```text
//! r^t_λ = Σ_{π ∈ Ω} v_π · Pr_λ(π)
//! ```
//!
//! ## Inference
//!
//! The coherence term couples all entities, so the (nm, dm) dynamic program
//! of Algorithm 1 no longer applies. Three estimators are provided:
//!
//! * [`domain_vector_correlated_exact`] — exact summation over `Ω`;
//!   exponential, usable for small `|E_t|` and as ground truth in tests,
//! * [`domain_vector_correlated_gibbs`] — a collapsed Gibbs sampler over
//!   linkings; polynomial per sweep, converges to the exact value,
//! * [`rerank_by_coherence`] — a practical polynomial pipeline: fold the
//!   pairwise coherence into *per-entity marginal* reweighting (one round of
//!   loopy message passing, the style of relational wikification \[10\]) and
//!   then run the unmodified Algorithm 1 on the reranked `p'_i`.

use super::domain_vector;
use docs_kb::{IndicatorVector, LinkedEntity};
use docs_types::DomainVector;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Pairwise coherence of two concepts: Jaccard similarity of their domain
/// sets, `|h ∩ h'| / |h ∪ h'|`, with the convention that two domain-free
/// concepts cohere with score 0 (they carry no evidence either way).
#[inline]
pub fn coherence(a: &IndicatorVector, b: &IndicatorVector) -> f64 {
    let inter = a.overlap(b);
    let union = a.count() + b.count() - inter;
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

/// Configuration of the correlated linking model.
#[derive(Debug, Clone, Copy)]
pub struct CorrelationConfig {
    /// Correlation strength `λ ≥ 0`; `0.0` recovers the paper's independent
    /// model exactly.
    pub lambda: f64,
    /// Gibbs: number of burn-in sweeps discarded before collecting.
    pub burn_in: usize,
    /// Gibbs: number of collected samples (one per sweep after burn-in).
    pub samples: usize,
    /// Gibbs: RNG seed, so experiments are reproducible.
    pub seed: u64,
}

impl Default for CorrelationConfig {
    fn default() -> Self {
        CorrelationConfig {
            lambda: 1.0,
            burn_in: 50,
            samples: 400,
            seed: 0xC0_44E1,
        }
    }
}

/// The normalized indicator vector `v_π` of one linking (Eq. 1's summand),
/// or `None` when the linking selects no domain-related concept at all.
fn normalized_vector(entities: &[LinkedEntity], pi: &[usize], m: usize) -> Option<Vec<f64>> {
    let mut agg = vec![0u32; m];
    for (e, &j) in entities.iter().zip(pi) {
        let h = &e.indicators[j];
        for (k, slot) in agg.iter_mut().enumerate() {
            *slot += h.get(k);
        }
    }
    let denom: u32 = agg.iter().sum();
    if denom == 0 {
        return None;
    }
    let d = denom as f64;
    Some(agg.into_iter().map(|a| a as f64 / d).collect())
}

/// Unnormalized `Pr_λ(π)`: prior mass times the exponentiated sum of
/// pairwise coherences.
fn joint_weight(entities: &[LinkedEntity], pi: &[usize], lambda: f64) -> f64 {
    let mut prior = 1.0;
    for (e, &j) in entities.iter().zip(pi) {
        prior *= e.probs[j];
    }
    if lambda == 0.0 {
        return prior;
    }
    let mut coh = 0.0;
    for i in 0..entities.len() {
        for i2 in i + 1..entities.len() {
            coh += coherence(
                &entities[i].indicators[pi[i]],
                &entities[i2].indicators[pi[i2]],
            );
        }
    }
    prior * (lambda * coh).exp()
}

/// Exact domain vector under the correlated linking model.
///
/// Sums over all `|Ω| = Π_i |p_i|` linkings, so it is exponential like the
/// paper's Enumeration baseline; returns `None` when `|Ω|` exceeds
/// `max_linkings`. At `λ = 0` the result equals Algorithm 1's output.
pub fn domain_vector_correlated_exact(
    entities: &[LinkedEntity],
    m: usize,
    lambda: f64,
    max_linkings: u128,
) -> Option<DomainVector> {
    assert!(lambda >= 0.0, "correlation strength must be non-negative");
    if entities.is_empty() {
        return Some(DomainVector::uniform(m));
    }
    let mut omega: u128 = 1;
    for e in entities {
        omega = omega.checked_mul(e.num_candidates() as u128)?;
        if omega > max_linkings {
            return None;
        }
    }

    let mut r = vec![0.0; m];
    let mut total_mass = 0.0;
    let mut pi = vec![0usize; entities.len()];
    loop {
        let w = joint_weight(entities, &pi, lambda);
        total_mass += w;
        if let Some(v) = normalized_vector(entities, &pi, m) {
            for (rk, vk) in r.iter_mut().zip(&v) {
                *rk += vk * w;
            }
        }
        // Odometer over Ω.
        let mut i = 0;
        loop {
            if i == entities.len() {
                // Normalize by the partition function; linkings whose
                // concepts select no domain contribute mass to no domain,
                // mirroring Algorithm 1's dm = 0 convention.
                if total_mass > 0.0 {
                    for rk in &mut r {
                        *rk /= total_mass;
                    }
                }
                return Some(
                    DomainVector::from_weights(&r).expect("correlated weights are non-negative"),
                );
            }
            pi[i] += 1;
            if pi[i] < entities[i].num_candidates() {
                break;
            }
            pi[i] = 0;
            i += 1;
        }
    }
}

/// Gibbs-sampled domain vector under the correlated linking model.
///
/// Each sweep resamples every `π_i` from its full conditional
/// `Pr(π_i = j | π_{-i}) ∝ p_{i,j} · exp(λ Σ_{i'≠i} coh(h_{i,j}, h_{i',π_{i'}}))`,
/// then the sweep's linking contributes its normalized vector `v_π` to a
/// Monte-Carlo average. Per-sweep cost is `O(|E_t|² · c)` — polynomial,
/// unlike the exact sum.
pub fn domain_vector_correlated_gibbs(
    entities: &[LinkedEntity],
    m: usize,
    config: &CorrelationConfig,
) -> DomainVector {
    assert!(
        config.lambda >= 0.0,
        "correlation strength must be non-negative"
    );
    assert!(config.samples >= 1, "need at least one Gibbs sample");
    if entities.is_empty() {
        return DomainVector::uniform(m);
    }
    let mut rng = SmallRng::seed_from_u64(config.seed);
    // Initialize each entity at its most probable candidate.
    let mut pi: Vec<usize> = entities
        .iter()
        .map(|e| docs_types::prob::argmax(&e.probs))
        .collect();

    let mut r = vec![0.0; m];
    let mut kept = 0usize;
    let mut cond = Vec::new();
    for sweep in 0..config.burn_in + config.samples {
        for i in 0..entities.len() {
            let e = &entities[i];
            cond.clear();
            cond.reserve(e.num_candidates());
            for j in 0..e.num_candidates() {
                let mut coh = 0.0;
                if config.lambda > 0.0 {
                    for (i2, other) in entities.iter().enumerate() {
                        if i2 != i {
                            coh += coherence(&e.indicators[j], &other.indicators[pi[i2]]);
                        }
                    }
                }
                cond.push(e.probs[j] * (config.lambda * coh).exp());
            }
            docs_types::prob::normalize_in_place(&mut cond);
            pi[i] = docs_types::prob::sample_index(&cond, rng.gen());
        }
        if sweep >= config.burn_in {
            if let Some(v) = normalized_vector(entities, &pi, m) {
                for (rk, vk) in r.iter_mut().zip(&v) {
                    *rk += vk;
                }
            }
            kept += 1;
        }
    }
    debug_assert_eq!(kept, config.samples);
    DomainVector::from_weights(&r).expect("Gibbs averages are non-negative")
}

/// Folds pairwise coherence into *per-entity* reranked distributions `p'_i`
/// (one round of marginal message passing), leaving the independence
/// structure intact so the unmodified Algorithm 1 applies afterwards.
///
/// For each entity `i` and candidate `j`:
///
/// ```text
/// p'_{i,j} ∝ p_{i,j} · exp( λ · Σ_{i'≠i} Σ_{j'} p_{i',j'} · coh(h_{i,j}, h_{i',j'}) )
/// ```
///
/// This is the practical pipeline a production linker would use: polynomial
/// end-to-end (`O(|E_t|² c²)` reranking + Algorithm 1), with most of the
/// exact model's benefit (see the `correlated_dve` ablation bench).
pub fn rerank_by_coherence(entities: &[LinkedEntity], lambda: f64) -> Vec<LinkedEntity> {
    assert!(lambda >= 0.0, "correlation strength must be non-negative");
    let mut out = entities.to_vec();
    if lambda == 0.0 || entities.len() < 2 {
        return out;
    }
    for (i, e) in entities.iter().enumerate() {
        let mut new_probs = Vec::with_capacity(e.num_candidates());
        for j in 0..e.num_candidates() {
            let mut expected_coh = 0.0;
            for (i2, other) in entities.iter().enumerate() {
                if i2 == i {
                    continue;
                }
                for (j2, &p2) in other.probs.iter().enumerate() {
                    expected_coh += p2 * coherence(&e.indicators[j], &other.indicators[j2]);
                }
            }
            new_probs.push(e.probs[j] * (lambda * expected_coh).exp());
        }
        docs_types::prob::normalize_in_place(&mut new_probs);
        out[i].probs = new_probs;
    }
    out
}

/// The full polynomial correlated pipeline: coherence reranking followed by
/// Algorithm 1 on the reranked distributions.
pub fn domain_vector_reranked(entities: &[LinkedEntity], m: usize, lambda: f64) -> DomainVector {
    let reranked = rerank_by_coherence(entities, lambda);
    domain_vector(&reranked, m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dve::{domain_vector, domain_vector_enumeration};
    use docs_kb::{table2_example_kb, EntityLinker};
    use docs_types::prob;

    fn table2_entities() -> Vec<LinkedEntity> {
        let kb = table2_example_kb();
        let linker = EntityLinker::with_defaults(&kb);
        linker.link("Does Michael Jordan win more NBA championships than Kobe Bryant?")
    }

    #[test]
    fn coherence_is_jaccard() {
        let a = IndicatorVector::from_bits(&[1, 1, 0]);
        let b = IndicatorVector::from_bits(&[0, 1, 1]);
        assert!((coherence(&a, &b) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(coherence(&a, &a), 1.0);
        let empty = IndicatorVector::empty(3);
        assert_eq!(coherence(&empty, &empty), 0.0);
        assert_eq!(coherence(&a, &empty), 0.0);
    }

    #[test]
    fn lambda_zero_recovers_independent_model() {
        let entities = table2_entities();
        let independent = domain_vector_enumeration(&entities, 3, 1 << 20).unwrap();
        let correlated = domain_vector_correlated_exact(&entities, 3, 0.0, 1 << 20).unwrap();
        for k in 0..3 {
            assert!(
                (independent[k] - correlated[k]).abs() < 1e-12,
                "domain {k}: {} vs {}",
                independent[k],
                correlated[k]
            );
        }
    }

    #[test]
    fn lambda_zero_rerank_is_identity() {
        let entities = table2_entities();
        let reranked = rerank_by_coherence(&entities, 0.0);
        for (a, b) in entities.iter().zip(&reranked) {
            assert_eq!(a.probs, b.probs);
        }
    }

    /// Two entities, each torn 0.6/0.4 between a sports and a films concept.
    /// Coherence boosts the two *consistent* linkings, so the majority
    /// (sports/sports) reading gains mass: r_0 rises from 0.6 toward
    /// 0.36/0.52 ≈ 0.692 as λ grows.
    fn ambiguous_pair() -> Vec<LinkedEntity> {
        let sports = IndicatorVector::from_bits(&[1, 0]);
        let films = IndicatorVector::from_bits(&[0, 1]);
        let e = LinkedEntity::from_parts("e", &[(0.6, sports), (0.4, films)]);
        vec![e.clone(), e]
    }

    #[test]
    fn correlation_sharpens_consistent_readings() {
        let entities = ambiguous_pair();
        let independent = domain_vector(&entities, 2);
        assert!((independent[0] - 0.6).abs() < 1e-12);
        let correlated = domain_vector_correlated_exact(&entities, 2, 2.0, 1 << 20).unwrap();
        assert!(
            correlated[0] > independent[0] + 0.02,
            "sports mass should increase: {} vs {}",
            correlated[0],
            independent[0]
        );
        assert!(
            correlated[0] < 0.36 / 0.52 + 1e-9,
            "bounded by the λ→∞ limit"
        );
        assert!(prob::is_distribution(correlated.as_slice()));
    }

    #[test]
    fn reranking_moves_in_the_same_direction_as_exact() {
        let entities = ambiguous_pair();
        let independent = domain_vector(&entities, 2);
        let exact = domain_vector_correlated_exact(&entities, 2, 1.5, 1 << 20).unwrap();
        let reranked = domain_vector_reranked(&entities, 2, 1.5);
        assert!(exact[0] > independent[0]);
        assert!(reranked[0] > independent[0]);
    }

    #[test]
    fn context_boosts_the_basketball_michael_jordan() {
        // The paper's own disambiguation example: next to "NBA" and "Kobe
        // Bryant", the basketball-player reading of "Michael Jordan" (the
        // candidate related to both sports and films) should gain linking
        // probability over its 0.7 prior, and the actor reading should lose
        // mass.
        let entities = table2_entities();
        let mj = entities
            .iter()
            .position(|e| e.mention.contains("michael"))
            .expect("michael jordan mention detected");
        let reranked = rerank_by_coherence(&entities, 2.0);
        let basketball = entities[mj]
            .indicators
            .iter()
            .position(|h| h.count() == 2)
            .expect("basketball reading has two domains");
        let actor = entities[mj]
            .indicators
            .iter()
            .position(|h| h.count() == 1)
            .expect("actor reading has one domain");
        assert!(
            reranked[mj].probs[basketball] > entities[mj].probs[basketball] + 0.01,
            "basketball reading should gain: {} vs {}",
            reranked[mj].probs[basketball],
            entities[mj].probs[basketball]
        );
        assert!(reranked[mj].probs[actor] < entities[mj].probs[actor]);
    }

    #[test]
    fn gibbs_approximates_exact_on_table2() {
        let entities = table2_entities();
        let config = CorrelationConfig {
            lambda: 1.0,
            burn_in: 200,
            samples: 4000,
            seed: 7,
        };
        let exact = domain_vector_correlated_exact(&entities, 3, 1.0, 1 << 20).unwrap();
        let gibbs = domain_vector_correlated_gibbs(&entities, 3, &config);
        for k in 0..3 {
            assert!(
                (exact[k] - gibbs[k]).abs() < 0.03,
                "domain {k}: exact {} vs gibbs {}",
                exact[k],
                gibbs[k]
            );
        }
    }

    #[test]
    fn gibbs_lambda_zero_approximates_algorithm1() {
        let entities = table2_entities();
        let config = CorrelationConfig {
            lambda: 0.0,
            burn_in: 200,
            samples: 4000,
            seed: 11,
        };
        let alg1 = domain_vector(&entities, 3);
        let gibbs = domain_vector_correlated_gibbs(&entities, 3, &config);
        for k in 0..3 {
            assert!((alg1[k] - gibbs[k]).abs() < 0.03);
        }
    }

    #[test]
    fn exact_respects_linking_cap() {
        let es = docs_kb::generator::synthetic_entities(5, 10, 10, 1, 1);
        assert!(domain_vector_correlated_exact(&es, 5, 1.0, 1_000).is_none());
    }

    #[test]
    fn empty_entities_yield_uniform() {
        assert_eq!(
            domain_vector_correlated_exact(&[], 4, 1.0, 10)
                .unwrap()
                .as_slice(),
            &[0.25; 4]
        );
        let config = CorrelationConfig::default();
        assert_eq!(
            domain_vector_correlated_gibbs(&[], 4, &config).as_slice(),
            &[0.25; 4]
        );
    }

    #[test]
    fn exact_agreement_on_random_instances_at_lambda_zero() {
        for seed in 0..8 {
            let es = docs_kb::generator::synthetic_entities(6, 4, 3, 2, seed);
            let fast = domain_vector(&es, 6);
            let corr = domain_vector_correlated_exact(&es, 6, 0.0, 1 << 20).unwrap();
            for k in 0..6 {
                assert!(
                    (fast[k] - corr[k]).abs() < 1e-9,
                    "seed {seed} domain {k}: {} vs {}",
                    fast[k],
                    corr[k]
                );
            }
        }
    }

    #[test]
    fn correlated_vectors_are_distributions_on_random_instances() {
        for seed in 0..8 {
            let es = docs_kb::generator::synthetic_entities(6, 4, 3, 2, seed);
            for &lambda in &[0.0, 0.5, 2.0] {
                let r = domain_vector_correlated_exact(&es, 6, lambda, 1 << 20).unwrap();
                assert!(
                    prob::is_distribution(r.as_slice()),
                    "seed {seed} λ={lambda}"
                );
                let rr = domain_vector_reranked(&es, 6, lambda);
                assert!(prob::is_distribution(rr.as_slice()));
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_lambda_rejected() {
        let entities = table2_entities();
        let _ = domain_vector_correlated_exact(&entities, 3, -1.0, 10);
    }
}
