//! Multi-domain evaluation metrics — the paper's stated future work for the
//! Section 6.2 analysis.
//!
//! Figure 3 scores domain detection with single-label accuracy (the argmax
//! domain), but the paper's own "Analysis on Multiple Domains" observes that
//! real tasks ("Harlem Globetrotters whistle song": *Entertain* + *Sports*)
//! relate to several domains at once, and closes with: "it might be
//! interesting to develop metrics on evaluating how a method can compute a
//! task's multiple domains correctly."
//!
//! This module provides those metrics:
//!
//! * [`jensen_shannon`] — symmetric, bounded divergence between the
//!   estimated domain vector and a ground-truth domain mixture (KL, the
//!   paper's Section 5.2 tool, is unusable here because estimated vectors
//!   routinely contain zeros),
//! * [`top_j_recall`] — did the true domains surface among the `j` largest
//!   entries of `r^t`?
//! * [`mode_scores`] — precision/recall/F1 of the vector's *modes* (the
//!   peaks the paper's analysis picks out by hand) against the true domain
//!   set,
//! * [`MultiDomainReport`] — corpus-level aggregation used by the extended
//!   Figure 3 harness.

use docs_types::{prob, DomainVector};

/// Builds the ground-truth mixture for a task related to `domains`: uniform
/// mass over the true domains (the convention the paper's multi-domain
/// examples imply — both peaks "have high probabilities").
///
/// # Panics
/// Panics if `domains` is empty or any index is `≥ m`.
pub fn truth_mixture(m: usize, domains: &[usize]) -> DomainVector {
    assert!(
        !domains.is_empty(),
        "a task must have at least one true domain"
    );
    let mut w = vec![0.0; m];
    for &k in domains {
        assert!(k < m, "true domain {k} out of range for m={m}");
        w[k] = 1.0;
    }
    DomainVector::from_weights(&w).expect("one-hot mixture weights are valid")
}

/// Jensen–Shannon divergence between two distributions, in nats.
///
/// `JS(p, q) = ½ KL(p ‖ m) + ½ KL(q ‖ m)` with `m = ½(p + q)`; symmetric,
/// finite even when supports differ, and bounded by `ln 2`.
pub fn jensen_shannon(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distributions must have equal length");
    let mid: Vec<f64> = p.iter().zip(q).map(|(&a, &b)| 0.5 * (a + b)).collect();
    0.5 * prob::kl_divergence(p, &mid) + 0.5 * prob::kl_divergence(q, &mid)
}

/// Fraction of the true domains that appear among the `j` highest-mass
/// entries of the estimated vector (ties broken by lower index, matching
/// [`prob::argmax`]'s first-wins convention).
pub fn top_j_recall(estimated: &DomainVector, true_domains: &[usize], j: usize) -> f64 {
    assert!(!true_domains.is_empty(), "need at least one true domain");
    assert!(j >= 1, "top-j needs j >= 1");
    let mut order: Vec<usize> = (0..estimated.len()).collect();
    order.sort_by(|&a, &b| {
        estimated[b]
            .partial_cmp(&estimated[a])
            .expect("domain vectors contain no NaN")
            .then(a.cmp(&b))
    });
    let top = &order[..j.min(order.len())];
    let hit = true_domains.iter().filter(|k| top.contains(k)).count();
    hit as f64 / true_domains.len() as f64
}

/// Precision / recall / F1 of the estimated vector's modes against the true
/// domain set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModeScores {
    /// Fraction of detected modes that are true domains.
    pub precision: f64,
    /// Fraction of true domains detected as modes.
    pub recall: f64,
    /// Harmonic mean of precision and recall (0 when both are 0).
    pub f1: f64,
}

/// Scores the modes of `estimated` (entries `≥ threshold`, the paper's
/// "more than one mode (or peak)" criterion made precise) against the true
/// domain set.
///
/// An estimate with no modes at all scores zero precision and recall.
pub fn mode_scores(estimated: &DomainVector, true_domains: &[usize], threshold: f64) -> ModeScores {
    assert!(!true_domains.is_empty(), "need at least one true domain");
    let modes = estimated.modes(threshold);
    if modes.is_empty() {
        return ModeScores {
            precision: 0.0,
            recall: 0.0,
            f1: 0.0,
        };
    }
    let tp = modes.iter().filter(|k| true_domains.contains(k)).count() as f64;
    let precision = tp / modes.len() as f64;
    let recall = tp / true_domains.len() as f64;
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    ModeScores {
        precision,
        recall,
        f1,
    }
}

/// Corpus-level multi-domain evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiDomainReport {
    /// Number of tasks evaluated.
    pub tasks: usize,
    /// Mean Jensen–Shannon divergence to the truth mixtures (lower better).
    pub mean_js: f64,
    /// Mean top-2 recall of the true domains.
    pub mean_top2_recall: f64,
    /// Mean mode-F1 at the report's threshold.
    pub mean_mode_f1: f64,
    /// Threshold used for mode detection.
    pub mode_threshold: f64,
}

/// Evaluates a corpus of estimated domain vectors against per-task true
/// domain sets.
///
/// # Panics
/// Panics if the slices differ in length, are empty, or any truth set is
/// empty.
pub fn evaluate_corpus(
    estimated: &[DomainVector],
    true_domains: &[Vec<usize>],
    mode_threshold: f64,
) -> MultiDomainReport {
    assert_eq!(
        estimated.len(),
        true_domains.len(),
        "corpus length mismatch"
    );
    assert!(!estimated.is_empty(), "cannot evaluate an empty corpus");
    let n = estimated.len() as f64;
    let mut js = 0.0;
    let mut top2 = 0.0;
    let mut f1 = 0.0;
    for (r, truth) in estimated.iter().zip(true_domains) {
        let mixture = truth_mixture(r.len(), truth);
        js += jensen_shannon(r.as_slice(), mixture.as_slice());
        top2 += top_j_recall(r, truth, 2);
        f1 += mode_scores(r, truth, mode_threshold).f1;
    }
    MultiDomainReport {
        tasks: estimated.len(),
        mean_js: js / n,
        mean_top2_recall: top2 / n,
        mean_mode_f1: f1 / n,
        mode_threshold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_mixture_uniform_over_true_domains() {
        let t = truth_mixture(4, &[1, 3]);
        assert_eq!(t.as_slice(), &[0.0, 0.5, 0.0, 0.5]);
    }

    #[test]
    #[should_panic(expected = "at least one true domain")]
    fn truth_mixture_rejects_empty() {
        let _ = truth_mixture(4, &[]);
    }

    #[test]
    fn js_zero_iff_equal() {
        let p = [0.2, 0.3, 0.5];
        assert!(jensen_shannon(&p, &p).abs() < 1e-12);
        let q = [0.5, 0.3, 0.2];
        let js = jensen_shannon(&p, &q);
        assert!(js > 0.0);
        // Symmetry.
        assert!((js - jensen_shannon(&q, &p)).abs() < 1e-12);
    }

    #[test]
    fn js_bounded_by_ln2_on_disjoint_supports() {
        let p = [1.0, 0.0];
        let q = [0.0, 1.0];
        let js = jensen_shannon(&p, &q);
        assert!((js - std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn top_j_recall_counts_hits() {
        let r = DomainVector::new(vec![0.1, 0.5, 0.35, 0.05]).unwrap();
        assert_eq!(top_j_recall(&r, &[1, 2], 2), 1.0);
        assert_eq!(top_j_recall(&r, &[1, 3], 2), 0.5);
        assert_eq!(top_j_recall(&r, &[3], 1), 0.0);
        // j larger than m is clamped.
        assert_eq!(top_j_recall(&r, &[3], 10), 1.0);
    }

    #[test]
    fn mode_scores_exact_match() {
        let r = DomainVector::new(vec![0.05, 0.45, 0.45, 0.05]).unwrap();
        let s = mode_scores(&r, &[1, 2], 0.3);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 1.0);
        assert_eq!(s.f1, 1.0);
    }

    #[test]
    fn mode_scores_partial_and_empty() {
        let r = DomainVector::new(vec![0.7, 0.2, 0.1]).unwrap();
        // One mode (domain 0), truth {0, 2}: precision 1, recall 0.5.
        let s = mode_scores(&r, &[0, 2], 0.5);
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 0.5);
        assert!((s.f1 - 2.0 / 3.0).abs() < 1e-12);
        // Threshold too high: no modes, all-zero scores.
        let s = mode_scores(&r, &[0], 0.9);
        assert_eq!(
            s,
            ModeScores {
                precision: 0.0,
                recall: 0.0,
                f1: 0.0
            }
        );
    }

    #[test]
    fn corpus_aggregation_averages() {
        let perfect = truth_mixture(3, &[0]);
        let off = DomainVector::new(vec![0.0, 1.0, 0.0]).unwrap();
        let report = evaluate_corpus(&[perfect.clone(), off], &[vec![0], vec![0]], 0.3);
        assert_eq!(report.tasks, 2);
        // One perfect (JS 0), one disjoint (JS ln 2).
        assert!((report.mean_js - std::f64::consts::LN_2 / 2.0).abs() < 1e-12);
        assert!((report.mean_mode_f1 - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn corpus_length_mismatch_panics() {
        let r = DomainVector::uniform(3);
        let _ = evaluate_corpus(&[r], &[vec![0], vec![1]], 0.3);
    }
}
