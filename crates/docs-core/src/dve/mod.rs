//! Domain Vector Estimation (Section 3).
//!
//! A task's domain vector is the *expected normalized indicator vector* over
//! all possible entity→concept linkings (Eq. 1):
//!
//! ```text
//! r^t = Σ_{π ∈ Ω}  ( Σ_i h_{i,π_i} ) / ( Σ_k Σ_i h_{i,π_i,k} ) · Π_i p_{i,π_i}
//! ```
//!
//! `Ω` has `Π_i |p_i|` members, so computing Eq. 1 directly
//! ([`domain_vector_enumeration`]) is exponential. Algorithm 1
//! ([`domain_vector`]) observes that the normalized vector's `k`-th element
//! only depends on two bounded integers — the numerator `nm = Σ_i h_{i,π_i,k}
//! ≤ |E_t|` and the denominator `dm = Σ_k Σ_i h_{i,π_i,k} ≤ m·|E_t|` — and
//! aggregates linking probability mass per `(nm, dm)` pair with a dynamic
//! program, reducing the cost to `O(c · m² · |E_t|³)`.

pub mod correlated;
pub mod metrics;

pub use correlated::{
    domain_vector_correlated_exact, domain_vector_correlated_gibbs, domain_vector_reranked,
    rerank_by_coherence, CorrelationConfig,
};
pub use metrics::{evaluate_corpus, jensen_shannon, mode_scores, top_j_recall, MultiDomainReport};

use docs_kb::LinkedEntity;
use docs_types::DomainVector;
use std::collections::BTreeMap;

/// Pack a `(numerator, denominator)` pair into one `u64` hash-map key.
///
/// `nm ≤ |E_t|` and `dm ≤ m·|E_t|` both comfortably fit in 32 bits; packing
/// them avoids tuple hashing in the innermost loop (see the
/// `ablation_hashmap_key` bench for the measured difference).
#[inline]
fn pack(nm: u32, dm: u32) -> u64 {
    ((nm as u64) << 32) | dm as u64
}

#[inline]
fn unpack(key: u64) -> (u32, u32) {
    ((key >> 32) as u32, key as u32)
}

/// Computes a task's domain vector `r^t` with **Algorithm 1** — exact and
/// polynomial: `O(c · m² · |E_t|³)` where `c = max_i |p_i|`.
///
/// Tasks whose entities carry no domain signal at all (every linking has an
/// all-zero aggregated indicator) fall back to the uniform domain vector,
/// and so do tasks with no detected entities; both conventions keep
/// downstream inference well-defined.
///
/// ```
/// use docs_kb::{table2_example_kb, EntityLinker};
/// use docs_core::dve::domain_vector;
///
/// let kb = table2_example_kb();
/// let linker = EntityLinker::with_defaults(&kb);
/// let entities =
///     linker.link("Does Michael Jordan win more NBA championships than Kobe Bryant?");
/// let r = domain_vector(&entities, 3);
/// // The paper's Table 2 / Figure 2 result: r^t = [0, 0.78, 0.22].
/// assert!(r[0].abs() < 1e-9);
/// assert!((r[1] - 0.78).abs() < 0.005);
/// assert!((r[2] - 0.22).abs() < 0.005);
/// ```
pub fn domain_vector(entities: &[LinkedEntity], m: usize) -> DomainVector {
    if entities.is_empty() {
        return DomainVector::uniform(m);
    }
    // Line 1: pre-compute x_{i,j} = Σ_k h_{i,j,k} (a popcount per candidate).
    let x: Vec<Vec<u32>> = entities
        .iter()
        .map(|e| e.indicators.iter().map(|h| h.count()).collect())
        .collect();

    let mut r = vec![0.0; m];
    // BTreeMaps, not HashMaps: each DP layer *accumulates* linking mass
    // per (nm, dm) cell and float addition is not associative, so the
    // iteration order must be a function of the keys alone. A hash map's
    // per-instance random order would make every task's domain vector
    // differ at ULP level between runs — and through quality estimation
    // and OTA benefit ties, make the whole assignment stream
    // process-random. (The scenario harness pins byte-reproducibility.)
    let mut map: BTreeMap<u64, f64> = BTreeMap::new();
    let mut tmp: BTreeMap<u64, f64> = BTreeMap::new();

    // Lines 4-17: one dynamic program per domain k.
    for (k, rk) in r.iter_mut().enumerate() {
        map.clear();
        map.insert(pack(0, 0), 1.0);
        for (i, e) in entities.iter().enumerate() {
            tmp.clear();
            for (&key, &value) in &map {
                let (nm, dm) = unpack(key);
                for (j, &p) in e.probs.iter().enumerate() {
                    let h = e.indicators[j].get(k);
                    let new_key = pack(nm + h, dm + x[i][j]);
                    *tmp.entry(new_key).or_insert(0.0) += value * p;
                }
            }
            std::mem::swap(&mut map, &mut tmp);
        }
        // Lines 15-17: r_k = Σ (nm/dm) · mass, skipping dm = 0 linkings.
        for (&key, &mass) in &map {
            let (nm, dm) = unpack(key);
            if dm != 0 {
                *rk += nm as f64 / dm as f64 * mass;
            }
        }
    }

    // Linking mass with dm = 0 (no related concept anywhere) contributes to
    // no domain; renormalize so r^t stays a distribution. If *all* mass is
    // domain-free, fall back to uniform.
    DomainVector::from_weights(&r).expect("algorithm 1 produces non-negative weights")
}

/// Computes `r^t` by direct **enumeration** of Eq. 1 — exponential
/// `O(c^{|E_t|} · |E_t| · m)`, the baseline of Table 3.
///
/// Returns `None` when the linking space `|Ω| = Π_i |p_i|` exceeds
/// `max_linkings`, which is how the Table 3 harness reports "> 1 day"
/// configurations without actually burning a day.
pub fn domain_vector_enumeration(
    entities: &[LinkedEntity],
    m: usize,
    max_linkings: u128,
) -> Option<DomainVector> {
    if entities.is_empty() {
        return Some(DomainVector::uniform(m));
    }
    let mut omega: u128 = 1;
    for e in entities {
        omega = omega.checked_mul(e.num_candidates() as u128)?;
        if omega > max_linkings {
            return None;
        }
    }

    let mut r = vec![0.0; m];
    // Odometer over linkings π.
    let mut pi = vec![0usize; entities.len()];
    let mut agg = vec![0u32; m];
    loop {
        // Evaluate this linking.
        let mut prob = 1.0;
        agg.iter_mut().for_each(|a| *a = 0);
        for (i, e) in entities.iter().enumerate() {
            let j = pi[i];
            prob *= e.probs[j];
            let h = &e.indicators[j];
            for (k, slot) in agg.iter_mut().enumerate() {
                *slot += h.get(k);
            }
        }
        let denom: u32 = agg.iter().sum();
        if denom != 0 {
            let d = denom as f64;
            for (k, &a) in agg.iter().enumerate() {
                r[k] += a as f64 / d * prob;
            }
        }
        // Advance the odometer.
        let mut i = 0;
        loop {
            if i == entities.len() {
                return Some(
                    DomainVector::from_weights(&r)
                        .expect("enumeration produces non-negative weights"),
                );
            }
            pi[i] += 1;
            if pi[i] < entities[i].num_candidates() {
                break;
            }
            pi[i] = 0;
            i += 1;
        }
    }
}

/// Tuple-keyed variant of Algorithm 1, kept only for the
/// `ablation_hashmap_key` benchmark. Semantically identical to
/// [`domain_vector`].
#[doc(hidden)]
pub fn domain_vector_tuple_key(entities: &[LinkedEntity], m: usize) -> DomainVector {
    if entities.is_empty() {
        return DomainVector::uniform(m);
    }
    let x: Vec<Vec<u32>> = entities
        .iter()
        .map(|e| e.indicators.iter().map(|h| h.count()).collect())
        .collect();
    let mut r = vec![0.0; m];
    for (k, rk) in r.iter_mut().enumerate() {
        // Ordered for the same reason as `domain_vector`: the layers
        // accumulate float mass, so iteration order must be key-derived.
        let mut map: BTreeMap<(u32, u32), f64> = BTreeMap::new();
        map.insert((0, 0), 1.0);
        for (i, e) in entities.iter().enumerate() {
            let mut tmp: BTreeMap<(u32, u32), f64> = BTreeMap::new();
            for (&(nm, dm), &value) in &map {
                for (j, &p) in e.probs.iter().enumerate() {
                    let h = e.indicators[j].get(k);
                    *tmp.entry((nm + h, dm + x[i][j])).or_insert(0.0) += value * p;
                }
            }
            map = tmp;
        }
        for (&(nm, dm), &mass) in &map {
            if dm != 0 {
                *rk += nm as f64 / dm as f64 * mass;
            }
        }
    }
    DomainVector::from_weights(&r).expect("non-negative weights")
}

/// Convenience: link a task's text against a knowledge base and estimate its
/// domain vector in one call — the full DVE pipeline of Figure 1, step ①→②.
pub fn estimate_from_text(
    text: &str,
    linker: &docs_kb::EntityLinker<'_>,
    m: usize,
) -> DomainVector {
    let entities = linker.link(text);
    domain_vector(&entities, m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use docs_kb::{table2_example_kb, EntityLinker, IndicatorVector};
    use docs_types::prob;

    fn table2_entities() -> Vec<LinkedEntity> {
        let kb = table2_example_kb();
        let linker = EntityLinker::with_defaults(&kb);
        linker.link("Does Michael Jordan win more NBA championships than Kobe Bryant?")
    }

    /// The paper's running example (Table 2 + Figure 2): r^t = [0, 0.78, 0.22].
    #[test]
    fn table2_running_example() {
        let entities = table2_entities();
        let r = domain_vector(&entities, 3);
        assert!(r[0].abs() < 1e-12);
        assert!((r[1] - 0.78).abs() < 0.005, "r_2 = {}", r[1]);
        assert!((r[2] - 0.22).abs() < 0.005, "r_3 = {}", r[2]);
        assert!(prob::is_distribution(r.as_slice()));
    }

    /// Figure 2 traces the DP for r_2; check the exact value 0.78.
    #[test]
    fn figure2_r2_value() {
        let entities = table2_entities();
        let r = domain_vector(&entities, 3);
        // By hand (Figure 2): 3/4·0.56 + 2/3·0.22 + 2/2·0.16 + 1/1·0.04 + 1/2·0.02
        let expected = 0.75 * 0.56 + 2.0 / 3.0 * 0.22 + 0.16 + 0.04 + 0.5 * 0.02;
        assert!((r[1] - expected).abs() < 1e-12);
    }

    #[test]
    fn algorithm1_matches_enumeration_on_table2() {
        let entities = table2_entities();
        let fast = domain_vector(&entities, 3);
        let slow = domain_vector_enumeration(&entities, 3, 1 << 20).unwrap();
        for k in 0..3 {
            assert!((fast[k] - slow[k]).abs() < 1e-12);
        }
    }

    #[test]
    fn tuple_key_variant_agrees() {
        let entities = table2_entities();
        let a = domain_vector(&entities, 3);
        let b = domain_vector_tuple_key(&entities, 3);
        for k in 0..3 {
            assert!((a[k] - b[k]).abs() < 1e-12);
        }
    }

    #[test]
    fn no_entities_yields_uniform() {
        let r = domain_vector(&[], 4);
        assert_eq!(r.as_slice(), &[0.25; 4]);
        let r = domain_vector_enumeration(&[], 4, 10).unwrap();
        assert_eq!(r.as_slice(), &[0.25; 4]);
    }

    #[test]
    fn all_empty_indicators_yield_uniform() {
        let e = LinkedEntity::from_parts(
            "nothing",
            &[
                (0.6, IndicatorVector::empty(3)),
                (0.4, IndicatorVector::empty(3)),
            ],
        );
        let r = domain_vector(&[e], 3);
        assert_eq!(r.as_slice(), &[1.0 / 3.0; 3]);
    }

    #[test]
    fn partial_empty_mass_renormalizes() {
        // One candidate related to domain 0 (p=0.5), one related to nothing
        // (p=0.5). Conditioned on relatedness, the task is fully domain 0.
        let e = LinkedEntity::from_parts(
            "e",
            &[
                (0.5, IndicatorVector::from_bits(&[1, 0])),
                (0.5, IndicatorVector::empty(2)),
            ],
        );
        let r = domain_vector(&[e], 2);
        assert!((r[0] - 1.0).abs() < 1e-12);
        assert!(r[1].abs() < 1e-12);
    }

    #[test]
    fn single_entity_single_concept() {
        let e = LinkedEntity::from_parts("kobe", &[(1.0, IndicatorVector::from_bits(&[0, 1, 0]))]);
        let r = domain_vector(&[e], 3);
        assert_eq!(r.as_slice(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn enumeration_respects_cap() {
        let es = docs_kb::generator::synthetic_entities(5, 10, 10, 1, 1);
        // 10^10 linkings > cap.
        assert!(domain_vector_enumeration(&es, 5, 1_000_000).is_none());
    }

    #[test]
    fn agreement_on_random_instances() {
        for seed in 0..10 {
            let es = docs_kb::generator::synthetic_entities(6, 4, 3, 2, seed);
            let fast = domain_vector(&es, 6);
            let slow = domain_vector_enumeration(&es, 6, 1 << 20).unwrap();
            for k in 0..6 {
                assert!(
                    (fast[k] - slow[k]).abs() < 1e-9,
                    "seed {seed} domain {k}: {} vs {}",
                    fast[k],
                    slow[k]
                );
            }
        }
    }

    #[test]
    fn estimate_from_text_end_to_end() {
        let kb = table2_example_kb();
        let linker = EntityLinker::with_defaults(&kb);
        let r = estimate_from_text("Is Kobe Bryant tall?", &linker, 3);
        // Kobe Bryant is sports-only.
        assert_eq!(r.as_slice(), &[0.0, 1.0, 0.0]);
    }
}
