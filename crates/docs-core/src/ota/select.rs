//! Top-`k` selection of `(benefit, task)` pairs.
//!
//! The paper selects the top `k` benefits with a linear-time selection
//! algorithm (the PICK algorithm of Blum et al. [7]); we use the standard
//! library's introselect (`select_nth_unstable_by`), which has the same
//! expected-linear behaviour. A full-sort variant exists for the
//! `ablation_topk` benchmark.
//!
//! For the sharded benefit scan, [`merge_top_k`] combines per-shard top-`k`
//! lists into the global top-`k` with a `k`-way merge: since every shard
//! contributes its own best `k` candidates, the union provably contains the
//! global winners, and the merge reproduces the single-scan selection
//! bit-for-bit (same ordering, same tie-breaks).

use docs_types::{Error, Result, TaskId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

fn by_benefit_desc(a: &(f64, TaskId), b: &(f64, TaskId)) -> Ordering {
    // Benefits are finite by construction; tie-break on TaskId for
    // determinism across selection strategies.
    b.0.partial_cmp(&a.0)
        .expect("benefits are finite")
        .then_with(|| a.1.cmp(&b.1))
}

/// Selects the `k` highest-benefit tasks in expected O(n) time, returned in
/// descending benefit order (ties broken toward lower task ids).
pub fn top_k_linear(candidates: Vec<(f64, TaskId)>, k: usize) -> Vec<TaskId> {
    top_k_linear_pairs(candidates, k)
        .into_iter()
        .map(|(_, t)| t)
        .collect()
}

/// [`top_k_linear`] keeping the benefits — the per-shard building block of
/// the sharded scan, whose lists feed [`merge_top_k`].
pub fn top_k_linear_pairs(mut candidates: Vec<(f64, TaskId)>, k: usize) -> Vec<(f64, TaskId)> {
    if candidates.is_empty() || k == 0 {
        return Vec::new();
    }
    if candidates.len() > k {
        candidates.select_nth_unstable_by(k - 1, by_benefit_desc);
        candidates.truncate(k);
    }
    candidates.sort_unstable_by(by_benefit_desc);
    candidates
}

/// Full-sort top-`k` — O(n log n), the ablation baseline.
pub fn top_k_by_sort(mut candidates: Vec<(f64, TaskId)>, k: usize) -> Vec<TaskId> {
    candidates.sort_unstable_by(by_benefit_desc);
    candidates.truncate(k);
    candidates.into_iter().map(|(_, t)| t).collect()
}

/// Heap entry for the k-way merge: max-heap on benefit, ties toward the
/// lower task id (mirroring [`by_benefit_desc`]).
struct MergeHead {
    benefit: f64,
    task: TaskId,
    shard: usize,
    pos: usize,
}

impl PartialEq for MergeHead {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for MergeHead {}

impl PartialOrd for MergeHead {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for MergeHead {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap pops the maximum, so "greater" must mean "selected
        // first": higher benefit, then lower task id.
        by_benefit_desc(&(other.benefit, other.task), &(self.benefit, self.task))
    }
}

/// [`merge_top_k`] with its documented precondition *enforced* instead of
/// assumed: `shard_candidates[s]` is the number of candidates shard `s` had
/// available, so its list must contribute `min(k, shard_candidates[s])`
/// entries, sorted by descending benefit with ties toward lower task ids.
///
/// An under-filled list would make the merge silently diverge from the flat
/// scan (a shard's missing candidate can be a global winner); this variant
/// turns that silent divergence into a loud [`Error::Storage`].
pub fn merge_top_k_checked(
    per_shard: &[Vec<(f64, TaskId)>],
    shard_candidates: &[usize],
    k: usize,
) -> Result<Vec<TaskId>> {
    if per_shard.len() != shard_candidates.len() {
        return Err(Error::Storage(format!(
            "merge_top_k: {} shard lists but {} candidate counts",
            per_shard.len(),
            shard_candidates.len()
        )));
    }
    for (shard, (list, &available)) in per_shard.iter().zip(shard_candidates).enumerate() {
        let required = k.min(available);
        if list.len() < required {
            return Err(Error::Storage(format!(
                "merge_top_k precondition violated: shard {shard} contributed {} of \
                 min(k = {k}, {available} available) = {required} candidates — the \
                 merged top-{k} would silently diverge from the flat scan",
                list.len()
            )));
        }
        if !list
            .windows(2)
            .all(|w| by_benefit_desc(&w[0], &w[1]) != Ordering::Greater)
        {
            return Err(Error::Storage(format!(
                "merge_top_k precondition violated: shard {shard}'s list is not sorted \
                 by descending benefit with ties toward lower task ids"
            )));
        }
    }
    Ok(merge_top_k(per_shard, k))
}

/// Merges per-shard descending top-`k` lists into the global top-`k`.
///
/// Each `per_shard[s]` must be sorted by descending benefit with ties broken
/// toward lower task ids — exactly what [`top_k_linear`] and
/// [`top_k_by_sort`] return. The output equals
/// `top_k_linear(concat(per_shard), k)` as long as every shard contributed
/// at least `min(k, shard_len)` candidates, at O(k log S) merge cost.
pub fn merge_top_k(per_shard: &[Vec<(f64, TaskId)>], k: usize) -> Vec<TaskId> {
    if k == 0 {
        return Vec::new();
    }
    debug_assert!(per_shard.iter().all(|list| {
        list.windows(2)
            .all(|w| by_benefit_desc(&w[0], &w[1]) != Ordering::Greater)
    }));
    let mut heap: BinaryHeap<MergeHead> = per_shard
        .iter()
        .enumerate()
        .filter_map(|(shard, list)| {
            list.first().map(|&(benefit, task)| MergeHead {
                benefit,
                task,
                shard,
                pos: 0,
            })
        })
        .collect();
    let mut out = Vec::with_capacity(k.min(per_shard.iter().map(Vec::len).sum()));
    while out.len() < k {
        let Some(head) = heap.pop() else { break };
        out.push(head.task);
        if let Some(&(benefit, task)) = per_shard[head.shard].get(head.pos + 1) {
            heap.push(MergeHead {
                benefit,
                task,
                shard: head.shard,
                pos: head.pos + 1,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(pairs: &[(f64, u32)]) -> Vec<(f64, TaskId)> {
        pairs.iter().map(|&(b, t)| (b, TaskId(t))).collect()
    }

    #[test]
    fn selects_highest_benefits() {
        let c = cand(&[(0.1, 0), (0.9, 1), (0.5, 2), (0.7, 3)]);
        assert_eq!(top_k_linear(c, 2), vec![TaskId(1), TaskId(3)]);
    }

    #[test]
    fn k_larger_than_n_returns_all_sorted() {
        let c = cand(&[(0.2, 0), (0.8, 1)]);
        assert_eq!(top_k_linear(c, 10), vec![TaskId(1), TaskId(0)]);
    }

    #[test]
    fn empty_and_zero_k() {
        assert!(top_k_linear(vec![], 3).is_empty());
        assert!(top_k_linear(cand(&[(1.0, 0)]), 0).is_empty());
    }

    #[test]
    fn ties_break_by_task_id() {
        let c = cand(&[(0.5, 3), (0.5, 1), (0.5, 2)]);
        assert_eq!(top_k_linear(c, 2), vec![TaskId(1), TaskId(2)]);
    }

    #[test]
    fn merge_top_k_equals_global_selection() {
        // Deterministic pseudo-random benefits partitioned across 4 shards
        // by task-id hash; the merged per-shard top-k must equal the
        // single-scan top-k over the union, for every k.
        let mut x: u64 = 0xABCDE;
        let mut all = Vec::new();
        for t in 0..200u32 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let b = (x >> 11) as f64 / (1u64 << 53) as f64;
            all.push((b, TaskId(t)));
        }
        for k in [1, 3, 17, 199, 250] {
            let mut shards: Vec<Vec<(f64, TaskId)>> = vec![Vec::new(); 4];
            for &(b, t) in &all {
                shards[(t.0 as usize * 2654435761) % 4].push((b, t));
            }
            let per_shard: Vec<Vec<(f64, TaskId)>> = shards
                .into_iter()
                .map(|list| {
                    let ids = top_k_linear(list.clone(), k);
                    // Rebuild (benefit, id) pairs in selection order.
                    ids.iter()
                        .map(|id| *list.iter().find(|(_, t)| t == id).unwrap())
                        .collect()
                })
                .collect();
            assert_eq!(
                merge_top_k(&per_shard, k),
                top_k_linear(all.clone(), k),
                "k = {k}"
            );
        }
    }

    #[test]
    fn merge_top_k_handles_ties_empty_shards_and_zero_k() {
        let shards = vec![
            cand(&[(0.5, 3), (0.5, 7)]),
            vec![],
            cand(&[(0.5, 1), (0.2, 2)]),
        ];
        assert_eq!(
            merge_top_k(&shards, 3),
            vec![TaskId(1), TaskId(3), TaskId(7)]
        );
        assert!(merge_top_k(&shards, 0).is_empty());
        assert!(merge_top_k(&[], 5).is_empty());
        // Asking for more than exists returns everything in order.
        assert_eq!(merge_top_k(&shards, 10).len(), 4);
    }

    #[test]
    fn checked_merge_rejects_under_filled_and_unsorted_shard_lists() {
        let shards = vec![cand(&[(0.9, 0), (0.4, 2)]), cand(&[(0.8, 1)])];
        // Well-formed: shard 0 had 3 candidates but k = 2 only requires 2;
        // shard 1 had exactly 1.
        let ok = merge_top_k_checked(&shards, &[3, 1], 2).unwrap();
        assert_eq!(ok, merge_top_k(&shards, 2));
        assert_eq!(ok, vec![TaskId(0), TaskId(1)]);
        // Under-filled: shard 1 had 4 candidates available but contributed
        // only 1 of the min(k, 4) = 2 required — its second-best candidate
        // could have been a global winner.
        let err = merge_top_k_checked(&shards, &[3, 4], 2).unwrap_err();
        assert!(err.to_string().contains("precondition"), "{err}");
        // Count/list arity mismatch.
        assert!(merge_top_k_checked(&shards, &[3], 2).is_err());
        // Unsorted shard list.
        let unsorted = vec![cand(&[(0.1, 0), (0.9, 1)])];
        let err = merge_top_k_checked(&unsorted, &[2], 2).unwrap_err();
        assert!(err.to_string().contains("sorted"), "{err}");
    }

    #[test]
    fn linear_matches_sort_on_random_input() {
        // Deterministic pseudo-random benefits.
        let mut x: u64 = 0x12345;
        let mut c = Vec::new();
        for t in 0..200u32 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let b = (x >> 11) as f64 / (1u64 << 53) as f64;
            c.push((b, TaskId(t)));
        }
        for k in [1, 5, 50, 199, 200] {
            assert_eq!(
                top_k_linear(c.clone(), k),
                top_k_by_sort(c.clone(), k),
                "k = {k}"
            );
        }
    }
}
