//! Top-`k` selection of `(benefit, task)` pairs.
//!
//! The paper selects the top `k` benefits with a linear-time selection
//! algorithm (the PICK algorithm of Blum et al. [7]); we use the standard
//! library's introselect (`select_nth_unstable_by`), which has the same
//! expected-linear behaviour. A full-sort variant exists for the
//! `ablation_topk` benchmark.

use docs_types::TaskId;
use std::cmp::Ordering;

fn by_benefit_desc(a: &(f64, TaskId), b: &(f64, TaskId)) -> Ordering {
    // Benefits are finite by construction; tie-break on TaskId for
    // determinism across selection strategies.
    b.0.partial_cmp(&a.0)
        .expect("benefits are finite")
        .then_with(|| a.1.cmp(&b.1))
}

/// Selects the `k` highest-benefit tasks in expected O(n) time, returned in
/// descending benefit order (ties broken toward lower task ids).
pub fn top_k_linear(mut candidates: Vec<(f64, TaskId)>, k: usize) -> Vec<TaskId> {
    if candidates.is_empty() || k == 0 {
        return Vec::new();
    }
    if candidates.len() > k {
        candidates.select_nth_unstable_by(k - 1, by_benefit_desc);
        candidates.truncate(k);
    }
    candidates.sort_unstable_by(by_benefit_desc);
    candidates.into_iter().map(|(_, t)| t).collect()
}

/// Full-sort top-`k` — O(n log n), the ablation baseline.
pub fn top_k_by_sort(mut candidates: Vec<(f64, TaskId)>, k: usize) -> Vec<TaskId> {
    candidates.sort_unstable_by(by_benefit_desc);
    candidates.truncate(k);
    candidates.into_iter().map(|(_, t)| t).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(pairs: &[(f64, u32)]) -> Vec<(f64, TaskId)> {
        pairs.iter().map(|&(b, t)| (b, TaskId(t))).collect()
    }

    #[test]
    fn selects_highest_benefits() {
        let c = cand(&[(0.1, 0), (0.9, 1), (0.5, 2), (0.7, 3)]);
        assert_eq!(top_k_linear(c, 2), vec![TaskId(1), TaskId(3)]);
    }

    #[test]
    fn k_larger_than_n_returns_all_sorted() {
        let c = cand(&[(0.2, 0), (0.8, 1)]);
        assert_eq!(top_k_linear(c, 10), vec![TaskId(1), TaskId(0)]);
    }

    #[test]
    fn empty_and_zero_k() {
        assert!(top_k_linear(vec![], 3).is_empty());
        assert!(top_k_linear(cand(&[(1.0, 0)]), 0).is_empty());
    }

    #[test]
    fn ties_break_by_task_id() {
        let c = cand(&[(0.5, 3), (0.5, 1), (0.5, 2)]);
        assert_eq!(top_k_linear(c, 2), vec![TaskId(1), TaskId(2)]);
    }

    #[test]
    fn linear_matches_sort_on_random_input() {
        // Deterministic pseudo-random benefits.
        let mut x: u64 = 0x12345;
        let mut c = Vec::new();
        for t in 0..200u32 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let b = (x >> 11) as f64 / (1u64 << 53) as f64;
            c.push((b, TaskId(t)));
        }
        for k in [1, 5, 50, 199, 200] {
            assert_eq!(
                top_k_linear(c.clone(), k),
                top_k_by_sort(c.clone(), k),
                "k = {k}"
            );
        }
    }
}
