//! Budget-aware campaign planning — an extension of Section 5.
//!
//! The paper's deployments spend a *uniform* budget: every task collects
//! exactly 10 answers (Section 6.1), and it explicitly criticizes iCrowd for
//! hard-wiring that uniformity — "it restricts that each task should be
//! answered with the same times, which does not consider that the
//! assignments for the easy tasks can be saved for hard tasks." OTA's
//! benefit function already *ranks* tasks adaptively, but the overall
//! campaign budget (`10 × n` answers) is still fixed up front.
//!
//! [`BudgetPlanner`] closes that loop: given a total answer budget `B` and
//! the current task states, it plans how many *additional* answers each task
//! should receive by greedily spending marginal answers where the expected
//! entropy reduction is largest — a submodular-style greedy allocation over
//! the same benefit function Definition 5 uses, evaluated against a
//! reference worker quality (the population's expected quality, or a
//! specific worker's).
//!
//! The planner is advisory: the assigner keeps making per-worker decisions
//! online, but [`Plan::cap_for`] gives each task an individualized answer
//! cap replacing the flat `max_answers_per_task`, and
//! [`Plan::spent`]/[`Plan::total`] make the spend auditable the way the
//! paper's cost accounting ($0.1 per HIT of 20 tasks) is.

use crate::ota::benefit::expected_posterior_entropy;
use crate::ti::TaskState;
use docs_types::{prob, DomainVector, TaskId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A planned per-task answer allocation.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Additional answers allotted per task, indexed like the input slices.
    pub extra_answers: Vec<usize>,
    /// Answers already collected per task when the plan was made.
    pub already_collected: Vec<usize>,
}

impl Plan {
    /// The per-task answer cap this plan implies: answers already collected
    /// plus the planned extras.
    pub fn cap_for(&self, task: TaskId) -> usize {
        let i = task.index();
        self.already_collected[i] + self.extra_answers[i]
    }

    /// Total additional answers the plan spends.
    pub fn spent(&self) -> usize {
        self.extra_answers.iter().sum()
    }

    /// Total answers (collected + planned) across the campaign.
    pub fn total(&self) -> usize {
        self.spent() + self.already_collected.iter().sum::<usize>()
    }

    /// Dollar cost of the planned extras under the paper's AMT pricing:
    /// `$0.1` per HIT of `k` tasks, i.e. `$0.1/k` per answer.
    pub fn dollar_cost(&self, k_per_hit: usize) -> f64 {
        assert!(k_per_hit >= 1, "a HIT contains at least one task");
        self.spent() as f64 * 0.1 / k_per_hit as f64
    }
}

/// Greedy marginal-benefit budget planner.
#[derive(Debug, Clone, Copy)]
pub struct BudgetPlanner {
    /// Total additional answers to allocate.
    pub budget: usize,
    /// Per-task ceiling on additional answers (keeps the greedy from
    /// dumping the whole budget on one pathological task); the paper's
    /// protocol corresponds to `10 − already_collected`.
    pub per_task_cap: usize,
}

/// One heap entry: the marginal benefit of giving task `idx` its
/// `(given+1)`-th additional answer.
struct Candidate {
    marginal: f64,
    idx: usize,
    given: usize,
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.marginal == other.marginal
    }
}
impl Eq for Candidate {}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        self.marginal
            .partial_cmp(&other.marginal)
            .expect("benefits are finite")
    }
}

impl BudgetPlanner {
    /// Creates a planner.
    pub fn new(budget: usize, per_task_cap: usize) -> Self {
        BudgetPlanner {
            budget,
            per_task_cap,
        }
    }

    /// Plans the allocation.
    ///
    /// * `states` / `domain_vectors` — current per-task inference state,
    /// * `collected` — answers already collected per task,
    /// * `reference_quality` — the quality vector used to evaluate marginal
    ///   benefits (typically the population mean; using a specific worker's
    ///   quality yields a worker-conditional plan).
    ///
    /// Marginal benefits are evaluated on *simulated* state trajectories:
    /// the benefit of the second extra answer for a task is computed on the
    /// state expected after the first (the most likely answer applied), so
    /// diminishing returns are priced in rather than assumed.
    pub fn plan(
        &self,
        states: &[TaskState],
        domain_vectors: &[DomainVector],
        collected: &[usize],
        reference_quality: &[f64],
    ) -> Plan {
        assert_eq!(states.len(), domain_vectors.len(), "state/vector mismatch");
        assert_eq!(states.len(), collected.len(), "state/collected mismatch");
        let n = states.len();
        let mut extra = vec![0usize; n];
        if n == 0 || self.budget == 0 || self.per_task_cap == 0 {
            return Plan {
                extra_answers: extra,
                already_collected: collected.to_vec(),
            };
        }

        // Simulated states evolve as answers are (hypothetically) granted.
        let mut sim: Vec<TaskState> = states.to_vec();
        let mut heap: BinaryHeap<Candidate> = (0..n)
            .map(|i| Candidate {
                marginal: marginal_benefit(&sim[i], &domain_vectors[i], reference_quality),
                idx: i,
                given: 0,
            })
            .collect();

        let mut remaining = self.budget;
        while remaining > 0 {
            let Some(top) = heap.pop() else { break };
            if top.given != extra[top.idx] {
                // Stale entry (the task advanced since this was pushed);
                // re-price it at the current trajectory point.
                heap.push(Candidate {
                    marginal: marginal_benefit(
                        &sim[top.idx],
                        &domain_vectors[top.idx],
                        reference_quality,
                    ),
                    idx: top.idx,
                    given: extra[top.idx],
                });
                continue;
            }
            if top.marginal <= 0.0 {
                // Nothing left with positive expected benefit: stop
                // spending; the remaining budget is genuinely saved.
                break;
            }
            // Grant the answer: advance the simulated state with the most
            // likely answer from the reference worker.
            let r = &domain_vectors[top.idx];
            let predicted = prob::argmax(&crate::ota::answer_probabilities(
                &sim[top.idx],
                r,
                reference_quality,
            ));
            sim[top.idx].apply_answer(r, reference_quality, predicted);
            extra[top.idx] += 1;
            remaining -= 1;
            if extra[top.idx] < self.per_task_cap {
                heap.push(Candidate {
                    marginal: marginal_benefit(&sim[top.idx], r, reference_quality),
                    idx: top.idx,
                    given: extra[top.idx],
                });
            }
        }

        Plan {
            extra_answers: extra,
            already_collected: collected.to_vec(),
        }
    }
}

/// Marginal benefit of one more answer on the (simulated) current state:
/// Definition 5 evaluated at the reference quality.
fn marginal_benefit(state: &TaskState, r: &DomainVector, quality: &[f64]) -> f64 {
    prob::entropy(state.s()) - expected_posterior_entropy(state, r, quality)
}

#[cfg(test)]
mod tests {
    use super::*;
    use docs_types::DomainVector;

    fn confident_state(m: usize) -> TaskState {
        let r = DomainVector::one_hot(m, 0);
        let mut st = TaskState::new(m, 2);
        for _ in 0..6 {
            st.apply_answer(&r, &vec![0.9; m], 0);
        }
        st
    }

    #[test]
    fn budget_flows_to_uncertain_tasks() {
        let m = 2;
        let states = vec![
            confident_state(m),
            TaskState::new(m, 2),
            TaskState::new(m, 2),
        ];
        let rs = vec![
            DomainVector::one_hot(m, 0),
            DomainVector::one_hot(m, 0),
            DomainVector::one_hot(m, 1),
        ];
        let collected = vec![6, 0, 0];
        let planner = BudgetPlanner::new(8, 10);
        let plan = planner.plan(&states, &rs, &collected, &[0.85, 0.85]);
        assert_eq!(plan.spent(), 8);
        // The confident task gets (almost) nothing; the fresh ones split.
        assert!(plan.extra_answers[0] <= 1, "plan: {:?}", plan.extra_answers);
        assert!(plan.extra_answers[1] >= 3);
        assert!(plan.extra_answers[2] >= 3);
    }

    #[test]
    fn per_task_cap_is_respected() {
        let states = vec![TaskState::new(1, 2), TaskState::new(1, 2)];
        let rs = vec![DomainVector::one_hot(1, 0), DomainVector::one_hot(1, 0)];
        let planner = BudgetPlanner::new(100, 5);
        let plan = planner.plan(&states, &rs, &[0, 0], &[0.8]);
        assert!(plan.extra_answers.iter().all(|&e| e <= 5));
        // Budget beyond the caps is not force-spent.
        assert!(plan.spent() <= 10);
    }

    #[test]
    fn zero_budget_plans_nothing() {
        let states = vec![TaskState::new(1, 2)];
        let rs = vec![DomainVector::one_hot(1, 0)];
        let plan = BudgetPlanner::new(0, 10).plan(&states, &rs, &[3], &[0.8]);
        assert_eq!(plan.spent(), 0);
        assert_eq!(plan.cap_for(docs_types::TaskId(0)), 3);
    }

    #[test]
    fn empty_task_set_plans_nothing() {
        let plan = BudgetPlanner::new(10, 10).plan(&[], &[], &[], &[0.8]);
        assert_eq!(plan.spent(), 0);
        assert_eq!(plan.total(), 0);
    }

    #[test]
    fn diminishing_returns_spread_the_budget() {
        // Two identical fresh tasks: the greedy must alternate rather than
        // dump everything on one, because each granted answer lowers the
        // task's remaining marginal benefit.
        let states = vec![TaskState::new(1, 2), TaskState::new(1, 2)];
        let rs = vec![DomainVector::one_hot(1, 0), DomainVector::one_hot(1, 0)];
        let plan = BudgetPlanner::new(6, 10).plan(&states, &rs, &[0, 0], &[0.8]);
        assert_eq!(plan.spent(), 6);
        let diff = plan.extra_answers[0].abs_diff(plan.extra_answers[1]);
        assert!(
            diff <= 1,
            "allocation should be near-even: {:?}",
            plan.extra_answers
        );
    }

    #[test]
    fn plan_accounting_matches_paper_pricing() {
        let states = vec![TaskState::new(1, 2)];
        let rs = vec![DomainVector::one_hot(1, 0)];
        let plan = BudgetPlanner::new(4, 10).plan(&states, &rs, &[6], &[0.8]);
        assert_eq!(plan.total(), plan.spent() + 6);
        // $0.1 per 20-task HIT → $0.005 per answer.
        let cost = plan.dollar_cost(20);
        assert!((cost - plan.spent() as f64 * 0.005).abs() < 1e-12);
    }

    #[test]
    fn cap_for_combines_collected_and_extra() {
        let states = vec![TaskState::new(1, 2), TaskState::new(1, 2)];
        let rs = vec![DomainVector::one_hot(1, 0), DomainVector::one_hot(1, 0)];
        let plan = BudgetPlanner::new(2, 1).plan(&states, &rs, &[4, 7], &[0.8]);
        assert_eq!(
            plan.cap_for(docs_types::TaskId(0)),
            4 + plan.extra_answers[0]
        );
        assert_eq!(
            plan.cap_for(docs_types::TaskId(1)),
            7 + plan.extra_answers[1]
        );
    }
}
