//! Online Task Assignment (Section 5.1).
//!
//! When worker `w` requests tasks, DOCS estimates for every unanswered task
//! the *benefit* of assigning it — the expected reduction in the entropy of
//! the task's probabilistic truth if `w` answers (Definition 5) — and
//! assigns the `k` tasks with the highest benefits. Theorem 4 shows the
//! benefit of a `k`-task set is the sum of individual benefits, so the
//! exponential set-selection collapses to a linear top-`k` scan.

mod benefit;
pub mod budget;
mod index;
mod select;

pub use benefit::{answer_probabilities, benefit, expected_posterior_entropy};
pub use budget::{BudgetPlanner, Plan};
pub use index::BenefitIndex;
pub use select::{
    merge_top_k, merge_top_k_checked, top_k_by_sort, top_k_linear, top_k_linear_pairs,
};

use crate::ti::{ShardedTiState, TaskState};
use docs_types::{Task, TaskId};

/// Below this many tasks *per shard* the sharded scan stays on the calling
/// thread: spawning scoped threads costs more than scanning that few
/// candidates, and tiny per-thread slices oversubscribe the service's own
/// shard pool.
const PARALLEL_SCAN_MIN_TASKS_PER_SHARD: usize = 1024;

/// Configuration of the assigner.
#[derive(Debug, Clone, Copy)]
pub struct AssignerConfig {
    /// Number of tasks batched per assignment (one HIT); the paper uses
    /// `k = 20` on AMT and `k = 3` per method in the parallel comparison.
    pub k: usize,
    /// Optional cap on answers per task: tasks that already collected this
    /// many answers are not assigned (lets the platform enforce the
    /// "10 answers per task" collection budget).
    pub max_answers_per_task: Option<usize>,
    /// Use the linear quickselect (`true`, the paper's PICK-style selection)
    /// or a full sort (`false`, kept for the `ablation_topk` bench).
    pub linear_select: bool,
}

impl Default for AssignerConfig {
    fn default() -> Self {
        AssignerConfig {
            k: 20,
            max_answers_per_task: None,
            linear_select: true,
        }
    }
}

/// The DOCS online task assigner.
#[derive(Debug, Clone, Default)]
pub struct Assigner {
    config: AssignerConfig,
}

impl Assigner {
    /// Creates an assigner.
    pub fn new(config: AssignerConfig) -> Self {
        assert!(config.k >= 1, "assignments need k >= 1");
        Assigner { config }
    }

    /// Selects up to `k` tasks for the coming worker.
    ///
    /// * `quality` — the worker's quality vector `q^w` (length `m`),
    /// * `tasks` / `states` — the published tasks and their current
    ///   inference state,
    /// * `answered` — predicate: has this worker already answered the task?
    ///   (implements the `T − T(w)` restriction),
    /// * `answer_count` — current `|V(i)|` per task, for the budget cap.
    ///
    /// Returns the chosen task ids, highest benefit first.
    pub fn assign(
        &self,
        quality: &[f64],
        tasks: &[Task],
        states: &[TaskState],
        mut answered: impl FnMut(TaskId) -> bool,
        mut answer_count: impl FnMut(TaskId) -> usize,
    ) -> Vec<TaskId> {
        debug_assert_eq!(tasks.len(), states.len());
        let candidates = self.scan_candidates(
            quality,
            tasks,
            states,
            0..tasks.len(),
            &mut answered,
            &mut answer_count,
        );
        if self.config.linear_select {
            top_k_linear(candidates, self.config.k)
        } else {
            top_k_by_sort(candidates, self.config.k)
        }
    }

    /// Filters and scores one candidate task: `None` when the task is
    /// excluded (already answered, answer cap reached), otherwise its
    /// benefit for the requesting worker — the one shared body of the flat
    /// scan, every shard of the sharded scan, and the indexed
    /// pop-and-revalidate, so the three paths cannot diverge.
    fn score_task(
        &self,
        quality: &[f64],
        tasks: &[Task],
        states: &[TaskState],
        i: usize,
        answered: &mut impl FnMut(TaskId) -> bool,
        answer_count: &mut impl FnMut(TaskId) -> usize,
    ) -> Option<f64> {
        let task = &tasks[i];
        if answered(task.id) {
            return None;
        }
        if let Some(cap) = self.config.max_answers_per_task {
            if answer_count(task.id) >= cap {
                return None;
            }
        }
        Some(benefit(&states[i], task.domain_vector(), quality))
    }

    /// The candidate walk over a set of task indices, built on
    /// [`Assigner::score_task`].
    fn scan_candidates(
        &self,
        quality: &[f64],
        tasks: &[Task],
        states: &[TaskState],
        indices: impl IntoIterator<Item = usize>,
        answered: &mut impl FnMut(TaskId) -> bool,
        answer_count: &mut impl FnMut(TaskId) -> usize,
    ) -> Vec<(f64, TaskId)> {
        let indices = indices.into_iter();
        let mut candidates = Vec::with_capacity(indices.size_hint().0);
        for i in indices {
            if let Some(b) = self.score_task(quality, tasks, states, i, answered, answer_count) {
                candidates.push((b, tasks[i].id));
            }
        }
        candidates
    }

    /// Sharded benefit scan: per-shard top-`k` selection followed by a
    /// k-way merge ([`merge_top_k`]).
    ///
    /// Produces exactly [`Assigner::assign`]'s result for every shard count
    /// (same benefits, same tie-breaks), because each shard's top-`k` is a
    /// superset filter of the global winners within that shard. With more
    /// than one shard and a large task set, shards are scanned on scoped
    /// threads — the per-request parallelism Theorem 4's additive benefit
    /// makes safe (no cross-task coupling in the scan).
    ///
    /// The filter closures take `&self` (`Fn`, not `FnMut`) so shards can
    /// evaluate them concurrently.
    pub fn assign_sharded(
        &self,
        quality: &[f64],
        tasks: &[Task],
        states: &[TaskState],
        sharding: &ShardedTiState,
        answered: impl Fn(TaskId) -> bool + Sync,
        answer_count: impl Fn(TaskId) -> usize + Sync,
    ) -> Vec<TaskId> {
        debug_assert_eq!(tasks.len(), states.len());
        debug_assert_eq!(tasks.len(), sharding.num_tasks());
        let k = self.config.k;
        let scan_shard = |shard: usize| -> (Vec<(f64, TaskId)>, usize) {
            // Re-borrow the shared `Fn` filters as fresh `FnMut`s so every
            // shard (possibly on its own thread) walks the same shared body.
            let mut answered = |t| answered(t);
            let mut answer_count = |t| answer_count(t);
            let candidates = self.scan_candidates(
                quality,
                tasks,
                states,
                sharding.tasks_of(shard).iter().copied(),
                &mut answered,
                &mut answer_count,
            );
            let available = candidates.len();
            (top_k_linear_pairs(candidates, k), available)
        };
        let shards = sharding.num_shards();
        let scanned: Vec<(Vec<(f64, TaskId)>, usize)> = if shards > 1
            && tasks.len() / shards >= PARALLEL_SCAN_MIN_TASKS_PER_SHARD
        {
            std::thread::scope(|scope| {
                let scan = &scan_shard;
                let handles: Vec<_> = (0..shards).map(|s| scope.spawn(move || scan(s))).collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard scan panicked"))
                    .collect()
            })
        } else {
            (0..shards).map(scan_shard).collect()
        };
        let (per_shard, counts): (Vec<_>, Vec<_>) = scanned.into_iter().unzip();
        merge_top_k_checked(&per_shard, &counts, k)
            .expect("per-shard top-k lists are well-formed by construction")
    }

    /// Indexed assignment: per-shard pop-and-revalidate over a
    /// [`BenefitIndex`] followed by the same k-way merge as the sharded
    /// scan.
    ///
    /// Produces exactly [`Assigner::assign`]'s picks (same benefits, same
    /// tie-breaks) for every shard count — see the exactness argument in
    /// the [`index`] module docs — while evaluating the benefit function
    /// only for tasks whose entropy bound can still reach the top-`k`.
    ///
    /// The index must be current: every state mutation since it was built
    /// must have been [`BenefitIndex::bump`]ed (answer ingestion) or
    /// followed by a [`BenefitIndex::rebuild`] (periodic full inference) —
    /// the maintenance `IncrementalTi` performs.
    #[allow(clippy::too_many_arguments)]
    pub fn assign_indexed(
        &self,
        quality: &[f64],
        tasks: &[Task],
        states: &[TaskState],
        sharding: &ShardedTiState,
        index: &mut BenefitIndex,
        answered: impl Fn(TaskId) -> bool,
        answer_count: impl Fn(TaskId) -> usize,
    ) -> Vec<TaskId> {
        debug_assert_eq!(tasks.len(), states.len());
        debug_assert_eq!(tasks.len(), sharding.num_tasks());
        assert_eq!(
            index.num_tasks(),
            tasks.len(),
            "benefit index covers a different task set"
        );
        assert_eq!(
            index.num_shards(),
            sharding.num_shards(),
            "benefit index partitioned differently from the scan geometry"
        );
        let k = self.config.k;
        let mut answered = |t| answered(t);
        let mut answer_count = |t| answer_count(t);
        let mut per_shard = Vec::with_capacity(sharding.num_shards());
        let mut counts = Vec::with_capacity(sharding.num_shards());
        for shard in 0..sharding.num_shards() {
            let (pairs, candidates) = index.select_top_k(shard, k, |t| {
                self.score_task(
                    quality,
                    tasks,
                    states,
                    t.index(),
                    &mut answered,
                    &mut answer_count,
                )
            });
            per_shard.push(pairs);
            counts.push(candidates);
        }
        // `counts` are *evaluated*-candidate counts (the index's whole point
        // is not knowing the full pool size), so the checked merge's
        // under-fill guard is structural here — it enforces arity and
        // sortedness, while top-k completeness rests on the entropy-bound
        // argument in [`index`] plus the scan/index equivalence tests.
        merge_top_k_checked(&per_shard, &counts, k)
            .expect("indexed per-shard lists are sorted and counted by construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ti::TaskState;
    use docs_types::{DomainVector, TaskBuilder};

    fn task(i: usize, domain: usize, m: usize) -> Task {
        TaskBuilder::new(i, format!("t{i}"))
            .yes_no()
            .with_domain_vector(DomainVector::one_hot(m, domain))
            .build()
            .unwrap()
    }

    #[test]
    fn assigns_tasks_in_workers_expert_domain() {
        // Two fresh tasks, one per domain; the worker is a domain-0 expert.
        // The domain-0 task must win: the expert's answer reduces entropy
        // more than a coin-flip answer would.
        let tasks = vec![task(0, 0, 2), task(1, 1, 2)];
        let states = vec![TaskState::new(2, 2), TaskState::new(2, 2)];
        let q = vec![0.95, 0.5];
        let assigner = Assigner::new(AssignerConfig {
            k: 1,
            ..Default::default()
        });
        let picks = assigner.assign(&q, &tasks, &states, |_| false, |_| 0);
        assert_eq!(picks, vec![TaskId(0)]);
    }

    #[test]
    fn confident_tasks_yield_little_benefit() {
        // Task 0 already has a confident truth; task 1 is fresh. Even though
        // both are in the worker's expert domain, task 1 wins.
        let tasks = vec![task(0, 0, 1), task(1, 0, 1)];
        let r = DomainVector::one_hot(1, 0);
        let mut confident = TaskState::new(1, 2);
        for _ in 0..6 {
            confident.apply_answer(&r, &[0.9], 0);
        }
        let states = vec![confident, TaskState::new(1, 2)];
        let assigner = Assigner::new(AssignerConfig {
            k: 1,
            ..Default::default()
        });
        let picks = assigner.assign(&[0.9], &tasks, &states, |_| false, |_| 0);
        assert_eq!(picks, vec![TaskId(1)]);
    }

    #[test]
    fn excludes_already_answered_tasks() {
        let tasks = vec![task(0, 0, 1), task(1, 0, 1)];
        let states = vec![TaskState::new(1, 2), TaskState::new(1, 2)];
        let assigner = Assigner::new(AssignerConfig {
            k: 2,
            ..Default::default()
        });
        let picks = assigner.assign(&[0.8], &tasks, &states, |t| t == TaskId(0), |_| 0);
        assert_eq!(picks, vec![TaskId(1)]);
    }

    #[test]
    fn respects_answer_budget_cap() {
        let tasks = vec![task(0, 0, 1), task(1, 0, 1)];
        let states = vec![TaskState::new(1, 2), TaskState::new(1, 2)];
        let assigner = Assigner::new(AssignerConfig {
            k: 2,
            max_answers_per_task: Some(10),
            ..Default::default()
        });
        let picks = assigner.assign(
            &[0.8],
            &tasks,
            &states,
            |_| false,
            |t| if t == TaskId(0) { 10 } else { 3 },
        );
        assert_eq!(picks, vec![TaskId(1)]);
    }

    #[test]
    fn linear_and_sort_selection_agree() {
        let m = 3;
        let tasks: Vec<Task> = (0..30).map(|i| task(i, i % m, m)).collect();
        let r: Vec<DomainVector> = tasks.iter().map(|t| t.domain_vector().clone()).collect();
        let mut states: Vec<TaskState> = (0..30).map(|_| TaskState::new(m, 2)).collect();
        // Give tasks varying confidence.
        for (i, st) in states.iter_mut().enumerate() {
            for _ in 0..(i % 5) {
                st.apply_answer(&r[i], &[0.8, 0.6, 0.7], 0);
            }
        }
        let q = vec![0.9, 0.55, 0.7];
        let linear = Assigner::new(AssignerConfig {
            k: 7,
            linear_select: true,
            ..Default::default()
        })
        .assign(&q, &tasks, &states, |_| false, |_| 0);
        let sorted = Assigner::new(AssignerConfig {
            k: 7,
            linear_select: false,
            ..Default::default()
        })
        .assign(&q, &tasks, &states, |_| false, |_| 0);
        assert_eq!(linear, sorted);
    }

    #[test]
    fn sharded_scan_equals_flat_scan_for_every_shard_count() {
        use crate::ti::ShardedTiState;
        let m = 3;
        let n = 200;
        let tasks: Vec<Task> = (0..n).map(|i| task(i, i % m, m)).collect();
        let r: Vec<DomainVector> = tasks.iter().map(|t| t.domain_vector().clone()).collect();
        let mut states: Vec<TaskState> = (0..n).map(|_| TaskState::new(m, 2)).collect();
        for (i, st) in states.iter_mut().enumerate() {
            for _ in 0..(i % 7) {
                st.apply_answer(&r[i], &[0.85, 0.6, 0.72], i % 2);
            }
        }
        let q = vec![0.9, 0.55, 0.7];
        let assigner = Assigner::new(AssignerConfig {
            k: 9,
            max_answers_per_task: Some(5),
            ..Default::default()
        });
        let answered = |t: TaskId| t.index().is_multiple_of(11);
        let count = |t: TaskId| t.index() % 7;
        let flat = assigner.assign(&q, &tasks, &states, answered, count);
        for shards in [1, 2, 4, 7] {
            let sharding = ShardedTiState::new(n, shards);
            let sharded = assigner.assign_sharded(&q, &tasks, &states, &sharding, answered, count);
            assert_eq!(sharded, flat, "shards = {shards}");
        }
    }

    #[test]
    fn indexed_assignment_equals_flat_scan_for_every_shard_count() {
        use crate::ti::ShardedTiState;
        let m = 3;
        let n = 200;
        let tasks: Vec<Task> = (0..n).map(|i| task(i, i % m, m)).collect();
        let r: Vec<DomainVector> = tasks.iter().map(|t| t.domain_vector().clone()).collect();
        let mut states: Vec<TaskState> = (0..n).map(|_| TaskState::new(m, 2)).collect();
        for (i, st) in states.iter_mut().enumerate() {
            for _ in 0..(i % 9) {
                st.apply_answer(&r[i], &[0.85, 0.6, 0.72], i % 2);
            }
        }
        let q = vec![0.9, 0.55, 0.7];
        let assigner = Assigner::new(AssignerConfig {
            k: 9,
            max_answers_per_task: Some(6),
            ..Default::default()
        });
        let answered = |t: TaskId| t.index().is_multiple_of(11);
        let count = |t: TaskId| t.index() % 7;
        let flat = assigner.assign(&q, &tasks, &states, answered, count);
        for shards in [1, 2, 4, 7] {
            let sharding = ShardedTiState::new(n, shards);
            let mut index = BenefitIndex::new(&states, &sharding);
            let picks = assigner
                .assign_indexed(&q, &tasks, &states, &sharding, &mut index, answered, count);
            assert_eq!(picks, flat, "shards = {shards}");
            // And again: selection must not consume the index.
            let again = assigner
                .assign_indexed(&q, &tasks, &states, &sharding, &mut index, answered, count);
            assert_eq!(again, flat, "shards = {shards}, second request");
        }
    }

    #[test]
    fn returns_fewer_when_not_enough_candidates() {
        let tasks = vec![task(0, 0, 1)];
        let states = vec![TaskState::new(1, 2)];
        let assigner = Assigner::new(AssignerConfig {
            k: 5,
            ..Default::default()
        });
        let picks = assigner.assign(&[0.8], &tasks, &states, |_| false, |_| 0);
        assert_eq!(picks.len(), 1);
    }
}
