//! The benefit function (Definition 5) and its ingredients
//! (Theorems 2 and 3, Eq. 8).

use crate::ti::{clamp_quality, TaskState};
use docs_types::{prob, DomainVector};

/// **Theorem 2**: the probability that the coming worker answers each choice,
/// given the answers collected so far:
///
/// ```text
/// Pr(v^w_i = a | V(i)) = Σ_k r_k · [ q_k·M_{k,a} + (1-q_k)/(ℓ-1) · (1 − M_{k,a}) ]
/// ```
///
/// The returned vector is a distribution over the `ℓ` choices.
pub fn answer_probabilities(state: &TaskState, r: &DomainVector, quality: &[f64]) -> Vec<f64> {
    let l = state.num_choices();
    let m = state.num_domains();
    debug_assert_eq!(r.len(), m);
    debug_assert_eq!(quality.len(), m);
    let mut p = vec![0.0; l];
    for k in 0..m {
        let rk = r[k];
        if rk == 0.0 {
            continue;
        }
        let q = clamp_quality(quality[k]);
        let wrong = (1.0 - q) / (l as f64 - 1.0);
        for (a, slot) in p.iter_mut().enumerate() {
            let mka = state.m_entry(k, a);
            *slot += rk * (q * mka + wrong * (1.0 - mka));
        }
    }
    // Exact in theory; normalize defensively against floating drift.
    prob::normalize_in_place(&mut p);
    p
}

/// **Eq. 8**: the expected entropy of the task's truth after the worker
/// answers, `H(ŝ_i) = Σ_a H(r × M^{(i)}|a) · Pr(v^w_i = a | V(i))`, with
/// `M^{(i)}|a` from Theorem 3.
pub fn expected_posterior_entropy(state: &TaskState, r: &DomainVector, quality: &[f64]) -> f64 {
    let probs = answer_probabilities(state, r, quality);
    let mut h = 0.0;
    for (a, &pa) in probs.iter().enumerate() {
        if pa == 0.0 {
            continue;
        }
        let updated = state.m_given_answer(quality, a);
        let s_hat = state.s_from_matrix(r, &updated);
        h += prob::entropy(&s_hat) * pa;
    }
    h
}

/// **Definition 5**: the benefit of assigning the task to the worker,
/// `B(t_i) = H(s_i) − H(ŝ_i)`.
///
/// `H(s_i)` comes from the entropy cache [`TaskState::entropy`] maintained
/// at answer-ingestion time: a worker request scans every candidate task,
/// and recomputing the entropy of posteriors that have not changed since
/// the last request would put an O(ℓ) log-sum per task back on the
/// latency-critical assignment path.
pub fn benefit(state: &TaskState, r: &DomainVector, quality: &[f64]) -> f64 {
    state.entropy() - expected_posterior_entropy(state, r, quality)
}

#[cfg(test)]
mod tests {
    use super::*;
    use docs_types::DomainVector;

    fn fresh(m: usize, l: usize) -> TaskState {
        TaskState::new(m, l)
    }

    #[test]
    fn answer_probabilities_form_distribution() {
        let mut st = fresh(3, 4);
        let r = DomainVector::new(vec![0.2, 0.5, 0.3]).unwrap();
        st.apply_answer(&r, &[0.8, 0.6, 0.9], 2);
        let p = answer_probabilities(&st, &r, &[0.7, 0.9, 0.4]);
        assert_eq!(p.len(), 4);
        assert!(prob::is_distribution(&p));
    }

    #[test]
    fn uninformed_state_gives_uniform_answer_distribution() {
        // With M uniform, Theorem 2 gives q/ℓ + (1-q)/(ℓ-1) · (1 - 1/ℓ)
        // = 1/ℓ for every a: the prediction is uniform.
        let st = fresh(2, 2);
        let r = DomainVector::new(vec![0.5, 0.5]).unwrap();
        let p = answer_probabilities(&st, &r, &[0.9, 0.3]);
        assert!((p[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn expert_predicted_to_follow_current_truth() {
        let r = DomainVector::one_hot(1, 0);
        let mut st = fresh(1, 2);
        st.apply_answer(&r, &[0.9], 0); // current truth leans choice 0
        let p = answer_probabilities(&st, &r, &[0.95]);
        assert!(
            p[0] > 0.8,
            "expert should agree with the likely truth: {p:?}"
        );
        // A uniform-quality worker is a coin flip regardless of state.
        let p_flip = answer_probabilities(&st, &r, &[0.5]);
        assert!((p_flip[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn benefit_uses_cached_entropy_consistently() {
        // The cached H(s) must equal the freshly computed one, so the
        // benefit is unchanged by the caching.
        let r = DomainVector::new(vec![0.3, 0.7]).unwrap();
        let mut st = fresh(2, 3);
        for choice in [0, 2, 2, 1] {
            st.apply_answer(&r, &[0.8, 0.65], choice);
            let direct = prob::entropy(st.s()) - expected_posterior_entropy(&st, &r, &[0.9, 0.6]);
            assert!((benefit(&st, &r, &[0.9, 0.6]) - direct).abs() < 1e-15);
        }
    }

    #[test]
    fn benefit_positive_for_informative_workers() {
        let st = fresh(1, 2);
        let r = DomainVector::one_hot(1, 0);
        let b = benefit(&st, &r, &[0.9]);
        assert!(b > 0.0);
    }

    #[test]
    fn benefit_near_zero_for_coin_flip_worker() {
        let st = fresh(1, 2);
        let r = DomainVector::one_hot(1, 0);
        let b = benefit(&st, &r, &[0.5]);
        assert!(b.abs() < 1e-9, "coin flip adds no information, b = {b}");
    }

    #[test]
    fn benefit_grows_with_quality() {
        let st = fresh(1, 2);
        let r = DomainVector::one_hot(1, 0);
        let b_low = benefit(&st, &r, &[0.6]);
        let b_mid = benefit(&st, &r, &[0.75]);
        let b_high = benefit(&st, &r, &[0.95]);
        assert!(b_low < b_mid && b_mid < b_high);
    }

    #[test]
    fn benefit_shrinks_as_task_becomes_confident() {
        let r = DomainVector::one_hot(1, 0);
        let mut st = fresh(1, 2);
        let mut prev = benefit(&st, &r, &[0.85]);
        for _ in 0..5 {
            st.apply_answer(&r, &[0.85], 0);
            let b = benefit(&st, &r, &[0.85]);
            assert!(b <= prev + 1e-12, "benefit should shrink: {b} vs {prev}");
            prev = b;
        }
        assert!(prev < 0.05, "a confident task has little left to gain");
    }

    /// **Theorem 4** (numerical check): the expected benefit of a k-task set
    /// computed by enumerating all answer combinations (Eqs. 9-10) equals
    /// the sum of individual benefits.
    #[test]
    fn theorem4_additivity() {
        let m = 2;
        let r1 = DomainVector::new(vec![0.7, 0.3]).unwrap();
        let r2 = DomainVector::new(vec![0.2, 0.8]).unwrap();
        let q = vec![0.85, 0.65];
        let mut st1 = TaskState::new(m, 2);
        st1.apply_answer(&r1, &[0.7, 0.7], 0);
        let mut st2 = TaskState::new(m, 3);
        st2.apply_answer(&r2, &[0.6, 0.8], 2);

        // Joint expectation over φ ∈ {0,1} × {0,1,2} (Eq. 10).
        let p1 = answer_probabilities(&st1, &r1, &q);
        let p2 = answer_probabilities(&st2, &r2, &q);
        let h1 = prob::entropy(st1.s());
        let h2 = prob::entropy(st2.s());
        let mut joint = 0.0;
        for (a1, &pa1) in p1.iter().enumerate() {
            let s1 = st1.s_from_matrix(&r1, &st1.m_given_answer(&q, a1));
            for (a2, &pa2) in p2.iter().enumerate() {
                let s2 = st2.s_from_matrix(&r2, &st2.m_given_answer(&q, a2));
                let b_phi = (h1 - prob::entropy(&s1)) + (h2 - prob::entropy(&s2));
                joint += b_phi * pa1 * pa2;
            }
        }
        let sum = benefit(&st1, &r1, &q) + benefit(&st2, &r2, &q);
        assert!(
            (joint - sum).abs() < 1e-12,
            "Theorem 4 violated: joint {joint} vs sum {sum}"
        );
    }
}
