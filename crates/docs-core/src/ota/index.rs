//! The incremental benefit index: a per-task-shard, lazily invalidated
//! max-structure over the OTA candidate space.
//!
//! The flat benefit scan (Section 5.1) pays O(n) benefit evaluations per
//! worker request even though an answer only perturbs the state of the one
//! task it touched. [`BenefitIndex`] turns the request path into a
//! pop-and-revalidate over a heap keyed by a **worker-independent upper
//! bound** on each task's benefit, so a request evaluates the true
//! (worker-dependent) benefit of only the tasks that can still make the
//! top-`k` — O(k log n) pops in the warm steady state instead of an O(n)
//! rescan.
//!
//! **The bound.** Definition 5 gives `B(t_i) = H(s_i) − H(ŝ_i)` with
//! `H(ŝ_i) ≥ 0`, so `B(t_i) ≤ H(s_i)` for *every* worker — and the bound is
//! tight over the worker space (a perfect worker collapses the posterior).
//! `H(s_i)` is exactly the entropy cache [`TaskState::entropy`] already
//! maintained at answer-ingestion time, so keeping the index current costs
//! one O(log n) heap push per ingested answer.
//!
//! **Lazy invalidation.** Each task carries an epoch; updating a task
//! ([`BenefitIndex::bump`]) increments the epoch and pushes a fresh entry.
//! Stale entries (older epochs) are discarded when popped. Periodic full
//! inference replaces every task state at once, so it triggers a whole-index
//! [`BenefitIndex::rebuild`] instead of n bumps.
//!
//! **Exactness.** [`BenefitIndex::select_top_k`] pops entries in descending
//! bound order and evaluates each task's true benefit until the `k`-th best
//! evaluated benefit strictly exceeds the best remaining bound. Every
//! unevaluated task `t` then satisfies `B(t) ≤ bound(t) ≤ best remaining
//! bound < k-th best`, so the evaluated set provably contains the shard's
//! true top-`k`; running the evaluated candidates through the same
//! [`top_k_linear_pairs`](super::top_k_linear_pairs) selection as the flat
//! scan reproduces its ordering and tie-breaks bit-for-bit. The worst case
//! (a cold pool where every bound ties) degenerates to the flat scan — the
//! index is never *wrong*, only sometimes not faster.

use crate::ti::{ShardedTiState, TaskState};
use docs_types::TaskId;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

use super::select::top_k_linear_pairs;

/// One heap entry: a task's benefit upper bound at the epoch it was pushed.
#[derive(Debug, Clone, Copy)]
struct Entry {
    bound: f64,
    task: usize,
    epoch: u32,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap pops the maximum: higher bound first, ties toward the
        // lower task index (mirroring the scan's tie-break direction).
        self.bound
            .partial_cmp(&other.bound)
            .expect("entropy bounds are finite")
            .then_with(|| other.task.cmp(&self.task))
    }
}

/// Finite `f64` ordered by value — the key of the running top-`k` tracker.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Finite(f64);

impl Eq for Finite {}

impl PartialOrd for Finite {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Finite {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.partial_cmp(&other.0).expect("benefits are finite")
    }
}

/// Per-task-shard lazily invalidated max-structure over benefit bounds
/// (see the module docs).
#[derive(Debug, Clone)]
pub struct BenefitIndex {
    /// One bound-ordered heap per task shard.
    heaps: Vec<BinaryHeap<Entry>>,
    /// Current epoch per task; heap entries with older epochs are stale.
    epochs: Vec<u32>,
    /// Tasks owned per shard — the compaction threshold baseline.
    shard_sizes: Vec<usize>,
    num_shards: usize,
    /// Monotone maintenance generation: advanced by every [`bump`] and
    /// [`rebuild`], i.e. exactly once per index-visible state change. The
    /// service's push-dispatch plane keys off this counter to dispatch once
    /// per state change instead of once per worker poll.
    ///
    /// [`bump`]: BenefitIndex::bump
    /// [`rebuild`]: BenefitIndex::rebuild
    generation: u64,
}

impl BenefitIndex {
    /// Builds the index over the current states, partitioned like
    /// `sharding`.
    pub fn new(states: &[TaskState], sharding: &ShardedTiState) -> Self {
        let mut index = BenefitIndex {
            heaps: Vec::new(),
            epochs: Vec::new(),
            shard_sizes: Vec::new(),
            num_shards: sharding.num_shards(),
            generation: 0,
        };
        index.rebuild(states, sharding);
        index
    }

    /// Number of task shards the index partitions.
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Number of indexed tasks.
    #[inline]
    pub fn num_tasks(&self) -> usize {
        self.epochs.len()
    }

    /// The maintenance generation: advances exactly once per index-visible
    /// state change ([`bump`](BenefitIndex::bump) or
    /// [`rebuild`](BenefitIndex::rebuild)), never on reads. Observers that
    /// cache a generation and compare can tell "the candidate space moved"
    /// apart from "another poll arrived" — the push-dispatch trigger.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Rebuilds the whole index from scratch — the repair path after
    /// periodic full inference (every state changed at once) or a
    /// re-partition.
    pub fn rebuild(&mut self, states: &[TaskState], sharding: &ShardedTiState) {
        debug_assert_eq!(states.len(), sharding.num_tasks());
        self.generation = self.generation.wrapping_add(1);
        self.num_shards = sharding.num_shards();
        self.epochs.clear();
        self.epochs.resize(states.len(), 0);
        self.shard_sizes = (0..self.num_shards)
            .map(|s| sharding.tasks_of(s).len())
            .collect();
        self.heaps = (0..self.num_shards)
            .map(|shard| {
                sharding
                    .tasks_of(shard)
                    .iter()
                    .map(|&task| Entry {
                        bound: states[task].entropy(),
                        task,
                        epoch: 0,
                    })
                    .collect()
            })
            .collect();
    }

    /// Re-keys one task after its state changed (answer ingestion): the old
    /// entry goes stale, a fresh one carries the new `H(s)` bound.
    pub fn bump(&mut self, task: usize, bound: f64) {
        self.generation = self.generation.wrapping_add(1);
        let epoch = self.epochs[task].wrapping_add(1);
        self.epochs[task] = epoch;
        let shard = TaskId::from(task).shard(self.num_shards);
        let heap = &mut self.heaps[shard];
        heap.push(Entry { bound, task, epoch });
        // Stale entries are only dropped when popped; a write-heavy,
        // read-light shard would otherwise grow without bound.
        if heap.len() > 2 * self.shard_sizes[shard] + 8 {
            let epochs = &self.epochs;
            let live: Vec<Entry> = heap.drain().filter(|e| e.epoch == epochs[e.task]).collect();
            *heap = BinaryHeap::from(live);
        }
    }

    /// Exact top-`k` of one shard by pop-and-revalidate.
    ///
    /// `eval` returns the candidate's true benefit for the requesting
    /// worker, or `None` when the task is filtered out (already answered,
    /// answer cap reached, stopping policy). Returns the shard's top-`k`
    /// `(benefit, task)` pairs — byte-identical to running
    /// [`top_k_linear_pairs`](super::top_k_linear_pairs) over a full shard
    /// scan — plus the number of candidates actually evaluated (the
    /// shard's effective candidate-pool size for downstream merge checks).
    pub fn select_top_k(
        &mut self,
        shard: usize,
        k: usize,
        mut eval: impl FnMut(TaskId) -> Option<f64>,
    ) -> (Vec<(f64, TaskId)>, usize) {
        let heap = &mut self.heaps[shard];
        let mut popped: Vec<Entry> = Vec::new();
        let mut found: Vec<(f64, TaskId)> = Vec::new();
        // Min-heap over the best k benefits found so far; its root is the
        // current k-th best — the revalidation cutoff.
        let mut best: BinaryHeap<Reverse<Finite>> = BinaryHeap::with_capacity(k + 1);
        if k > 0 {
            while let Some(&top) = heap.peek() {
                if top.epoch != self.epochs[top.task] {
                    heap.pop(); // stale: superseded by a later bump
                    continue;
                }
                if best.len() == k {
                    let kth = best.peek().expect("k > 0").0 .0;
                    // `>=`, not `>`: a remaining task whose bound ties the
                    // k-th best benefit could still win a tie-break, so it
                    // must be evaluated too.
                    if top.bound < kth {
                        break;
                    }
                }
                let entry = heap.pop().expect("peeked entry exists");
                popped.push(entry);
                if let Some(benefit) = eval(TaskId::from(entry.task)) {
                    found.push((benefit, TaskId::from(entry.task)));
                    best.push(Reverse(Finite(benefit)));
                    if best.len() > k {
                        best.pop();
                    }
                }
            }
        }
        // Popped live entries remain current for the next request.
        for entry in popped {
            heap.push(entry);
        }
        let candidates = found.len();
        (top_k_linear_pairs(found, k), candidates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ota::top_k_linear_pairs;
    use docs_types::DomainVector;

    fn warm_states(n: usize) -> Vec<TaskState> {
        let r = DomainVector::new(vec![0.6, 0.4]).unwrap();
        (0..n)
            .map(|i| {
                let mut st = TaskState::new(2, 2);
                for _ in 0..(i % 5) {
                    st.apply_answer(&r, &[0.85, 0.7], i % 2);
                }
                st
            })
            .collect()
    }

    /// A deterministic stand-in benefit: a fixed fraction of the entropy
    /// bound, so selection order is testable without the full OTA model.
    fn frac_eval(states: &[TaskState], frac: f64) -> impl Fn(TaskId) -> Option<f64> + '_ {
        move |t: TaskId| Some(states[t.index()].entropy() * frac)
    }

    fn brute_force(
        sharding: &ShardedTiState,
        shard: usize,
        k: usize,
        eval: impl Fn(TaskId) -> Option<f64>,
    ) -> Vec<(f64, TaskId)> {
        let candidates: Vec<(f64, TaskId)> = sharding
            .tasks_of(shard)
            .iter()
            .filter_map(|&i| eval(TaskId::from(i)).map(|b| (b, TaskId::from(i))))
            .collect();
        top_k_linear_pairs(candidates, k)
    }

    #[test]
    fn select_matches_flat_scan_per_shard() {
        let states = warm_states(60);
        for shards in [1usize, 3, 4] {
            let sharding = ShardedTiState::new(states.len(), shards);
            let mut index = BenefitIndex::new(&states, &sharding);
            for k in [0usize, 1, 5, 60] {
                for shard in 0..shards {
                    let (got, _) = index.select_top_k(shard, k, frac_eval(&states, 0.5));
                    let want = brute_force(&sharding, shard, k, frac_eval(&states, 0.5));
                    assert_eq!(got, want, "shards={shards} shard={shard} k={k}");
                }
            }
        }
    }

    #[test]
    fn selection_is_repeatable_entries_survive_pops() {
        let states = warm_states(20);
        let sharding = ShardedTiState::new(20, 2);
        let mut index = BenefitIndex::new(&states, &sharding);
        let first = index.select_top_k(0, 4, frac_eval(&states, 0.9));
        let second = index.select_top_k(0, 4, frac_eval(&states, 0.9));
        assert_eq!(first, second, "a read must not consume the index");
    }

    #[test]
    fn bump_rekeys_a_task() {
        let mut states = warm_states(10);
        let sharding = ShardedTiState::new(10, 1);
        let mut index = BenefitIndex::new(&states, &sharding);
        // Sharpen task 3 (entropy drops), bump, and re-select.
        let r = DomainVector::new(vec![0.6, 0.4]).unwrap();
        for _ in 0..6 {
            states[3].apply_answer(&r, &[0.95, 0.9], 0);
        }
        index.bump(3, states[3].entropy());
        let (got, _) = index.select_top_k(0, 10, frac_eval(&states, 1.0));
        let want = brute_force(&sharding, 0, 10, frac_eval(&states, 1.0));
        assert_eq!(got, want);
    }

    #[test]
    fn filtered_tasks_are_skipped_and_counted_out() {
        let states = warm_states(12);
        let sharding = ShardedTiState::new(12, 1);
        let mut index = BenefitIndex::new(&states, &sharding);
        let eval =
            |t: TaskId| (!t.index().is_multiple_of(3)).then(|| states[t.index()].entropy() * 0.5);
        let (got, candidates) = index.select_top_k(0, 12, eval);
        let want = brute_force(&sharding, 0, 12, eval);
        assert_eq!(got, want);
        assert_eq!(candidates, want.len());
        assert!(got.iter().all(|(_, t)| !t.index().is_multiple_of(3)));
    }

    #[test]
    fn heavy_bumping_compacts_and_stays_exact() {
        let states = warm_states(16);
        let sharding = ShardedTiState::new(16, 2);
        let mut index = BenefitIndex::new(&states, &sharding);
        // Bump far more often than 2 × shard size: compaction must kick in
        // without losing any live entry.
        for round in 0..40 {
            for (task, state) in states.iter().enumerate() {
                index.bump(task, state.entropy() + (round as f64) * 1e-9);
            }
        }
        for shard in 0..2 {
            assert!(
                index.heaps[shard].len() <= 2 * index.shard_sizes[shard] + 9,
                "shard {shard} heap grew to {}",
                index.heaps[shard].len()
            );
            let (got, _) = index.select_top_k(shard, 16, frac_eval(&states, 0.4));
            let want = brute_force(&sharding, shard, 16, frac_eval(&states, 0.4));
            assert_eq!(got, want);
        }
    }

    #[test]
    fn generation_moves_on_maintenance_never_on_reads() {
        let states = warm_states(10);
        let sharding = ShardedTiState::new(10, 2);
        let mut index = BenefitIndex::new(&states, &sharding);
        let g0 = index.generation();
        // Reads leave the generation alone.
        index.select_top_k(0, 4, frac_eval(&states, 0.5));
        index.select_top_k(1, 4, frac_eval(&states, 0.5));
        assert_eq!(index.generation(), g0, "reads must not advance");
        // Every bump advances by exactly one; rebuild advances too.
        index.bump(3, states[3].entropy());
        assert_eq!(index.generation(), g0 + 1);
        index.bump(7, states[7].entropy());
        assert_eq!(index.generation(), g0 + 2);
        index.rebuild(&states, &sharding);
        assert_eq!(index.generation(), g0 + 3);
    }

    #[test]
    fn rebuild_follows_a_new_partition() {
        let states = warm_states(30);
        let mut index = BenefitIndex::new(&states, &ShardedTiState::new(30, 1));
        let resharded = ShardedTiState::new(30, 4);
        index.rebuild(&states, &resharded);
        assert_eq!(index.num_shards(), 4);
        for shard in 0..4 {
            let (got, _) = index.select_top_k(shard, 30, frac_eval(&states, 0.7));
            let want = brute_force(&resharded, shard, 30, frac_eval(&states, 0.7));
            assert_eq!(got, want);
        }
    }

    #[test]
    fn cold_pool_with_tied_bounds_still_selects_exactly() {
        // Every task fresh: all bounds tie at ln 2, the degenerate case.
        let states: Vec<TaskState> = (0..25).map(|_| TaskState::new(2, 2)).collect();
        let sharding = ShardedTiState::new(25, 2);
        let mut index = BenefitIndex::new(&states, &sharding);
        // Benefits vary by task id even though bounds tie.
        let eval = |t: TaskId| Some(((t.index() * 7) % 13) as f64 / 26.0);
        for shard in 0..2 {
            let (got, _) = index.select_top_k(shard, 5, eval);
            let want = brute_force(&sharding, shard, 5, eval);
            assert_eq!(got, want);
        }
    }
}
