//! Golden-task selection (Section 5.2).
//!
//! Golden tasks test a new worker's per-domain quality. Two guidelines
//! drive the selection of the `n′` golden tasks out of the `n` published
//! tasks: each selected task should strongly capture one domain (pick the
//! tasks with the highest `r^t_k`), and the per-domain counts
//! `σ = [n′_1/n′, …, n′_m/n′]` should approximate the aggregate domain
//! distribution `τ` of the whole task set. The count allocation minimizes
//! the KL divergence `D(σ, τ)` subject to `Σ_k n′_k = n′` (Eq. 11) — an
//! NP-hard integer program, approximated by a floor-then-greedy procedure
//! that the paper measures at γ ≤ 0.1% from optimal (Figure 7(a)).

use docs_types::{prob, Task, TaskId};

/// Objective of Eq. 11 for an allocation `counts`:
/// `Σ_k (n′_k/n′) · ln( (n′_k · 1) / (n′ · τ_k) )`.
///
/// Allocations that put tasks into zero-mass domains score `+∞`.
pub fn allocation_objective(counts: &[usize], tau: &[f64]) -> f64 {
    debug_assert_eq!(counts.len(), tau.len());
    let n_prime: usize = counts.iter().sum();
    if n_prime == 0 {
        return 0.0;
    }
    let sigma: Vec<f64> = counts.iter().map(|&c| c as f64 / n_prime as f64).collect();
    prob::kl_divergence(&sigma, tau)
}

/// The approximation algorithm for Eq. 11: start each `n′_k` at the lower
/// bound `⌊τ_k · n′⌋`, then repeatedly add one task to the domain that
/// minimizes the resulting objective until `Σ_k n′_k = n′`.
///
/// Runs in `O(m²·n′_residual)` ≤ `O(m³)` since at most `m` increments remain
/// after the floor step (the paper bounds the procedure by `m` rounds).
///
/// # Panics
/// Panics if `tau` is not a distribution.
pub fn golden_counts(tau: &[f64], n_prime: usize) -> Vec<usize> {
    assert!(
        prob::is_distribution(tau),
        "τ must be a distribution over domains"
    );
    let m = tau.len();
    let mut counts: Vec<usize> = tau.iter().map(|&t| (t * n_prime as f64) as usize).collect();
    let mut assigned: usize = counts.iter().sum();
    debug_assert!(assigned <= n_prime);

    while assigned < n_prime {
        // ind = argmin_k objective if n′_k were incremented.
        let mut best_k = 0;
        let mut best_obj = f64::INFINITY;
        for k in 0..m {
            if tau[k] <= 0.0 {
                continue; // incrementing a zero-mass domain costs +∞
            }
            counts[k] += 1;
            let obj = allocation_objective(&counts, tau);
            counts[k] -= 1;
            if obj < best_obj {
                best_obj = obj;
                best_k = k;
            }
        }
        counts[best_k] += 1;
        assigned += 1;
    }
    counts
}

/// Exact solver by enumerating every composition of `n′` into `m`
/// non-negative parts — `C(n′+m−1, m−1)` cases, exponential in practice;
/// the Figure 7(a) baseline. Returns `(best_counts, best_objective)`.
pub fn golden_counts_enumeration(tau: &[f64], n_prime: usize) -> (Vec<usize>, f64) {
    assert!(prob::is_distribution(tau));
    let m = tau.len();
    let mut best = vec![0usize; m];
    let mut best_obj = f64::INFINITY;
    let mut current = vec![0usize; m];

    fn recurse(
        k: usize,
        remaining: usize,
        m: usize,
        tau: &[f64],
        current: &mut Vec<usize>,
        best: &mut Vec<usize>,
        best_obj: &mut f64,
    ) {
        if k == m - 1 {
            current[k] = remaining;
            let obj = allocation_objective(current, tau);
            if obj < *best_obj {
                *best_obj = obj;
                best.clone_from(current);
            }
            return;
        }
        for c in 0..=remaining {
            current[k] = c;
            recurse(k + 1, remaining - c, m, tau, current, best, best_obj);
        }
    }
    recurse(0, n_prime, m, tau, &mut current, &mut best, &mut best_obj);
    (best, best_obj)
}

/// Aggregate domain distribution `τ_k = Σ_i r^{t_i}_k / n` of a task set.
///
/// # Panics
/// Panics if `tasks` is empty or a task lacks its domain vector.
pub fn aggregate_domain_distribution(tasks: &[Task]) -> Vec<f64> {
    assert!(!tasks.is_empty(), "need at least one task");
    let m = tasks[0].domain_vector().len();
    let mut tau = vec![0.0; m];
    for t in tasks {
        let r = t.domain_vector();
        for k in 0..m {
            tau[k] += r[k];
        }
    }
    prob::normalize_in_place(&mut tau);
    tau
}

/// Full golden-task selection: computes `τ`, allocates the per-domain counts
/// with [`golden_counts`], and per domain picks the `n′_k` not-yet-selected
/// tasks with the highest `r^t_k` (guideline 1). Domains are processed in
/// descending allocation order so strongly represented domains pick first.
///
/// Returns the selected task ids (deduplicated; a task captures exactly one
/// domain slot).
pub fn select_golden_tasks(tasks: &[Task], n_prime: usize) -> Vec<TaskId> {
    if tasks.is_empty() || n_prime == 0 {
        return Vec::new();
    }
    let n_prime = n_prime.min(tasks.len());
    let tau = aggregate_domain_distribution(tasks);
    let counts = golden_counts(&tau, n_prime);
    let m = tau.len();

    let mut selected: Vec<TaskId> = Vec::with_capacity(n_prime);
    let mut used = vec![false; tasks.len()];

    let mut domain_order: Vec<usize> = (0..m).collect();
    domain_order.sort_by(|&a, &b| counts[b].cmp(&counts[a]));

    for k in domain_order {
        if counts[k] == 0 {
            continue;
        }
        // Rank unselected tasks by r_k, descending (stable tie-break on id).
        let mut ranked: Vec<usize> = (0..tasks.len()).filter(|&i| !used[i]).collect();
        ranked.sort_by(|&a, &b| {
            let ra = tasks[a].domain_vector()[k];
            let rb = tasks[b].domain_vector()[k];
            rb.partial_cmp(&ra).expect("finite").then(a.cmp(&b))
        });
        for &i in ranked.iter().take(counts[k]) {
            used[i] = true;
            selected.push(tasks[i].id);
        }
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use docs_types::{DomainVector, TaskBuilder};

    #[test]
    fn counts_sum_to_n_prime() {
        let tau = [0.5, 0.3, 0.2];
        for n in 0..30 {
            let c = golden_counts(&tau, n);
            assert_eq!(c.iter().sum::<usize>(), n, "n′ = {n}");
        }
    }

    #[test]
    fn counts_proportional_to_tau() {
        let tau = [0.5, 0.25, 0.25];
        let c = golden_counts(&tau, 20);
        assert_eq!(c, vec![10, 5, 5]);
    }

    #[test]
    fn zero_mass_domains_get_nothing() {
        let tau = [0.0, 0.6, 0.4];
        let c = golden_counts(&tau, 10);
        assert_eq!(c[0], 0);
        assert_eq!(c.iter().sum::<usize>(), 10);
    }

    #[test]
    fn approximation_close_to_enumeration() {
        // The paper reports γ = |D − D_opt| / D_opt within 0.1% on average.
        // On top of that bound, when D_opt is ~0 both must be ~0.
        let cases: Vec<Vec<f64>> = vec![
            vec![0.4, 0.3, 0.2, 0.1],
            vec![0.7, 0.1, 0.1, 0.1],
            vec![0.25, 0.25, 0.25, 0.25],
            vec![0.55, 0.45],
            vec![0.05, 0.15, 0.3, 0.5],
        ];
        for tau in cases {
            for n in [5usize, 8, 13] {
                let approx = golden_counts(&tau, n);
                let (_, d_opt) = golden_counts_enumeration(&tau, n);
                let d = allocation_objective(&approx, &tau);
                assert!(
                    d - d_opt < 1e-9 || (d - d_opt) / d_opt.max(1e-12) < 0.05,
                    "τ = {tau:?}, n′ = {n}: D = {d}, D_opt = {d_opt}"
                );
            }
        }
    }

    #[test]
    fn enumeration_finds_exact_optimum_small() {
        let tau = [0.5, 0.5];
        let (best, obj) = golden_counts_enumeration(&tau, 4);
        assert_eq!(best, vec![2, 2]);
        assert!(obj.abs() < 1e-12);
    }

    fn make_tasks(specs: &[(usize, f64)]) -> Vec<Task> {
        // (dominant domain, strength): r = strength on domain, rest uniform.
        let m = 3;
        specs
            .iter()
            .enumerate()
            .map(|(i, &(d, strength))| {
                let mut r = vec![(1.0 - strength) / (m as f64 - 1.0); m];
                r[d] = strength;
                TaskBuilder::new(i, format!("t{i}"))
                    .yes_no()
                    .with_domain_vector(DomainVector::new(r).unwrap())
                    .build()
                    .unwrap()
            })
            .collect()
    }

    #[test]
    fn aggregate_distribution_normalizes() {
        let tasks = make_tasks(&[(0, 0.9), (1, 0.9), (2, 0.9)]);
        let tau = aggregate_domain_distribution(&tasks);
        assert!(prob::is_distribution(&tau));
        assert!((tau[0] - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn selects_strongest_tasks_per_domain() {
        let tasks = make_tasks(&[
            (0, 0.95),
            (0, 0.6),
            (1, 0.95),
            (1, 0.6),
            (2, 0.95),
            (2, 0.6),
        ]);
        let golden = select_golden_tasks(&tasks, 3);
        assert_eq!(golden.len(), 3);
        // One per domain, always the 0.95-strength representative.
        assert!(golden.contains(&TaskId(0)));
        assert!(golden.contains(&TaskId(2)));
        assert!(golden.contains(&TaskId(4)));
    }

    #[test]
    fn selection_never_duplicates_tasks() {
        let tasks = make_tasks(&[(0, 0.9), (0, 0.8), (1, 0.9), (2, 0.9)]);
        let golden = select_golden_tasks(&tasks, 4);
        let mut ids: Vec<u32> = golden.iter().map(|t| t.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4);
    }

    #[test]
    fn selection_caps_at_task_count() {
        let tasks = make_tasks(&[(0, 0.9), (1, 0.9)]);
        let golden = select_golden_tasks(&tasks, 10);
        assert_eq!(golden.len(), 2);
    }

    #[test]
    fn empty_inputs() {
        assert!(select_golden_tasks(&[], 5).is_empty());
        let tasks = make_tasks(&[(0, 0.9)]);
        assert!(select_golden_tasks(&tasks, 0).is_empty());
    }
}
