//! The DOCS contribution: the three modules of Figure 1.
//!
//! * [`dve`] — **Domain Vector Estimation** (Section 3): computes a task's
//!   domain vector `r^t` from entity-linking output, via the exact
//!   polynomial-time Algorithm 1 (and the exponential enumeration baseline
//!   used in Table 3).
//! * [`ti`] — **Truth Inference** (Section 4): the iterative approach
//!   (Eqs. 2–5), the incremental approach of Section 4.2, and long-run
//!   worker-quality maintenance (Theorem 1).
//! * [`ota`] — **Online Task Assignment** (Section 5.1): the
//!   entropy-reduction benefit function (Definition 5, Theorems 2–4) and the
//!   linear top-`k` selection.
//! * [`golden`] — **Golden-task selection** (Section 5.2): the KL-divergence
//!   objective (Eq. 11), its approximation algorithm, and the exact
//!   enumeration baseline of Figure 7(a).
//!
//! The substrate inputs (knowledge base, entity linker) come from `docs-kb`;
//! the data model comes from `docs-types`.

pub mod dve;
pub mod golden;
pub mod ota;
pub mod ti;

pub use dve::{domain_vector, domain_vector_enumeration};
pub use golden::{golden_counts, golden_counts_enumeration, select_golden_tasks};
pub use ota::{Assigner, AssignerConfig};
pub use ti::{
    IncrementalTi, TaskState, TiConfig, TiResult, TruthInference, WorkerRegistry, WorkerStats,
};
