//! The iterative truth-inference approach of Section 4.1.

use super::state::TaskState;
use super::stats::WorkerRegistry;
use docs_types::{prob, AnswerLog, ChoiceIndex, Task, WorkerId};
use std::collections::HashMap;

/// Configuration of the iterative approach.
#[derive(Debug, Clone, Copy)]
pub struct TiConfig {
    /// Hard iteration cap; the paper observes convergence within ~10–20
    /// iterations and terminates within "a few (say 20)".
    pub max_iterations: usize,
    /// Convergence threshold on the parameter change Δ (Section 6.3).
    pub epsilon: f64,
}

impl Default for TiConfig {
    fn default() -> Self {
        TiConfig {
            max_iterations: 20,
            epsilon: 1e-5,
        }
    }
}

/// Output of truth inference: per-task states (`M^{(i)}`, `s_i`), final
/// worker qualities, the inferred truths, and the per-iteration parameter
/// change Δ (the Figure 4(a) convergence series).
#[derive(Debug, Clone)]
pub struct TiResult {
    /// Per-task inference state, indexable by `TaskId::index()`.
    pub states: Vec<TaskState>,
    /// Estimated quality vector per worker seen in the answer log.
    pub qualities: HashMap<WorkerId, Vec<f64>>,
    /// Inferred truth `v*_i = argmax_j s_{i,j}` per task.
    pub truths: Vec<ChoiceIndex>,
    /// Δ after each iteration; `deltas.len()` is the iteration count.
    pub deltas: Vec<f64>,
}

impl TiResult {
    /// Fraction of tasks whose inferred truth matches the ground truth —
    /// the paper's *Accuracy* metric. Tasks without recorded ground truth
    /// are skipped.
    pub fn accuracy(&self, tasks: &[Task]) -> f64 {
        let mut correct = 0usize;
        let mut total = 0usize;
        for (task, &truth) in tasks.iter().zip(&self.truths) {
            if let Some(gt) = task.ground_truth {
                total += 1;
                if gt == truth {
                    correct += 1;
                }
            }
        }
        if total == 0 {
            return 0.0;
        }
        correct as f64 / total as f64
    }

    /// Mean absolute deviation between estimated and true worker qualities,
    /// `Σ_w Σ_k |q̃^w_k − q^w_k| / (m·|W|)` — the Figure 4(d) metric.
    /// `true_quality` returns the length-`m` ground-truth vector `q̃^w`.
    pub fn quality_deviation(&self, true_quality: impl Fn(WorkerId) -> Vec<f64>) -> f64 {
        if self.qualities.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        let mut count = 0usize;
        // Sorted for a process-stable float sum (same reason as `run`).
        let mut ids: Vec<WorkerId> = self.qualities.keys().copied().collect();
        ids.sort_unstable();
        for w in ids {
            let q = &self.qualities[&w];
            let tq = true_quality(w);
            debug_assert_eq!(tq.len(), q.len());
            total += prob::l1_distance(q, &tq);
            count += q.len();
        }
        total / count as f64
    }
}

/// The iterative truth-inference algorithm (Section 4.1).
#[derive(Debug, Clone, Default)]
pub struct TruthInference {
    config: TiConfig,
}

impl TruthInference {
    /// Creates the algorithm with a custom configuration.
    pub fn new(config: TiConfig) -> Self {
        TruthInference { config }
    }

    /// The configuration the algorithm runs with (snapshots persist it so a
    /// restored engine converges identically).
    pub fn config(&self) -> TiConfig {
        self.config
    }

    /// Runs inference over the collected answers.
    ///
    /// * `tasks` — the published tasks; each must carry its domain vector
    ///   (run DVE first).
    /// * `answers` — the full answer log.
    /// * `registry` — initial worker qualities (golden-task initialization
    ///   per Section 5.2; unseen workers get the registry prior).
    ///
    /// # Panics
    /// Panics if a task lacks a domain vector or the log covers a different
    /// number of tasks.
    pub fn run(&self, tasks: &[Task], answers: &AnswerLog, registry: &WorkerRegistry) -> TiResult {
        assert_eq!(
            tasks.len(),
            answers.num_tasks(),
            "answer log and task set disagree on n"
        );
        let m = registry.num_domains();

        // Initial qualities from the registry (golden-task initialized), and
        // the registry's evidence weights. Golden tasks are tasks the worker
        // *answered*, so Step 2 keeps them in `T(w)` as pseudo-observations
        // with their recorded weight `u^w_k` — the Theorem 1 merge between
        // stored statistics and the current batch. Unseen workers carry zero
        // weight and reduce to the plain Eq. 5.
        // Sorted id order (see `AnswerLog::workers`): Step 2 accumulates
        // `delta_q` over workers, and the accumulation order must not
        // depend on hash-map layout or convergence becomes process-random.
        let worker_ids: Vec<WorkerId> = answers.workers().collect();
        let mut qualities: HashMap<WorkerId, Vec<f64>> = worker_ids
            .iter()
            .map(|&w| (w, registry.quality(w)))
            .collect();
        let init_qualities = qualities.clone();
        let prior_weights: HashMap<WorkerId, Vec<f64>> = answers
            .workers()
            .map(|w| {
                let weight = registry
                    .get(w)
                    .map(|s| s.weight.clone())
                    .unwrap_or_else(|| vec![0.0; m]);
                (w, weight)
            })
            .collect();

        let mut states: Vec<TaskState> = tasks
            .iter()
            .map(|t| TaskState::new(m, t.num_choices()))
            .collect();

        let mut deltas = Vec::new();
        for _ in 0..self.config.max_iterations {
            // ---- Step 1: infer the truth (q^w → s_i), Eqs. 2-4. ----
            let mut delta_s = 0.0;
            for (task, state) in tasks.iter().zip(states.iter_mut()) {
                let v = answers.task_answers(task.id);
                let prev_s = state.s().to_vec();
                state.recompute(task.domain_vector(), v, |w| {
                    qualities
                        .get(&w)
                        .map(|q| q.as_slice())
                        .expect("every answering worker has a quality entry")
                });
                delta_s += prob::l1_distance(&prev_s, state.s())
                    / (tasks.len() as f64 * task.num_choices() as f64);
            }

            // ---- Step 2: estimate worker quality (s_i → q^w), Eq. 5. ----
            let mut delta_q = 0.0;
            let num_workers = qualities.len().max(1);
            for w in &worker_ids {
                let q = qualities.get_mut(w).expect("worker id from the log");
                let prior_w = &prior_weights[w];
                let init_q = &init_qualities[w];
                // Seed Eq. 5's sums with the registry evidence (golden
                // answers / previous batches): numerator q̂_k·û_k,
                // denominator û_k.
                let mut num: Vec<f64> = (0..m).map(|k| init_q[k] * prior_w[k]).collect();
                let mut den = prior_w.clone();
                for &(tid, choice) in answers.worker_answers(*w) {
                    let r = tasks[tid.index()].domain_vector();
                    let s = states[tid.index()].s();
                    for k in 0..m {
                        num[k] += r[k] * s[choice];
                        den[k] += r[k];
                    }
                }
                let mut change = 0.0;
                for k in 0..m {
                    let new_q = if den[k] > 0.0 {
                        num[k] / den[k]
                    } else {
                        // No evidence at all for this domain: keep the
                        // initial (prior) value.
                        init_q[k]
                    };
                    change += (new_q - q[k]).abs();
                    q[k] = new_q;
                }
                delta_q += change / (num_workers as f64 * m as f64);
            }

            let delta = delta_s + delta_q;
            deltas.push(delta);
            if delta < self.config.epsilon {
                break;
            }
        }

        let truths = states.iter().map(|st| st.truth()).collect();
        TiResult {
            states,
            qualities,
            truths,
            deltas,
        }
    }

    /// Runs inference and folds the estimated qualities back into the
    /// registry via Theorem 1 (quality maintenance across requesters).
    pub fn run_and_maintain(
        &self,
        tasks: &[Task],
        answers: &AnswerLog,
        registry: &mut WorkerRegistry,
    ) -> TiResult {
        let result = self.run(tasks, answers, registry);
        let m = registry.num_domains();
        for (&w, q) in &result.qualities {
            // The converged quality already blends the registry's prior
            // evidence (Step 2 seeds Eq. 5 with it), so store it directly
            // with the combined weight û^w_k + Σ_{t ∈ T(w)} r^t_k — a
            // second Theorem 1 merge would double-count the prior.
            let mut weight = registry
                .get(w)
                .map(|s| s.weight.clone())
                .unwrap_or_else(|| vec![0.0; m]);
            for &(tid, _) in answers.worker_answers(w) {
                let r = tasks[tid.index()].domain_vector();
                for k in 0..m {
                    weight[k] += r[k];
                }
            }
            registry.put(
                w,
                super::stats::WorkerStats {
                    quality: q.clone(),
                    weight,
                },
            );
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use docs_types::{Answer, DomainVector, TaskBuilder, TaskId};

    /// Tiny deterministic LCG so answer generation needs no rand dependency.
    struct Lcg(u64);
    impl Lcg {
        fn next_f64(&mut self) -> f64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (self.0 >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Builds a 2-domain world with 40 tasks (20 per domain) and 6 workers:
    /// two domain-0 experts, two domain-1 experts, two mediocre workers.
    /// Answers are sampled from the true per-domain qualities, exactly the
    /// answer model DOCS assumes (Eq. 4).
    fn build_world() -> (Vec<Task>, AnswerLog, Vec<Vec<f64>>) {
        let n = 40;
        let mut tasks = Vec::new();
        for i in 0..n {
            let domain = usize::from(i >= 20);
            tasks.push(
                TaskBuilder::new(i, format!("task {i}"))
                    .yes_no()
                    .with_ground_truth(i % 2)
                    .with_true_domain(domain)
                    .with_domain_vector(DomainVector::one_hot(2, domain))
                    .build()
                    .unwrap(),
            );
        }
        let true_q: Vec<Vec<f64>> = vec![
            vec![0.95, 0.55],
            vec![0.95, 0.55],
            vec![0.55, 0.95],
            vec![0.55, 0.95],
            vec![0.6, 0.6],
            vec![0.6, 0.6],
        ];
        let mut rng = Lcg(0xD0C5);
        let mut log = AnswerLog::new(n);
        for i in 0..n {
            let truth = i % 2;
            let domain = usize::from(i >= 20);
            for (w, q) in true_q.iter().enumerate() {
                let correct = rng.next_f64() < q[domain];
                log.record(Answer {
                    task: TaskId::from(i),
                    worker: WorkerId::from(w),
                    choice: if correct { truth } else { 1 - truth },
                })
                .unwrap();
            }
        }
        (tasks, log, true_q)
    }

    #[test]
    fn infers_truths_and_expertise() {
        let (tasks, log, _) = build_world();
        let registry = WorkerRegistry::new(2, 0.6);
        let result = TruthInference::default().run(&tasks, &log, &registry);

        assert!(
            result.accuracy(&tasks) >= 0.9,
            "accuracy {}, truths: {:?}",
            result.accuracy(&tasks),
            result.truths
        );
        // Experts must look like experts in their own domain.
        let q0 = &result.qualities[&WorkerId(0)];
        let q2 = &result.qualities[&WorkerId(2)];
        assert!(q0[0] > 0.8, "q0 = {q0:?}");
        assert!(q2[1] > 0.8, "q2 = {q2:?}");
        assert!(q0[0] > q0[1], "expert confined to own domain: {q0:?}");
        assert!(q2[1] > q2[0]);
    }

    #[test]
    fn estimated_qualities_approach_truth() {
        let (tasks, log, true_q) = build_world();
        let registry = WorkerRegistry::new(2, 0.6);
        let result = TruthInference::default().run(&tasks, &log, &registry);
        let dev = result.quality_deviation(|w| true_q[w.index()].clone());
        assert!(dev < 0.15, "mean quality deviation {dev}");
    }

    #[test]
    fn converges_quickly() {
        let (tasks, log, _) = build_world();
        let registry = WorkerRegistry::new(2, 0.6);
        let result = TruthInference::default().run(&tasks, &log, &registry);
        assert!(
            result.deltas.len() <= 20,
            "expected convergence within 20 iterations, got {}",
            result.deltas.len()
        );
        // Δ shrinks monotonically-ish: last delta far below first.
        let first = result.deltas[0];
        let last = *result.deltas.last().unwrap();
        assert!(last < first / 10.0, "deltas = {:?}", result.deltas);
    }

    #[test]
    fn step2_running_example() {
        // Section 4.1's Step 2 example: worker answers t1, t2 with the first
        // choice; s_{1,1}=0.95, s_{2,1}=0.3, r1_2=0.9, r2_2=0.05 ⇒ q_2=0.92.
        let tasks = [
            TaskBuilder::new(0usize, "t1")
                .yes_no()
                .with_domain_vector(DomainVector::new(vec![0.1, 0.9]).unwrap())
                .build()
                .unwrap(),
            TaskBuilder::new(1usize, "t2")
                .yes_no()
                .with_domain_vector(DomainVector::new(vec![0.95, 0.05]).unwrap())
                .build()
                .unwrap(),
        ];
        let s = [vec![0.95, 0.05], vec![0.3, 0.7]];
        // Direct evaluation of Eq. 5 for k = 2 (index 1).
        let r1 = tasks[0].domain_vector();
        let r2 = tasks[1].domain_vector();
        let q2 = (r1[1] * s[0][0] + r2[1] * s[1][0]) / (r1[1] + r2[1]);
        assert!((q2 - 0.9157894736842105).abs() < 1e-12);
        // Paper rounds to 0.92.
        assert!((q2 - 0.92).abs() < 0.005);
    }

    #[test]
    fn empty_log_yields_uniform_states() {
        let tasks = vec![TaskBuilder::new(0usize, "t")
            .yes_no()
            .with_domain_vector(DomainVector::uniform(2))
            .build()
            .unwrap()];
        let log = AnswerLog::new(1);
        let registry = WorkerRegistry::new(2, 0.7);
        let result = TruthInference::default().run(&tasks, &log, &registry);
        assert_eq!(result.states[0].s(), &[0.5, 0.5]);
        assert!(result.qualities.is_empty());
    }

    #[test]
    fn golden_initialization_improves_inference() {
        // A world where the majority is wrong on every task; only a good
        // prior on the minority worker lets TI recover the truth.
        let n = 6;
        let mut tasks = Vec::new();
        for i in 0..n {
            tasks.push(
                TaskBuilder::new(i, format!("t{i}"))
                    .yes_no()
                    .with_ground_truth(0)
                    .with_domain_vector(DomainVector::one_hot(1, 0))
                    .build()
                    .unwrap(),
            );
        }
        let mut log = AnswerLog::new(n);
        for i in 0..n {
            log.record(Answer {
                task: TaskId::from(i),
                worker: WorkerId(0),
                choice: 0,
            })
            .unwrap();
            for w in 1..3 {
                log.record(Answer {
                    task: TaskId::from(i),
                    worker: WorkerId(w),
                    choice: 1,
                })
                .unwrap();
            }
        }
        // Registry knows worker 0 is excellent and workers 1, 2 are bad.
        let mut registry = WorkerRegistry::new(1, 0.5);
        registry.put(
            WorkerId(0),
            super::super::stats::WorkerStats {
                quality: vec![0.95],
                weight: vec![20.0],
            },
        );
        for w in 1..3 {
            registry.put(
                WorkerId(w),
                super::super::stats::WorkerStats {
                    quality: vec![0.2],
                    weight: vec![20.0],
                },
            );
        }
        let result = TruthInference::default().run(&tasks, &log, &registry);
        assert_eq!(result.accuracy(&tasks), 1.0);
    }

    #[test]
    fn run_and_maintain_updates_registry() {
        let (tasks, log, _) = build_world();
        let mut registry = WorkerRegistry::new(2, 0.6);
        let result = TruthInference::default().run_and_maintain(&tasks, &log, &mut registry);
        let stats = registry.get(WorkerId(0)).unwrap();
        // Worker 0 answered all 40 tasks; 20 fully in each domain.
        assert!((stats.weight[0] - 20.0).abs() < 1e-9);
        assert!((stats.weight[1] - 20.0).abs() < 1e-9);
        // Registry quality equals the inferred quality (prior weight was 0).
        assert!((stats.quality[0] - result.qualities[&WorkerId(0)][0]).abs() < 1e-9);
    }

    #[test]
    fn quality_deviation_metric() {
        let (tasks, log, _) = build_world();
        let registry = WorkerRegistry::new(2, 0.6);
        let result = TruthInference::default().run(&tasks, &log, &registry);
        let dev_self = result.quality_deviation(|w| result.qualities[&w].clone());
        assert_eq!(dev_self, 0.0);
        let dev_other = result.quality_deviation(|_| vec![0.0, 0.0]);
        assert!(dev_other > 0.0);
    }
}
