//! The incremental truth-inference approach of Section 4.2.
//!
//! When a worker submits one answer, only the parameters most related to the
//! task and the worker change: the task's `M^{(i)}`/`s_i` (via the stored
//! numerator `M̂^{(i)}`) and the qualities of the submitting worker and of
//! the workers who answered the task before. The update costs
//! `O(m · |V(i)|)`, so it keeps up with high-velocity answer streams; the
//! full iterative approach is re-run every `z` submissions (`z = 100` in
//! DOCS) to restore full accuracy.

use super::iterative::{TiConfig, TiResult, TruthInference};
use super::sharded::ShardedTiState;
use super::state::TaskState;
use super::stats::WorkerRegistry;
use crate::ota::BenefitIndex;
use docs_types::{Answer, AnswerLog, ChoiceIndex, Result, Task, TaskId, WorkerId};
use serde::{Deserialize, Serialize};

/// The full serializable state of an [`IncrementalTi`] engine — everything
/// Section 4.2 stores in the parameter database plus the bookkeeping the
/// engine needs to resume mid-stream (`submissions` for the periodic full
/// inference, the sharded-scan geometry, the iterative-approach knobs).
///
/// Restoring a snapshot and continuing a submission stream produces the
/// same states as never having stopped: every field either round-trips
/// exactly (floats use shortest-round-trip JSON) or is a pure function of
/// the others.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TiSnapshot {
    /// Published tasks with their DVE-filled domain vectors.
    pub tasks: Vec<Task>,
    /// Per-task inference state (`M̂`, `M`, `s`).
    pub states: Vec<TaskState>,
    /// Live worker statistics.
    pub registry: WorkerRegistry,
    /// Golden-only statistics feeding periodic full re-inference.
    pub golden_registry: WorkerRegistry,
    /// The full answer log.
    pub log: AnswerLog,
    /// Full-inference period.
    pub z: usize,
    /// Submissions processed so far.
    pub submissions: usize,
    /// Task-shard count of the sharded scan.
    pub task_shards: usize,
    /// Per-task-shard ingestion counters.
    pub shard_ingested: Vec<u64>,
    /// Iteration cap of the iterative approach.
    pub max_iterations: usize,
    /// Convergence threshold of the iterative approach.
    pub epsilon: f64,
}

/// Online inference engine maintaining per-task state and worker statistics
/// across a stream of answer submissions.
#[derive(Debug, Clone)]
pub struct IncrementalTi {
    tasks: Vec<Task>,
    states: Vec<TaskState>,
    /// Live worker statistics, updated on every answer.
    registry: WorkerRegistry,
    /// Golden-task initializations only — the starting point for periodic
    /// full re-inference.
    golden_registry: WorkerRegistry,
    log: AnswerLog,
    /// Run the full iterative approach every `z` submissions; `0` disables
    /// the periodic re-run.
    z: usize,
    submissions: usize,
    ti: TruthInference,
    /// Shard view over the task state space (1 shard unless configured):
    /// ingestion is recorded against the owning shard, and the OTA scan
    /// partitions its candidate walk along the same mapping.
    sharding: ShardedTiState,
    /// Optional incremental benefit index over the same partition. Derived
    /// state (a pure function of `states` + `sharding`): re-keyed on every
    /// ingested answer, rebuilt after periodic full inference, and excluded
    /// from snapshots — restore rebuilds it.
    index: Option<BenefitIndex>,
}

impl IncrementalTi {
    /// Creates the engine. Every task must already carry its domain vector.
    /// `z` is the full-inference period (the paper uses `z = 100`).
    pub fn new(tasks: Vec<Task>, registry: WorkerRegistry, z: usize) -> Self {
        let m = registry.num_domains();
        let states = tasks
            .iter()
            .map(|t| TaskState::new(m, t.num_choices()))
            .collect();
        let log = AnswerLog::new(tasks.len());
        let sharding = ShardedTiState::new(tasks.len(), 1);
        IncrementalTi {
            golden_registry: registry.clone(),
            registry,
            tasks,
            states,
            log,
            z,
            submissions: 0,
            ti: TruthInference::new(TiConfig::default()),
            sharding,
            index: None,
        }
    }

    /// Re-partitions the task state across `shards` shards (builder-style).
    ///
    /// Sharding only changes how the state space is *walked* (per-shard
    /// benefit scans, per-shard ingestion accounting) — the statistical
    /// model is untouched, so truths are identical for every shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.sharding = ShardedTiState::new(self.tasks.len(), shards);
        if let Some(index) = &mut self.index {
            index.rebuild(&self.states, &self.sharding);
        }
        self
    }

    /// Enables (or drops) the incremental benefit index (builder-style).
    ///
    /// Like sharding, the index changes how candidates are *found*, never
    /// what is found: `Assigner::assign_indexed` over it returns exactly
    /// the flat scan's picks. Maintenance costs one O(log n) heap re-key
    /// per ingested answer and one O(n) rebuild per periodic full
    /// inference.
    pub fn with_benefit_index(mut self, enabled: bool) -> Self {
        self.index = enabled.then(|| BenefitIndex::new(&self.states, &self.sharding));
        self
    }

    /// Whether the benefit index is maintained.
    pub fn has_benefit_index(&self) -> bool {
        self.index.is_some()
    }

    /// The benefit index's maintenance generation, when one is maintained:
    /// advances once per index-visible state change (answer-ingestion bump
    /// or full-inference rebuild), never on reads. `None` on scan-only
    /// campaigns.
    pub fn index_generation(&self) -> Option<u64> {
        self.index.as_ref().map(|index| index.generation())
    }

    /// The shard view over the task state space.
    pub fn sharding(&self) -> &ShardedTiState {
        &self.sharding
    }

    /// The published tasks.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Current per-task inference states.
    pub fn states(&self) -> &[TaskState] {
        &self.states
    }

    /// State of one task.
    pub fn state(&self, task: TaskId) -> &TaskState {
        &self.states[task.index()]
    }

    /// Live worker statistics.
    pub fn registry(&self) -> &WorkerRegistry {
        &self.registry
    }

    /// The answer log accumulated so far.
    pub fn log(&self) -> &AnswerLog {
        &self.log
    }

    /// Split-borrow view for the assignment path: everything a request
    /// needs to score candidates, plus mutable access to the benefit index
    /// (whose pop-and-revalidate re-keys entries) — disjoint fields, so one
    /// `&mut self` serves them all simultaneously.
    #[allow(clippy::type_complexity)]
    pub fn assign_view(
        &mut self,
    ) -> (
        &[Task],
        &[TaskState],
        &AnswerLog,
        &ShardedTiState,
        Option<&mut BenefitIndex>,
    ) {
        (
            &self.tasks,
            &self.states,
            &self.log,
            &self.sharding,
            self.index.as_mut(),
        )
    }

    /// Number of submissions processed.
    pub fn submissions(&self) -> usize {
        self.submissions
    }

    /// Registers a worker's golden-task performance (Section 5.2): both the
    /// live statistics and the baseline used by periodic full re-inference.
    pub fn init_worker_from_golden(
        &mut self,
        worker: WorkerId,
        golden_answers: &[(TaskId, ChoiceIndex)],
        task_info: impl Fn(TaskId) -> (docs_types::DomainVector, ChoiceIndex) + Copy,
        smoothing: f64,
    ) {
        self.registry
            .init_from_golden(worker, golden_answers, task_info, smoothing);
        self.golden_registry
            .init_from_golden(worker, golden_answers, task_info, smoothing);
    }

    /// Processes one answer submission with the O(m·|V(i)|) update policy.
    /// Returns `true` when the periodic full inference ran afterwards.
    pub fn submit(&mut self, answer: Answer) -> Result<bool> {
        let i = answer.task.index();
        if i >= self.tasks.len() {
            return Err(docs_types::Error::UnknownTask(answer.task));
        }
        self.tasks[i].check_choice(answer.choice)?;
        // Snapshot prior answerers and the pre-update truth s̃_i.
        let prior: Vec<(WorkerId, ChoiceIndex)> = self.log.task_answers(answer.task).clone();
        self.log.record(answer)?;

        // Sharded ingestion: only the owning shard's state is touched below.
        self.sharding.record_ingest(answer.task);

        let r = self.tasks[i].domain_vector().clone();
        let s_before = self.states[i].s().to_vec();

        // Step 1 (incremental): update M̂^{(i)}, M^{(i)}, s_i.
        let q_w = self.registry.quality(answer.worker);
        self.states[i].apply_answer(&r, &q_w, answer.choice);
        // The task's entropy (the index's benefit bound) just moved:
        // re-key its heap entry.
        if let Some(index) = &mut self.index {
            index.bump(i, self.states[i].entropy());
        }
        let s_after = self.states[i].s().to_vec();

        // Step 2 (incremental): the submitting worker absorbs the new task…
        self.registry
            .get_or_insert(answer.worker)
            .absorb_answer(&r, s_after[answer.choice]);
        // …and every earlier answerer's quality is revised for the moved
        // truth probability of their recorded choice.
        for (w_prev, j) in prior {
            self.registry
                .get_or_insert(w_prev)
                .revise_answer(&r, s_before[j], s_after[j]);
        }

        self.submissions += 1;
        if self.z > 0 && self.submissions.is_multiple_of(self.z) {
            self.run_full();
            return Ok(true);
        }
        Ok(false)
    }

    /// Processes a batch of answers with **one index-repair pass** instead
    /// of a heap re-key per answer: a batch that hits the same task several
    /// times re-keys it once, with its final entropy.
    ///
    /// Answers are applied strictly in order through [`IncrementalTi::submit`]
    /// (so the z-periodic full inference fires at exactly the same points
    /// as individual submissions — replaying a logged batch is
    /// byte-identical to having served it live). The first rejected answer
    /// aborts the batch with its error; the already-applied prefix stays
    /// applied and the index is repaired for it. Callers that must not see
    /// a partial batch validate every answer first (the durable service
    /// does).
    pub fn submit_batch(&mut self, answers: &[Answer]) -> Result<()> {
        // Detach the index so per-answer bumps (and mid-batch full-run
        // rebuilds) are skipped; one repair pass follows.
        let index = self.index.take();
        let mut touched: Vec<usize> = Vec::with_capacity(answers.len());
        let mut full_ran = false;
        let mut result = Ok(());
        for &answer in answers {
            match self.submit(answer) {
                Ok(ran) => {
                    full_ran |= ran;
                    touched.push(answer.task.index());
                }
                Err(e) => {
                    result = Err(e);
                    break;
                }
            }
        }
        self.index = index;
        if let Some(index) = &mut self.index {
            if full_ran {
                // A periodic full inference replaced every state mid-batch.
                index.rebuild(&self.states, &self.sharding);
            } else {
                touched.sort_unstable();
                touched.dedup();
                for i in touched {
                    index.bump(i, self.states[i].entropy());
                }
            }
        }
        result
    }

    /// Runs the full iterative approach over everything received so far and
    /// replaces the incremental estimates with the converged ones. Worker
    /// weights are rebuilt from the log (`u^w_k = Σ_{t∈T(w)} r^t_k`).
    pub fn run_full(&mut self) -> TiResult {
        let result = self.ti.run(&self.tasks, &self.log, &self.golden_registry);
        // Replace task states with converged ones.
        self.states = result.states.clone();
        // Replace worker statistics: converged quality (which already blends
        // the golden/prior evidence) with weight = prior weight + batch
        // weight, keeping Theorem 1's bookkeeping exact.
        let m = self.registry.num_domains();
        for (&w, q) in &result.qualities {
            let mut weight = self
                .golden_registry
                .get(w)
                .map(|s| s.weight.clone())
                .unwrap_or_else(|| vec![0.0; m]);
            for &(tid, _) in self.log.worker_answers(w) {
                let r = self.tasks[tid.index()].domain_vector();
                for k in 0..m {
                    weight[k] += r[k];
                }
            }
            self.registry.put(
                w,
                super::stats::WorkerStats {
                    quality: q.clone(),
                    weight,
                },
            );
        }
        // Every task state was just replaced: one rebuild beats n bumps.
        if let Some(index) = &mut self.index {
            index.rebuild(&self.states, &self.sharding);
        }
        result
    }

    /// Captures the engine's full state for the durable runtime.
    pub fn snapshot(&self) -> TiSnapshot {
        let config = self.ti.config();
        TiSnapshot {
            tasks: self.tasks.clone(),
            states: self.states.clone(),
            registry: self.registry.clone(),
            golden_registry: self.golden_registry.clone(),
            log: self.log.clone(),
            z: self.z,
            submissions: self.submissions,
            task_shards: self.sharding.num_shards(),
            shard_ingested: self.sharding.ingestion_counters().to_vec(),
            max_iterations: config.max_iterations,
            epsilon: config.epsilon,
        }
    }

    /// Rebuilds an engine from a snapshot, byte-identical to the captured
    /// one (continuing the same submission stream yields the same states).
    pub fn restore(snapshot: TiSnapshot) -> Self {
        let sharding = ShardedTiState::restore(
            snapshot.tasks.len(),
            snapshot.task_shards.max(1),
            snapshot.shard_ingested,
        );
        IncrementalTi {
            tasks: snapshot.tasks,
            states: snapshot.states,
            registry: snapshot.registry,
            golden_registry: snapshot.golden_registry,
            log: snapshot.log,
            z: snapshot.z,
            submissions: snapshot.submissions,
            ti: TruthInference::new(TiConfig {
                max_iterations: snapshot.max_iterations,
                epsilon: snapshot.epsilon,
            }),
            sharding,
            // Derived state: the restoring owner re-enables it
            // (`with_benefit_index`) when its config asks for the index.
            index: None,
        }
    }

    /// Inferred truths under the current (incremental) states.
    pub fn truths(&self) -> Vec<ChoiceIndex> {
        self.states.iter().map(|st| st.truth()).collect()
    }

    /// Accuracy of the current truths against task ground truth.
    pub fn accuracy(&self) -> f64 {
        let mut correct = 0usize;
        let mut total = 0usize;
        for (task, state) in self.tasks.iter().zip(&self.states) {
            if let Some(gt) = task.ground_truth {
                total += 1;
                if gt == state.truth() {
                    correct += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use docs_types::{DomainVector, TaskBuilder};

    fn make_tasks(n: usize, m: usize) -> Vec<Task> {
        (0..n)
            .map(|i| {
                TaskBuilder::new(i, format!("t{i}"))
                    .yes_no()
                    .with_ground_truth(i % 2)
                    .with_domain_vector(DomainVector::one_hot(m, i % m))
                    .build()
                    .unwrap()
            })
            .collect()
    }

    fn ans(t: usize, w: usize, c: usize) -> Answer {
        Answer {
            task: TaskId::from(t),
            worker: WorkerId::from(w),
            choice: c,
        }
    }

    #[test]
    fn incremental_step1_matches_batch_recompute() {
        let tasks = make_tasks(4, 2);
        let registry = WorkerRegistry::new(2, 0.7);
        let mut inc = IncrementalTi::new(tasks.clone(), registry.clone(), 0);
        // Workers answer with fixed qualities: since registry holds priors
        // and the incremental step uses the *current* quality, replaying the
        // same sequence against TaskState::apply_answer must agree.
        let stream = [ans(0, 0, 0), ans(0, 1, 1), ans(1, 0, 1), ans(0, 2, 0)];
        let mut shadow = TaskState::new(2, 2);
        let r0 = tasks[0].domain_vector().clone();
        for a in stream {
            let q = inc.registry().quality(a.worker);
            if a.task.index() == 0 {
                shadow.apply_answer(&r0, &q, a.choice);
            }
            inc.submit(a).unwrap();
        }
        for j in 0..2 {
            assert!((inc.state(TaskId(0)).s()[j] - shadow.s()[j]).abs() < 1e-12);
        }
    }

    #[test]
    fn duplicate_submission_rejected() {
        let tasks = make_tasks(2, 2);
        let mut inc = IncrementalTi::new(tasks, WorkerRegistry::new(2, 0.7), 0);
        inc.submit(ans(0, 0, 0)).unwrap();
        assert!(inc.submit(ans(0, 0, 1)).is_err());
        assert_eq!(inc.submissions(), 1);
    }

    #[test]
    fn invalid_choice_rejected_before_any_mutation() {
        let tasks = make_tasks(2, 2);
        let mut inc = IncrementalTi::new(tasks, WorkerRegistry::new(2, 0.7), 0);
        assert!(inc.submit(ans(0, 0, 7)).is_err());
        assert_eq!(inc.log().len(), 0);
        assert_eq!(inc.submissions(), 0);
    }

    #[test]
    fn quality_updates_move_in_right_direction() {
        let tasks = make_tasks(2, 2);
        let mut inc = IncrementalTi::new(tasks, WorkerRegistry::new(2, 0.7), 0);
        // Three agreeing answers on task 0 (domain 0, truth 0): all three
        // workers should end with domain-0 quality above the 0.7 prior.
        for w in 0..3 {
            inc.submit(ans(0, w, 0)).unwrap();
        }
        for w in 0..3 {
            let q = inc.registry().quality(WorkerId(w));
            assert!(q[0] > 0.7, "worker {w}: {q:?}");
            // Domain 1 untouched (r_1 = 0 for task 0).
            assert!((q[1] - 0.7).abs() < 1e-12);
        }
    }

    #[test]
    fn disagreeing_worker_loses_quality() {
        let tasks = make_tasks(2, 2);
        let mut inc = IncrementalTi::new(tasks, WorkerRegistry::new(2, 0.7), 0);
        inc.submit(ans(0, 0, 0)).unwrap();
        inc.submit(ans(0, 1, 0)).unwrap();
        inc.submit(ans(0, 2, 1)).unwrap(); // dissent
        let q_dissenter = inc.registry().quality(WorkerId(2));
        let q_majority = inc.registry().quality(WorkerId(0));
        assert!(q_dissenter[0] < q_majority[0]);
        assert!(q_dissenter[0] < 0.7);
    }

    #[test]
    fn periodic_full_inference_triggers() {
        let tasks = make_tasks(4, 2);
        let mut inc = IncrementalTi::new(tasks, WorkerRegistry::new(2, 0.7), 3);
        assert!(!inc.submit(ans(0, 0, 0)).unwrap());
        assert!(!inc.submit(ans(1, 0, 1)).unwrap());
        assert!(inc.submit(ans(2, 0, 0)).unwrap()); // 3rd submission → full run
        assert!(!inc.submit(ans(3, 0, 1)).unwrap());
    }

    #[test]
    fn full_run_matches_standalone_iterative() {
        let tasks = make_tasks(6, 2);
        let registry = WorkerRegistry::new(2, 0.7);
        let mut inc = IncrementalTi::new(tasks.clone(), registry.clone(), 0);
        let mut log = AnswerLog::new(6);
        for t in 0..6 {
            for w in 0..3 {
                let choice = if w == 2 { 1 - (t % 2) } else { t % 2 };
                let a = ans(t, w, choice);
                inc.submit(a).unwrap();
                log.record(a).unwrap();
            }
        }
        let incremental_result = inc.run_full();
        let standalone = TruthInference::default().run(&tasks, &log, &registry);
        assert_eq!(incremental_result.truths, standalone.truths);
        for (w, q) in &standalone.qualities {
            let qi = &incremental_result.qualities[w];
            for k in 0..2 {
                assert!((q[k] - qi[k]).abs() < 1e-12);
            }
        }
        // And the engine's live registry was overwritten with the converged
        // qualities.
        for (w, q) in &standalone.qualities {
            let live = inc.registry().quality(*w);
            for k in 0..2 {
                assert!((q[k] - live[k]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn accuracy_tracks_ground_truth() {
        let tasks = make_tasks(4, 2);
        let mut inc = IncrementalTi::new(tasks, WorkerRegistry::new(2, 0.8), 0);
        for t in 0..4 {
            for w in 0..3 {
                inc.submit(ans(t, w, t % 2)).unwrap();
            }
        }
        assert_eq!(inc.accuracy(), 1.0);
    }

    #[test]
    fn snapshot_restore_roundtrips_through_json_and_stays_byte_identical() {
        let tasks = make_tasks(6, 2);
        let mut inc = IncrementalTi::new(tasks, WorkerRegistry::new(2, 0.7), 4).with_shards(3);
        let golden_info = |_tid: TaskId| (DomainVector::one_hot(2, 0), 0usize);
        inc.init_worker_from_golden(WorkerId(0), &[(TaskId(0), 0)], golden_info, 1.0);
        let stream = [ans(0, 0, 0), ans(1, 1, 1), ans(2, 0, 0), ans(0, 1, 0)];
        for a in stream {
            inc.submit(a).unwrap();
        }
        // Snapshot → JSON → restore must reproduce every float exactly.
        let json = serde_json::to_vec(&inc.snapshot()).unwrap();
        let mut restored = IncrementalTi::restore(serde_json::from_slice(&json).unwrap());
        assert_eq!(restored.submissions(), inc.submissions());
        assert_eq!(restored.log().len(), inc.log().len());
        assert_eq!(restored.sharding().num_shards(), 3);
        assert_eq!(
            restored.sharding().ingestion_counters(),
            inc.sharding().ingestion_counters()
        );
        for (a, b) in inc.states().iter().zip(restored.states()) {
            assert_eq!(a.s(), b.s(), "restored s_i must be byte-identical");
        }
        // Continuing the same stream on both engines diverges nowhere —
        // including the z-periodic full inference (z = 4 fires here).
        let tail = [ans(3, 0, 1), ans(4, 2, 0), ans(5, 1, 1)];
        for a in tail {
            inc.submit(a).unwrap();
            restored.submit(a).unwrap();
        }
        assert_eq!(inc.truths(), restored.truths());
        for (a, b) in inc.states().iter().zip(restored.states()) {
            assert_eq!(a.s(), b.s());
        }
        for (w, stats) in inc.registry().iter() {
            assert_eq!(stats, restored.registry().get(w).unwrap());
        }
    }

    #[test]
    fn submit_batch_matches_individual_submissions_exactly() {
        let tasks = make_tasks(6, 2);
        // z = 4: the periodic full inference fires *inside* the batch.
        let mut one_by_one = IncrementalTi::new(tasks.clone(), WorkerRegistry::new(2, 0.7), 4);
        let mut batched = IncrementalTi::new(tasks, WorkerRegistry::new(2, 0.7), 4)
            .with_benefit_index(true)
            .with_shards(3);
        let stream = [
            ans(0, 0, 0),
            ans(1, 1, 1),
            ans(0, 1, 0),
            ans(2, 0, 1),
            ans(1, 0, 1),
            ans(3, 2, 0),
        ];
        for a in stream {
            one_by_one.submit(a).unwrap();
        }
        batched.submit_batch(&stream).unwrap();
        assert_eq!(batched.submissions(), one_by_one.submissions());
        assert_eq!(batched.truths(), one_by_one.truths());
        for (a, b) in one_by_one.states().iter().zip(batched.states()) {
            assert_eq!(a.s(), b.s(), "batch application must be byte-identical");
        }
        for (w, stats) in one_by_one.registry().iter() {
            assert_eq!(stats, batched.registry().get(w).unwrap());
        }
    }

    #[test]
    fn submit_batch_stops_at_the_first_rejection_and_repairs_the_index() {
        let tasks = make_tasks(4, 2);
        let mut inc =
            IncrementalTi::new(tasks, WorkerRegistry::new(2, 0.7), 0).with_benefit_index(true);
        let stream = [
            ans(0, 0, 0),
            ans(0, 0, 1), // duplicate: aborts here
            ans(1, 0, 0), // never applied
        ];
        assert!(inc.submit_batch(&stream).is_err());
        assert_eq!(inc.submissions(), 1, "prefix before the rejection applied");
        assert_eq!(inc.log().len(), 1);
        // The index was repaired for the applied prefix: an indexed
        // assignment over it matches a fresh flat scan.
        let assigner = crate::ota::Assigner::new(crate::ota::AssignerConfig {
            k: 4,
            ..Default::default()
        });
        let (tasks, states, _, sharding, index) = inc.assign_view();
        let indexed = assigner.assign_indexed(
            &[0.8, 0.8],
            tasks,
            states,
            sharding,
            index.expect("index enabled"),
            |_| false,
            |_| 0,
        );
        let flat = assigner.assign(&[0.8, 0.8], tasks, states, |_| false, |_| 0);
        assert_eq!(indexed, flat);
    }

    #[test]
    fn maintained_index_tracks_every_mutation_path() {
        // Interleave single submissions, batches, and z-periodic full runs;
        // after each step the maintained index must assign exactly like the
        // flat scan (i.e. like an index rebuilt from scratch).
        let tasks = make_tasks(8, 2);
        let mut inc = IncrementalTi::new(tasks, WorkerRegistry::new(2, 0.7), 3)
            .with_shards(2)
            .with_benefit_index(true);
        assert!(inc.has_benefit_index());
        let assigner = crate::ota::Assigner::new(crate::ota::AssignerConfig {
            k: 5,
            ..Default::default()
        });
        let steps: Vec<Vec<Answer>> = vec![
            vec![ans(0, 0, 0)],
            vec![ans(1, 0, 1), ans(2, 1, 0), ans(3, 1, 1)], // crosses z = 3
            vec![ans(4, 0, 0)],
            vec![ans(5, 2, 1), ans(0, 2, 0)],
        ];
        for (step, batch) in steps.into_iter().enumerate() {
            if batch.len() == 1 {
                inc.submit(batch[0]).unwrap();
            } else {
                inc.submit_batch(&batch).unwrap();
            }
            let q = [0.9, 0.6];
            let (tasks, states, _, sharding, index) = inc.assign_view();
            let indexed = assigner.assign_indexed(
                &q,
                tasks,
                states,
                sharding,
                index.expect("index enabled"),
                |_| false,
                |_| 0,
            );
            let flat = assigner.assign(&q, tasks, states, |_| false, |_| 0);
            assert_eq!(indexed, flat, "step {step}");
        }
    }

    #[test]
    fn golden_init_feeds_full_runs() {
        let tasks = make_tasks(2, 2);
        let mut inc = IncrementalTi::new(tasks, WorkerRegistry::new(2, 0.5), 0);
        let golden_info = |_tid: TaskId| (DomainVector::one_hot(2, 0), 0usize);
        inc.init_worker_from_golden(WorkerId(0), &[(TaskId(0), 0)], golden_info, 1.0);
        let q = inc.registry().quality(WorkerId(0));
        assert!(q[0] > 0.5);
        // The golden registry feeds run_full as the initial point.
        inc.submit(ans(0, 0, 0)).unwrap();
        let result = inc.run_full();
        assert!(result.qualities[&WorkerId(0)][0] > 0.5);
    }
}
