//! Shard-partitioned view over per-task inference state.
//!
//! The paper's deployment keeps one flat `Vec<TaskState>` behind a single
//! server loop; at service scale the OTA benefit scan (O(n) per worker
//! request, Section 5.1) becomes the bottleneck. [`ShardedTiState`]
//! partitions the task index space by [`TaskId::shard`] hash so that:
//!
//! * the benefit scan runs as independent per-shard scans whose per-shard
//!   top-`k` lists are k-way merged (`docs_core::ota::merge_top_k`) — same
//!   result as the flat scan, but parallelizable,
//! * answer ingestion (Section 4.2's incremental Step 1) touches only the
//!   owning shard's state, which the view records per shard so runtimes can
//!   observe ingestion balance and schedule periodic full inference,
//! * periodic *full* truth inference still runs over the union — sharding
//!   partitions the scan, never the statistical model, so truths converge
//!   globally exactly as in the single-shard deployment.

use docs_types::TaskId;

/// Partition of `n` dense task ids across `num_shards` shards.
#[derive(Debug, Clone)]
pub struct ShardedTiState {
    num_shards: usize,
    /// Task indices owned by each shard, ascending within a shard.
    index: Vec<Vec<usize>>,
    /// Answers ingested per shard since construction.
    ingested: Vec<u64>,
}

impl ShardedTiState {
    /// Partitions tasks `0..num_tasks` across `num_shards` shards.
    pub fn new(num_tasks: usize, num_shards: usize) -> Self {
        assert!(num_shards >= 1, "need at least one shard");
        let mut index = vec![Vec::new(); num_shards];
        for i in 0..num_tasks {
            index[TaskId::from(i).shard(num_shards)].push(i);
        }
        ShardedTiState {
            num_shards,
            index,
            ingested: vec![0; num_shards],
        }
    }

    /// Rebuilds a partition with previously recorded ingestion counters —
    /// the snapshot/restore path of the durable runtime. The index is
    /// recomputed (it is a pure function of `num_tasks` and `num_shards`);
    /// only the counters are observable state worth persisting.
    ///
    /// # Panics
    /// Panics if `ingested.len() != num_shards`.
    pub fn restore(num_tasks: usize, num_shards: usize, ingested: Vec<u64>) -> Self {
        assert_eq!(ingested.len(), num_shards, "one counter per shard");
        let mut view = Self::new(num_tasks, num_shards);
        view.ingested = ingested;
        view
    }

    /// The per-shard ingestion counters, in shard order (for snapshots).
    pub fn ingestion_counters(&self) -> &[u64] {
        &self.ingested
    }

    /// Number of shards.
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Total number of partitioned tasks.
    pub fn num_tasks(&self) -> usize {
        self.index.iter().map(Vec::len).sum()
    }

    /// The shard owning a task.
    #[inline]
    pub fn shard_of(&self, task: TaskId) -> usize {
        task.shard(self.num_shards)
    }

    /// Task indices owned by one shard (ascending).
    pub fn tasks_of(&self, shard: usize) -> &[usize] {
        &self.index[shard]
    }

    /// Records one ingested answer on the owning shard and returns that
    /// shard's index.
    pub fn record_ingest(&mut self, task: TaskId) -> usize {
        let shard = self.shard_of(task);
        self.ingested[shard] += 1;
        shard
    }

    /// Answers ingested by one shard so far.
    pub fn ingested(&self, shard: usize) -> u64 {
        self.ingested[shard]
    }

    /// Total answers ingested across shards.
    pub fn total_ingested(&self) -> u64 {
        self.ingested.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_total_and_disjoint() {
        for shards in [1, 2, 3, 8] {
            let view = ShardedTiState::new(100, shards);
            assert_eq!(view.num_shards(), shards);
            assert_eq!(view.num_tasks(), 100);
            let mut seen = [false; 100];
            for s in 0..shards {
                for &i in view.tasks_of(s) {
                    assert!(!seen[i], "task {i} owned twice");
                    seen[i] = true;
                    assert_eq!(view.shard_of(TaskId::from(i)), s);
                }
            }
            assert!(seen.iter().all(|&b| b));
        }
    }

    #[test]
    fn hash_partition_balances_dense_ids() {
        let view = ShardedTiState::new(10_000, 8);
        for s in 0..8 {
            let len = view.tasks_of(s).len();
            assert!((1000..1600).contains(&len), "shard {s} owns {len} of 10000");
        }
    }

    #[test]
    fn ingestion_counters_follow_ownership() {
        let mut view = ShardedTiState::new(10, 3);
        let t = TaskId(4);
        let owner = view.shard_of(t);
        assert_eq!(view.record_ingest(t), owner);
        assert_eq!(view.record_ingest(t), owner);
        assert_eq!(view.ingested(owner), 2);
        assert_eq!(view.total_ingested(), 2);
    }

    #[test]
    fn single_shard_owns_everything() {
        let view = ShardedTiState::new(7, 1);
        assert_eq!(view.tasks_of(0), &[0, 1, 2, 3, 4, 5, 6]);
    }
}
