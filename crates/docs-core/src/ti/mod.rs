//! Truth Inference (Section 4).
//!
//! Two inherent relations drive everything here:
//!
//! 1. a worker's answer for a task is trustworthy if her quality is high on
//!    the task's domains (Step 1, Eqs. 2–4), and
//! 2. a worker has high quality on a domain if she often answers tasks of
//!    that domain correctly (Step 2, Eq. 5).
//!
//! [`TruthInference`] alternates the two steps until convergence (the
//! *iterative approach* of Section 4.1). [`IncrementalTi`] applies the
//! constant-time update policy of Section 4.2 on every single answer, and
//! periodically re-runs the iterative approach (every `z` submissions,
//! `z = 100` in the paper). [`WorkerStats`] implements the long-run quality
//! maintenance of Theorem 1.

//!
//! [`ShardedTiState`] partitions the per-task state space by `TaskId` hash
//! for the sharded service runtime: ingestion touches only the owning
//! shard, the OTA benefit scan runs shard-by-shard, and the periodic full
//! inference still converges globally over the union.

mod incremental;
mod iterative;
mod sharded;
mod state;
mod stats;
pub mod stopping;

pub use incremental::{IncrementalTi, TiSnapshot};
pub use iterative::{TiConfig, TiResult, TruthInference};
pub use sharded::ShardedTiState;
pub use state::{clamp_quality, TaskState};
pub use stats::{WorkerRegistry, WorkerStats};
pub use stopping::{stable_point_of_curve, StoppingPolicy, StoppingRule, TruthFlipTracker};
